//! Collaborative field inspection (§2.2 + §3.4): multiple workers share
//! one scene of subsurface infrastructure, each seeing their own role's
//! layers from their own position, with private annotations.
//!
//! Run with: `cargo run --release --example collab_inspection`

use augur::core::{CollabSession, ParticipantId, SharedOverlay};
use augur::geo::Enu;
use augur::render::{OverlayItem, OverlayKind, ViewCamera, Viewport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = CollabSession::new();

    // Two field workers at the same site, different positions and roles.
    let electrician_cam = ViewCamera::new(
        Enu::new(-20.0, 0.0, 1.7),
        90.0, // facing east
        66.0,
        Viewport::default(),
        300.0,
    )?;
    let plumber_cam = ViewCamera::new(
        Enu::new(20.0, -10.0, 1.7),
        0.0, // facing north
        66.0,
        Viewport::default(),
        300.0,
    )?;
    session.join(ParticipantId(1), electrician_cam, vec!["electrical".into()]);
    session.join(ParticipantId(2), plumber_cam, vec!["plumbing".into()]);

    // The city's asset database publishes the subsurface layout once;
    // role tags decide who sees what.
    for (id, east, north, kind, roles) in [
        (
            1u64,
            10.0,
            0.0,
            OverlayKind::Highlight(0xFFCC00),
            vec!["electrical".to_string()],
        ),
        (
            2,
            15.0,
            5.0,
            OverlayKind::Highlight(0xFFCC00),
            vec!["electrical".to_string()],
        ),
        (
            3,
            20.0,
            10.0,
            OverlayKind::Highlight(0x3399FF),
            vec!["plumbing".to_string()],
        ),
        (
            4,
            25.0,
            20.0,
            OverlayKind::Highlight(0x3399FF),
            vec!["plumbing".to_string()],
        ),
        (
            5,
            18.0,
            8.0,
            OverlayKind::Label("manhole M-17".into()),
            vec![],
        ),
    ] {
        session.publish(SharedOverlay {
            item: OverlayItem {
                id,
                anchor: Enu::new(east, north, -1.0), // below street level
                kind,
                priority: 0.7,
            },
            roles,
        });
    }

    // The electrician marks a fault privately while diagnosing.
    session.annotate(
        ParticipantId(1),
        OverlayItem {
            id: 100,
            anchor: Enu::new(12.0, 1.0, -1.0),
            kind: OverlayKind::Label("suspected fault — verify before digging".into()),
            priority: 1.0,
        },
    )?;

    for (name, id) in [
        ("electrician", ParticipantId(1)),
        ("plumber", ParticipantId(2)),
    ] {
        let view = session.view(id)?;
        println!("{name} sees {} overlay(s):", view.len());
        for (item, (u, v)) in &view {
            println!(
                "  #{:<3} at ({u:6.0}, {v:6.0}) px — {:?}",
                item.id, item.kind
            );
        }
        println!();
    }
    println!(
        "shared overlays: {}, participants: {} — same site, personalised views",
        session.shared_count(),
        session.participant_count()
    );
    Ok(())
}
