//! Tourism scenario (§3.2): a tracked tour through a synthetic city.
//!
//! A tourist Lévy-walks among 20k POIs; pose comes from Kalman-fused
//! noisy GPS+IMU; every second the platform retrieves nearby POIs,
//! resolves occlusion for x-ray reveals, and lays labels out on screen.
//!
//! Run with: `cargo run --release --example tourism_city`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/tourism.trace.json` (open at <https://ui.perfetto.dev>).

use augur::core::tourism::{run_instrumented, run_traced, TourismParams};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let params = TourismParams::default();
    println!(
        "tourism scenario: {} POIs, {:.0} s tour, k={} per retrieval",
        params.pois, params.duration_s, params.k
    );
    let registry = Registry::new();
    let report = if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/tourism.trace.json";
        std::fs::write(path, render_chrome_trace("tourism", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!("\nretrieval ({} queries):", report.queries);
    println!(
        "  R-tree k-NN     {:>9.1} dist-evals/query",
        report.knn_indexed_work
    );
    println!(
        "  linear scan     {:>9.1} dist-evals/query",
        report.scan_work
    );
    println!("  index speed-up  {:>9.1}x", report.index_speedup);
    println!(
        "\ntracking: mean position error {:.2} m (Kalman fusion)",
        report.tracking_error_m
    );
    println!("\npresentation:");
    println!("  POIs surfaced        {}", report.pois_surfaced);
    println!("  x-ray reveals        {}", report.xray_reveals);
    println!(
        "  bubble overlap       {:.1}% → decluttered {:.1}% (dropping {:.1}%)",
        report.naive_overlap * 100.0,
        report.decluttered_overlap * 100.0,
        report.declutter_drop_ratio * 100.0
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    print!("{}", render_span_breakdown(&registry.snapshot()));
    Ok(())
}
