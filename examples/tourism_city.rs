//! Tourism scenario (§3.2): a tracked tour through a synthetic city.
//!
//! A tourist Lévy-walks among 20k POIs; pose comes from Kalman-fused
//! noisy GPS+IMU; every second the platform retrieves nearby POIs,
//! resolves occlusion for x-ray reveals, and lays labels out on screen.
//!
//! Run with: `cargo run --release --example tourism_city`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/tourism.trace.json` (open at <https://ui.perfetto.dev>).
//!
//! Pass `--watch` to run the tour under an SLO watch session (rollups +
//! burn-rate alerting on the tour's manual clock) and print the live
//! dashboard; add `--inject-us 20000` to inject a per-frame latency
//! regression and watch the frame objective blow its error budget (the
//! example then exits 2, like `augur-watch`'s demo binary).
//!
//! Pass `--log` to run with the structured event log attached and
//! write the canonical JSONL to `results/tourism.log.jsonl` —
//! byte-identical across same-seed runs, so CI diffs it and
//! `augur-doctor --logs` gates its WARN/ERROR patterns against
//! `results/baseline/log_fingerprints.json`.
//!
//! Pass `--profile` to write deterministic flamegraph artifacts —
//! `results/tourism_city.folded` (flamegraph.pl / inferno collapsed
//! stacks) and `results/tourism_city.speedscope.json` (open at
//! <https://www.speedscope.app>). Span times are modeled work under the
//! fixed seed, so both files are byte-identical across runs.
//!
//! Pass `--xray` to write the bottleneck report (critical-path ranking,
//! parallel-speedup bounds, per-stage queueing model) to
//! `results/tourism_city.xray.json` — the artifact `augur-doctor
//! --xray` diffs against a committed baseline. Byte-identical across
//! same-seed runs.

use augur::core::tourism::{
    run_instrumented, run_logged, run_profiled, run_traced, run_watched, run_xray, watch_config,
    TourismParams,
};
use augur::log::{render_jsonl, EventLog};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};
use augur::watch::WatchSession;

/// The value following `name` in the argument list, if present.
fn arg_u64(name: &str) -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next()?.parse().ok();
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let watch = std::env::args().any(|a| a == "--watch");
    let profile_run = std::env::args().any(|a| a == "--profile");
    let xray_run = std::env::args().any(|a| a == "--xray");
    let log_run = std::env::args().any(|a| a == "--log");
    let mut params = TourismParams::default();
    if watch {
        // A lighter tour keeps the healthy modeled frame p95 inside the
        // 16.6 ms objective, so `--inject-us` alone decides the verdict
        // instead of the default load riding the threshold.
        params.pois = 8_000;
    }
    println!(
        "tourism scenario: {} POIs, {:.0} s tour, k={} per retrieval",
        params.pois, params.duration_s, params.k
    );
    let registry = Registry::new();
    let mut watch_session = None;
    let report = if watch {
        let mut config = watch_config(params.seed);
        config.inject_cycle_delay_us = arg_u64("--inject-us").unwrap_or(0);
        let mut session = WatchSession::new(config)?;
        let report = run_watched(&params, &mut session)?;
        watch_session = Some(session);
        report
    } else if profile_run {
        let (report, profile) = run_profiled(&params, &registry)?;
        std::fs::create_dir_all("results")?;
        let folded = "results/tourism_city.folded";
        std::fs::write(folded, profile.render_folded())?;
        let speedscope = "results/tourism_city.speedscope.json";
        std::fs::write(speedscope, profile.render_speedscope("tourism_city"))?;
        println!("profile: wrote {folded} and {speedscope}");
        report
    } else if xray_run {
        let (report, xray) = run_xray(&params, &registry)?;
        std::fs::create_dir_all("results")?;
        let path = "results/tourism_city.xray.json";
        std::fs::write(path, xray.render_json())?;
        print!("{}", xray.render_panel());
        println!("xray: wrote {path}");
        report
    } else if log_run {
        // A denser tour (more labels per retrieval) forces the
        // declutterer to shed bubbles, so the baseline fingerprint set
        // exercises the WARN path, not just the summary record.
        params.k = 64;
        params.radius_m = 400.0;
        let recorder = FlightRecorder::new(1 << 16);
        let log = EventLog::new(1 << 14);
        let report = run_logged(&params, &registry, &recorder, &log)?;
        let records = log.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/tourism.log.jsonl";
        std::fs::write(path, render_jsonl(&records))?;
        println!(
            "log: wrote {path} ({} records, {} dropped)",
            records.len(),
            log.dropped_records()
        );
        report
    } else if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/tourism.trace.json";
        std::fs::write(path, render_chrome_trace("tourism", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!("\nretrieval ({} queries):", report.queries);
    println!(
        "  R-tree k-NN     {:>9.1} dist-evals/query",
        report.knn_indexed_work
    );
    println!(
        "  linear scan     {:>9.1} dist-evals/query",
        report.scan_work
    );
    println!("  index speed-up  {:>9.1}x", report.index_speedup);
    println!(
        "\ntracking: mean position error {:.2} m (Kalman fusion)",
        report.tracking_error_m
    );
    println!("\npresentation:");
    println!("  POIs surfaced        {}", report.pois_surfaced);
    println!("  x-ray reveals        {}", report.xray_reveals);
    println!(
        "  bubble overlap       {:.1}% → decluttered {:.1}% (dropping {:.1}%)",
        report.naive_overlap * 100.0,
        report.decluttered_overlap * 100.0,
        report.declutter_drop_ratio * 100.0
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    let snapshot = match &watch_session {
        Some(session) => session.registry().snapshot(),
        None => registry.snapshot(),
    };
    print!("{}", render_span_breakdown(&snapshot));
    if let Some(session) = &watch_session {
        println!("\nwatch (SLO burn-rate verdicts on the tour's manual clock):");
        print!("{}", session.dashboard());
        let health = session.health();
        if health.ok {
            println!("\nhealth OK — every objective inside its error budget");
        } else {
            let violated: Vec<&str> = health
                .slos
                .iter()
                .filter(|s| !s.ok)
                .map(|s| s.name.as_str())
                .collect();
            println!("\nhealth VIOLATED — {}", violated.join(", "));
            std::process::exit(2);
        }
    }
    Ok(())
}
