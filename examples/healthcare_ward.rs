//! Healthcare scenario (§3.3): streaming vitals with AR alerting.
//!
//! A patient cohort streams vitals through the broker; threshold
//! detectors raise alerts that the report scores against the injected
//! episode ground truth — recall, false alarms, and alert latency.
//!
//! Run with: `cargo run --release --example healthcare_ward`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/healthcare.trace.json` (open at <https://ui.perfetto.dev>);
//! patient 0's samples trace end-to-end through the broker pipeline.

use augur::core::healthcare::{run_instrumented, run_traced, HealthcareParams};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let params = HealthcareParams::default();
    println!(
        "healthcare scenario: {} patients for {:.0} min at {:.0} Hz",
        params.patients,
        params.duration_s / 60.0,
        1.0 / params.period_s
    );
    let registry = Registry::new();
    let report = if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/healthcare.trace.json";
        std::fs::write(path, render_chrome_trace("healthcare", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!("\nstreaming:");
    println!("  samples through broker  {}", report.samples_streamed);
    println!(
        "  pipeline throughput     {:.0} records/s",
        report.pipeline_throughput_rps
    );
    println!("\ndetection quality over {} episodes:", report.episodes);
    println!("  recall                 {:.1}%", report.recall * 100.0);
    println!("  median alert latency   {:.1} s", report.median_latency_s);
    println!("  p95 alert latency      {:.1} s", report.p95_latency_s);
    println!(
        "  false alarms           {} ({:.2}/patient-hour)",
        report.false_alarms, report.false_alarm_rate_per_patient_hour
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    print!("{}", render_span_breakdown(&registry.snapshot()));
    Ok(())
}
