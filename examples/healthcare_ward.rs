//! Healthcare scenario (§3.3): streaming vitals with AR alerting.
//!
//! A patient cohort streams vitals through the broker; threshold
//! detectors raise alerts that the report scores against the injected
//! episode ground truth — recall, false alarms, and alert latency.
//!
//! Run with: `cargo run --release --example healthcare_ward`

use augur::core::healthcare::{run_instrumented, HealthcareParams};
use augur::telemetry::{render_span_breakdown, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = HealthcareParams::default();
    println!(
        "healthcare scenario: {} patients for {:.0} min at {:.0} Hz",
        params.patients,
        params.duration_s / 60.0,
        1.0 / params.period_s
    );
    let registry = Registry::new();
    let report = run_instrumented(&params, &registry)?;
    println!("\nstreaming:");
    println!("  samples through broker  {}", report.samples_streamed);
    println!(
        "  pipeline throughput     {:.0} records/s",
        report.pipeline_throughput_rps
    );
    println!("\ndetection quality over {} episodes:", report.episodes);
    println!("  recall                 {:.1}%", report.recall * 100.0);
    println!("  median alert latency   {:.1} s", report.median_latency_s);
    println!("  p95 alert latency      {:.1} s", report.p95_latency_s);
    println!(
        "  false alarms           {} ({:.2}/patient-hour)",
        report.false_alarms, report.false_alarm_rate_per_patient_hour
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    print!("{}", render_span_breakdown(&registry.snapshot()));
    Ok(())
}
