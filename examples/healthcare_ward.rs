//! Healthcare scenario (§3.3): streaming vitals with AR alerting.
//!
//! A patient cohort streams vitals through the broker; threshold
//! detectors raise alerts that the report scores against the injected
//! episode ground truth — recall, false alarms, and alert latency.
//!
//! Run with: `cargo run --release --example healthcare_ward`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/healthcare.trace.json` (open at <https://ui.perfetto.dev>);
//! patient 0's samples trace end-to-end through the broker pipeline.
//!
//! Pass `--watch` to grade the ward against its three SLOs (detect
//! latency, sample-to-alert latency, vitals drop ratio) under a watch
//! session and print the live dashboard; a violated objective exits 2.
//!
//! Pass `--xray` to write the bottleneck report (critical-path ranking,
//! parallel-speedup bounds, per-stage queueing model) to
//! `results/healthcare_ward.xray.json` — byte-identical across
//! same-seed runs, diffable with `augur-doctor --xray`.

use augur::core::healthcare::{
    run_instrumented, run_traced, run_watched, run_xray, watch_config, HealthcareParams,
};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};
use augur::watch::WatchSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let watch = std::env::args().any(|a| a == "--watch");
    let xray_run = std::env::args().any(|a| a == "--xray");
    let params = HealthcareParams::default();
    println!(
        "healthcare scenario: {} patients for {:.0} min at {:.0} Hz",
        params.patients,
        params.duration_s / 60.0,
        1.0 / params.period_s
    );
    let registry = Registry::new();
    let mut watch_session = None;
    let report = if watch {
        let mut session = WatchSession::new(watch_config(params.seed))?;
        let report = run_watched(&params, &mut session)?;
        watch_session = Some(session);
        report
    } else if xray_run {
        let (report, xray) = run_xray(&params, &registry)?;
        std::fs::create_dir_all("results")?;
        let path = "results/healthcare_ward.xray.json";
        std::fs::write(path, xray.render_json())?;
        print!("{}", xray.render_panel());
        println!("xray: wrote {path}");
        report
    } else if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/healthcare.trace.json";
        std::fs::write(path, render_chrome_trace("healthcare", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!("\nstreaming:");
    println!("  samples through broker  {}", report.samples_streamed);
    println!(
        "  pipeline throughput     {:.0} records/s",
        report.pipeline_throughput_rps
    );
    println!("\ndetection quality over {} episodes:", report.episodes);
    println!("  recall                 {:.1}%", report.recall * 100.0);
    println!("  median alert latency   {:.1} s", report.median_latency_s);
    println!("  p95 alert latency      {:.1} s", report.p95_latency_s);
    println!(
        "  false alarms           {} ({:.2}/patient-hour)",
        report.false_alarms, report.false_alarm_rate_per_patient_hour
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    let snapshot = match &watch_session {
        Some(session) => session.registry().snapshot(),
        None => registry.snapshot(),
    };
    print!("{}", render_span_breakdown(&snapshot));
    if let Some(session) = &watch_session {
        println!("\nwatch (SLO burn-rate verdicts on the ward's manual clock):");
        print!("{}", session.dashboard());
        let health = session.health();
        if health.ok {
            println!("\nhealth OK — every objective inside its error budget");
        } else {
            let violated: Vec<&str> = health
                .slos
                .iter()
                .filter(|s| !s.ok)
                .map(|s| s.name.as_str())
                .collect();
            println!("\nhealth VIOLATED — {}", violated.join(", "));
            std::process::exit(2);
        }
    }
    Ok(())
}
