//! Quickstart: the smallest end-to-end Augur loop.
//!
//! Builds a POI database, ingests a few sensor events through the
//! platform facade, installs one interpretation rule, and surfaces a
//! recommendation as an AR overlay.
//!
//! Run with: `cargo run --release --example quickstart`

use augur::core::{AugurPlatform, PlatformConfig};
use augur::geo::{poi::synthetic_database, GeoPoint, PoiId};
use augur::semantic::{ActionTemplate, Condition, Fact, FeatureId, Rule};
use augur::sensor::{DeviceId, SensorEvent, SensorReading, Timestamp, VitalSign, VitalsSample};
use augur::telemetry::Registry;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deployment anchored at HKUST with a synthetic POI database
    //    standing in for the proprietary feeds the paper assumes.
    let origin = GeoPoint::new(22.3364, 114.2655)?;
    let mut platform = AugurPlatform::new(PlatformConfig::new(origin))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    platform.set_pois(synthetic_database(origin, 500, &mut rng)?);
    println!(
        "platform ready: {} POIs indexed",
        platform.pois().map_or(0, |db| db.len())
    );

    // 2. Ingest a little data: a wearable streaming heart rate.
    for i in 0..30u64 {
        platform.ingest(&SensorEvent::new(
            DeviceId(1),
            Timestamp::from_secs(i),
            SensorReading::Vitals(VitalsSample {
                time: Timestamp::from_secs(i),
                patient: 1,
                sign: VitalSign::HeartRate,
                value: 68.0 + (i % 5) as f64,
                in_anomaly: false,
            }),
        ))?;
    }
    println!(
        "ingested {} events into the stream substrate",
        platform.ingested()
    );

    // 3. One interpretation rule: recommendations become shelf labels
    //    while the user is shopping.
    platform.add_rule(Rule::new(
        "recommend",
        vec![
            Condition::FactIs("recommendation".into()),
            Condition::ActivityIs("shopping".into()),
        ],
        ActionTemplate::ShowLabel {
            text: "Recommended for you (score {value})".into(),
            priority: 0.8,
        },
    )?);

    // 4. An analytics fact arrives; the platform interprets it under the
    //    user's context and pins the overlay to the POI.
    let fact = Fact::new("recommendation", FeatureId(42), 0.93);
    let directives = platform.surface(&fact, PoiId(42), Some("shopping"))?;
    println!("interpretation fired {} directive(s):", directives.len());
    for d in &directives {
        println!("  {d:?}");
    }
    println!(
        "scene graph now holds {} overlay item(s)",
        platform.scene().len()
    );

    // 5. Observability: any component can publish to the process-wide
    //    registry; one call renders everything for a Prometheus scrape.
    let telemetry = Registry::global();
    telemetry
        .counter("quickstart_events_total")
        .add(platform.ingested());
    telemetry
        .gauge("quickstart_pois_indexed")
        .set(platform.pois().map_or(0, |db| db.len()) as f64);
    println!("\nmetrics exposition:");
    print!("{}", telemetry.render_prometheus());
    Ok(())
}
