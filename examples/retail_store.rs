//! Retail scenario (§3.1): big-data recommendations on AR shelves.
//!
//! Trains the CF / popularity / random recommenders on a synthetic
//! purchase log, evaluates them leave-one-out, and reports the AR
//! session's label-layout quality — the full E7 story.
//!
//! Run with: `cargo run --release --example retail_store`

use augur::core::retail::{run_instrumented, RetailParams};
use augur::telemetry::{render_span_breakdown, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = RetailParams::default();
    println!(
        "retail scenario: {} users × {} interactions, {} product groups",
        params.users, params.interactions_per_user, params.groups
    );
    let registry = Registry::new();
    let report = run_instrumented(&params, &registry)?;
    println!(
        "\nrecommender quality (leave-one-out, hit-rate@{}):",
        params.top_k
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "item-item CF", report.cf.hit_rate, report.cf.mrr
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "popularity", report.popularity.hit_rate, report.popularity.mrr
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "random", report.random.hit_rate, report.random.mrr
    );
    println!(
        "\nbig-data uplift over popularity baseline: {:.2}x",
        report.uplift_vs_popularity
    );
    println!("\nAR shelf session: {} overlays", report.overlays_shown);
    println!(
        "  naive bubbles    overlap {:>5.1}%",
        report.naive_layout.overlap_ratio * 100.0
    );
    println!(
        "  decluttered      overlap {:>5.1}%  (mean displacement {:.0} px)",
        report.decluttered_layout.overlap_ratio * 100.0,
        report.decluttered_layout.mean_displacement_px
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    print!("{}", render_span_breakdown(&registry.snapshot()));
    Ok(())
}
