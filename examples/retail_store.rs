//! Retail scenario (§3.1): big-data recommendations on AR shelves.
//!
//! Trains the CF / popularity / random recommenders on a synthetic
//! purchase log, evaluates them leave-one-out, and reports the AR
//! session's label-layout quality — the full E7 story.
//!
//! Run with: `cargo run --release --example retail_store`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/retail.trace.json` (open at <https://ui.perfetto.dev>).
//!
//! Pass `--watch` to run the pipeline under an SLO watch session
//! (per-stage latency objective) and print the live dashboard; a
//! violated objective exits 2.
//!
//! Pass `--xray` to write the bottleneck report (critical-path ranking,
//! parallel-speedup bounds, per-stage queueing model) to
//! `results/retail_store.xray.json` — byte-identical across same-seed
//! runs, diffable with `augur-doctor --xray`.

use augur::core::retail::{
    run_instrumented, run_traced, run_watched, run_xray, watch_config, RetailParams,
};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};
use augur::watch::WatchSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let watch = std::env::args().any(|a| a == "--watch");
    let xray_run = std::env::args().any(|a| a == "--xray");
    let params = RetailParams::default();
    println!(
        "retail scenario: {} users × {} interactions, {} product groups",
        params.users, params.interactions_per_user, params.groups
    );
    let registry = Registry::new();
    let mut watch_session = None;
    let report = if watch {
        let mut session = WatchSession::new(watch_config(params.seed))?;
        let report = run_watched(&params, &mut session)?;
        watch_session = Some(session);
        report
    } else if xray_run {
        let (report, xray) = run_xray(&params, &registry)?;
        std::fs::create_dir_all("results")?;
        let path = "results/retail_store.xray.json";
        std::fs::write(path, xray.render_json())?;
        print!("{}", xray.render_panel());
        println!("xray: wrote {path}");
        report
    } else if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/retail.trace.json";
        std::fs::write(path, render_chrome_trace("retail", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!(
        "\nrecommender quality (leave-one-out, hit-rate@{}):",
        params.top_k
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "item-item CF", report.cf.hit_rate, report.cf.mrr
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "popularity", report.popularity.hit_rate, report.popularity.mrr
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "random", report.random.hit_rate, report.random.mrr
    );
    println!(
        "\nbig-data uplift over popularity baseline: {:.2}x",
        report.uplift_vs_popularity
    );
    println!("\nAR shelf session: {} overlays", report.overlays_shown);
    println!(
        "  naive bubbles    overlap {:>5.1}%",
        report.naive_layout.overlap_ratio * 100.0
    );
    println!(
        "  decluttered      overlap {:>5.1}%  (mean displacement {:.0} px)",
        report.decluttered_layout.overlap_ratio * 100.0,
        report.decluttered_layout.mean_displacement_px
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    let snapshot = match &watch_session {
        Some(session) => session.registry().snapshot(),
        None => registry.snapshot(),
    };
    print!("{}", render_span_breakdown(&snapshot));
    if let Some(session) = &watch_session {
        println!("\nwatch (SLO burn-rate verdicts on the pipeline's manual clock):");
        print!("{}", session.dashboard());
        let health = session.health();
        if health.ok {
            println!("\nhealth OK — every objective inside its error budget");
        } else {
            let violated: Vec<&str> = health
                .slos
                .iter()
                .filter(|s| !s.ok)
                .map(|s| s.name.as_str())
                .collect();
            println!("\nhealth VIOLATED — {}", violated.join(", "));
            std::process::exit(2);
        }
    }
    Ok(())
}
