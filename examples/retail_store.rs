//! Retail scenario (§3.1): big-data recommendations on AR shelves.
//!
//! Trains the CF / popularity / random recommenders on a synthetic
//! purchase log, evaluates them leave-one-out, and reports the AR
//! session's label-layout quality — the full E7 story.
//!
//! Run with: `cargo run --release --example retail_store`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/retail.trace.json` (open at <https://ui.perfetto.dev>).

use augur::core::retail::{run_instrumented, run_traced, RetailParams};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let params = RetailParams::default();
    println!(
        "retail scenario: {} users × {} interactions, {} product groups",
        params.users, params.interactions_per_user, params.groups
    );
    let registry = Registry::new();
    let report = if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/retail.trace.json";
        std::fs::write(path, render_chrome_trace("retail", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!(
        "\nrecommender quality (leave-one-out, hit-rate@{}):",
        params.top_k
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "item-item CF", report.cf.hit_rate, report.cf.mrr
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "popularity", report.popularity.hit_rate, report.popularity.mrr
    );
    println!(
        "  {:<14} hit-rate {:>6.3}   mrr {:>6.4}",
        "random", report.random.hit_rate, report.random.mrr
    );
    println!(
        "\nbig-data uplift over popularity baseline: {:.2}x",
        report.uplift_vs_popularity
    );
    println!("\nAR shelf session: {} overlays", report.overlays_shown);
    println!(
        "  naive bubbles    overlap {:>5.1}%",
        report.naive_layout.overlap_ratio * 100.0
    );
    println!(
        "  decluttered      overlap {:>5.1}%  (mean displacement {:.0} px)",
        report.decluttered_layout.overlap_ratio * 100.0,
        report.decluttered_layout.mean_displacement_px
    );
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    print!("{}", render_span_breakdown(&registry.snapshot()));
    Ok(())
}
