//! Public-services scenario (§3.4): VANET collision warnings.
//!
//! Vehicles share beacons over a lossy channel; each predicts closest
//! approach from what it heard and raises AR windshield warnings. The
//! report scores coverage and lead time against ground-truth near
//! misses, then reconstructs the Figure 5 influence entry for the field.
//!
//! Run with: `cargo run --release --example smart_traffic`
//!
//! Pass `--trace` to also write a Perfetto-compatible causal trace to
//! `results/traffic.trace.json` (open at <https://ui.perfetto.dev>).
//!
//! Pass `--watch` to run the simulation under an SLO watch session
//! (per-step latency objective) and print the live dashboard; a
//! violated objective exits 2.
//!
//! Pass `--xray` to write the bottleneck report (critical-path ranking,
//! parallel-speedup bounds, per-stage queueing model) to
//! `results/smart_traffic.xray.json` — byte-identical across same-seed
//! runs, diffable with `augur-doctor --xray`.

use augur::core::traffic::{
    run, run_instrumented, run_traced, run_watched, run_xray, watch_config, TrafficParams,
};
use augur::telemetry::{render_chrome_trace, render_span_breakdown, FlightRecorder, Registry};
use augur::watch::WatchSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let watch = std::env::args().any(|a| a == "--watch");
    let xray_run = std::env::args().any(|a| a == "--xray");
    let params = TrafficParams::default();
    println!(
        "traffic scenario: {} vehicles for {:.0} s, beacons every {:.1} s, {:.0}% loss",
        params.vehicles,
        params.duration_s,
        params.share_period_s,
        params.loss * 100.0
    );
    let registry = Registry::new();
    let mut watch_session = None;
    let report = if watch {
        let mut session = WatchSession::new(watch_config(params.seed))?;
        let report = run_watched(&params, &mut session)?;
        watch_session = Some(session);
        report
    } else if xray_run {
        let (report, xray) = run_xray(&params, &registry)?;
        std::fs::create_dir_all("results")?;
        let path = "results/smart_traffic.xray.json";
        std::fs::write(path, xray.render_json())?;
        print!("{}", xray.render_panel());
        println!("xray: wrote {path}");
        report
    } else if trace {
        let recorder = FlightRecorder::new(1 << 16);
        let report = run_traced(&params, &registry, &recorder)?;
        let events = recorder.drain();
        std::fs::create_dir_all("results")?;
        let path = "results/traffic.trace.json";
        std::fs::write(path, render_chrome_trace("traffic", &events))?;
        println!(
            "trace: wrote {path} ({} events, {} dropped)",
            events.len(),
            recorder.dropped_events()
        );
        report
    } else {
        run_instrumented(&params, &registry)?
    };
    println!("\nchannel:");
    println!(
        "  beacons delivered/lost  {}/{}",
        report.beacons_delivered, report.beacons_lost
    );
    println!("\nwarning quality over {} near misses:", report.near_misses);
    println!("  coverage        {:.1}%", report.coverage * 100.0);
    println!("  mean lead time  {:.2} s", report.mean_lead_time_s);
    println!(
        "  false alarms    {} ({:.1}% of warnings)",
        report.false_alarms,
        report.false_alarm_ratio * 100.0
    );
    // Sweep the sharing period to show the timeliness trade.
    println!("\nsharing-period sweep (coverage / lead time):");
    for period in [0.2, 0.5, 1.0, 2.0, 4.0] {
        let r = run(&TrafficParams {
            share_period_s: period,
            ..params.clone()
        })?;
        println!(
            "  {:>4.1} s  →  {:>5.1}%  /  {:.2} s",
            period,
            r.coverage * 100.0,
            r.mean_lead_time_s
        );
    }
    println!("\nper-stage breakdown (modeled work units, deterministic under the seed):");
    let snapshot = match &watch_session {
        Some(session) => session.registry().snapshot(),
        None => registry.snapshot(),
    };
    print!("{}", render_span_breakdown(&snapshot));
    if let Some(session) = &watch_session {
        println!("\nwatch (SLO burn-rate verdicts on the simulation clock):");
        print!("{}", session.dashboard());
        let health = session.health();
        if health.ok {
            println!("\nhealth OK — every objective inside its error budget");
        } else {
            let violated: Vec<&str> = health
                .slos
                .iter()
                .filter(|s| !s.ok)
                .map(|s| s.name.as_str())
                .collect();
            println!("\nhealth VIOLATED — {}", violated.join(", "));
            std::process::exit(2);
        }
    }
    Ok(())
}
