//! # Augur
//!
//! An AR + big-data convergence platform: a full implementation of the
//! system sketched in *"When Augmented Reality Meets Big Data"* (Huang,
//! Hui, Peylo — ICDCS 2017 workshops). This umbrella crate re-exports
//! every subsystem; depend on it to get the whole platform, or on the
//! individual `augur-*` crates for a single substrate.
//!
//! ## The loop
//!
//! Sensors produce events ([`sensor`]) anchored in space ([`geo`]);
//! events land in a partitioned log and flow through event-time windows
//! ([`stream`]) into stores ([`store`]) and analytics ([`analytics`]);
//! facts are interpreted under user context into AR directives
//! ([`semantic`]); directives materialise as registered, decluttered,
//! occlusion-aware overlays ([`render`]) positioned by fused tracking
//! ([`track`]); heavy stages offload to the cloud when the network makes
//! that worthwhile ([`cloud`]); personal data is protected — and attacked,
//! to verify the protection ([`privacy`]). The [`core`] crate wires the
//! loop together and ships the paper's four application scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use augur::core::{AugurPlatform, PlatformConfig};
//! use augur::geo::{poi::synthetic_database, GeoPoint, PoiId};
//! use augur::semantic::{ActionTemplate, Condition, Fact, FeatureId, Rule};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let origin = GeoPoint::new(22.3364, 114.2655)?;
//! let mut platform = AugurPlatform::new(PlatformConfig::new(origin))?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! platform.set_pois(synthetic_database(origin, 100, &mut rng)?);
//! platform.add_rule(Rule::new(
//!     "recommend",
//!     vec![Condition::FactIs("recommendation".into())],
//!     ActionTemplate::ShowLabel { text: "Score {value}".into(), priority: 0.8 },
//! )?);
//! let fact = Fact::new("recommendation", FeatureId(3), 0.9);
//! let shown = platform.surface(&fact, PoiId(3), None)?;
//! assert_eq!(shown.len(), 1);
//! assert_eq!(platform.scene().len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! ## Reproduction harness
//!
//! Every claim of the source paper maps to an experiment binary in
//! `augur-bench` (`e1_influence` … `e12_stream`, ablations `a1`–`a3`);
//! DESIGN.md carries the index and EXPERIMENTS.md the measured results.

/// Streaming analytics: detectors, sketches, mining, recommenders.
pub use augur_analytics as analytics;
/// Computation offloading between device and cloud.
pub use augur_cloud as cloud;
/// Platform assembly, scenarios, and the influence matrix.
pub use augur_core as core;
/// Geospatial substrate: coordinates, indexes, POIs, city models.
pub use augur_geo as geo;
/// Deterministic structured event log with trace correlation.
pub use augur_log as log;
/// Privacy mechanisms and attack evaluations.
pub use augur_privacy as privacy;
/// Deterministic profiling: folded stacks, speedscope, allocation accounting.
pub use augur_profile as profile;
/// AR presentation: occlusion, layout, frame pacing.
pub use augur_render as render;
/// Semantic content model, JSON, interpretation, entity linking.
pub use augur_semantic as semantic;
/// Synthetic sensors and mobility models.
pub use augur_sensor as sensor;
/// Storage engines: columnar, LSM, time-series.
pub use augur_store as store;
/// The streaming substrate: broker, pipelines, windows.
pub use augur_stream as stream;
/// Observability: metrics, spans, time sources, exposition.
pub use augur_telemetry as telemetry;
/// Pose tracking and registration.
pub use augur_track as track;
/// Health monitoring: rollups, SLO burn-rate alerts, live endpoint.
pub use augur_watch as watch;
/// Bottleneck analysis: critical paths, speedup bounds, queueing models.
pub use augur_xray as xray;
