//! Failure injection and degraded-mode behaviour across crates: the
//! platform must stay sane when sensors die, channels saturate, and
//! inputs go hostile.

use augur::analytics::ThresholdDetector;
use augur::geo::Enu;
use augur::sensor::{
    GpsParams, GpsSensor, ImuParams, ImuSensor, RandomWaypoint, Trajectory, TrajectoryParams,
};
use augur::stream::{Broker, PipelineBuilder, Record};
use augur::track::{registration::run_tracker, KalmanParams, KalmanTracker, Tracker};
use rand::SeedableRng;

#[test]
fn tracker_survives_total_gps_outage() {
    // GPS dies entirely: the Kalman tracker must keep producing finite
    // poses from IMU alone (they will drift, but never NaN or panic).
    let params = TrajectoryParams::default();
    let truth =
        RandomWaypoint::new(params, rand::rngs::StdRng::seed_from_u64(1)).sample(30.0, 30.0);
    let gps_params = GpsParams {
        dropout_probability: 1.0, // nothing ever arrives
        ..Default::default()
    };
    let fixes = GpsSensor::new(gps_params, rand::rngs::StdRng::seed_from_u64(2)).track(&truth);
    assert!(fixes.is_empty());
    let readings =
        ImuSensor::new(ImuParams::default(), rand::rngs::StdRng::seed_from_u64(3)).track(&truth);
    let mut tracker = KalmanTracker::new(KalmanParams::default());
    let poses = run_tracker(&mut tracker, &truth, &fixes, &readings);
    assert_eq!(poses.len(), truth.len());
    for p in &poses {
        assert!(p.position.east.is_finite() && p.position.north.is_finite());
        assert!(p.heading_deg.is_finite());
    }
    assert!(
        !tracker.is_initialized(),
        "no fix ever initialised position"
    );
}

#[test]
fn tracker_recovers_after_long_outage() {
    // GPS returns after a 20 s gap: the filter must re-converge rather
    // than diverge on stale covariance.
    let mut tracker = KalmanTracker::new(KalmanParams::default());
    let fix = |t_ms: u64, e: f64| augur::sensor::GpsFix {
        time: augur::sensor::Timestamp::from_millis(t_ms),
        position: Enu::new(e, 0.0, 0.0),
        speed_mps: 0.0,
        accuracy_m: 4.0,
    };
    for i in 0..10 {
        tracker.update_gps(&fix(i * 1000, i as f64));
    }
    // 20 s silence, then fixes at a new location.
    for i in 0..20 {
        tracker.update_gps(&fix(30_000 + i * 1000, 100.0));
    }
    let pose = tracker.pose(augur::sensor::Timestamp::from_secs(50));
    assert!(
        (pose.position.east - 100.0).abs() < 5.0,
        "re-converged east {}",
        pose.position.east
    );
}

#[test]
fn pipeline_survives_hostile_payloads() {
    let broker = Broker::new();
    broker.create_topic("t", 2).unwrap();
    // A mix of garbage: empty payloads, giant payloads, truncated ints.
    broker
        .append_batch(
            "t",
            (0..1_000u64).map(|i| {
                let payload: Vec<u8> = match i % 5 {
                    0 => vec![],
                    1 => vec![0u8; 10_000],
                    2 => vec![1, 2, 3],
                    3 => i.to_le_bytes().to_vec(),
                    _ => i
                        .to_le_bytes()
                        .iter()
                        .chain([0xFFu8].iter())
                        .copied()
                        .collect(),
                };
                Record::new(i, payload, i)
            }),
        )
        .unwrap();
    let mut pipeline = PipelineBuilder::new(broker, "t", |r| {
        // Strict 8-byte decoder: everything else must be skipped.
        let bytes: [u8; 8] = r.payload.as_ref().try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    })
    .build();
    let (items, metrics) = pipeline.collect().unwrap();
    assert_eq!(items.len(), 200, "exactly the i%5==3 records decode");
    assert_eq!(metrics.records_in, 200);
}

#[test]
fn continuous_pipeline_stops_cleanly_under_load() {
    let broker = Broker::new();
    broker.create_topic("t", 4).unwrap();
    let b2 = broker.clone();
    // Producer thread hammers the topic while we start and stop the
    // consumer; nothing may deadlock or panic.
    let producer = std::thread::spawn(move || {
        for i in 0..50_000u64 {
            b2.append("t", Record::new(i, i.to_le_bytes().to_vec(), i))
                .unwrap();
        }
    });
    let p = PipelineBuilder::new(broker, "t", |r| {
        r.payload.as_ref().try_into().ok().map(u64::from_le_bytes)
    })
    .channel_capacity(16)
    .build();
    let handle = p
        .spawn_continuous(|v| {
            std::hint::black_box(v);
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let seen_before_stop = handle.processed();
    handle.stop(); // must join promptly even with the producer running
    producer.join().unwrap();
    assert!(seen_before_stop > 0, "consumer made progress before stop");
}

#[test]
fn detector_handles_nan_and_extreme_values() {
    let mut d = ThresholdDetector::new(50.0, 100.0, 2, 3).unwrap();
    // NaN compares false on both bounds: treated as in-range; must not
    // poison the detector state.
    assert!(d.observe(0, f64::NAN).is_none());
    assert!(d.observe(1, f64::INFINITY).is_none());
    let alert = d.observe(2, f64::INFINITY);
    assert!(alert.is_some(), "two consecutive +inf breach high bound");
    assert!(alert.unwrap().severity.is_infinite());
    // Recovery still works afterwards.
    for t in 3..6 {
        d.observe(t, 75.0);
    }
    assert!(!d.is_active());
}

#[test]
fn consumer_group_rebalance_mid_consumption() {
    use augur::stream::ConsumerGroup;
    let broker = Broker::new();
    broker.create_topic("t", 8).unwrap();
    broker
        .append_batch("t", (0..800u64).map(|i| Record::new(i, vec![0u8], i)))
        .unwrap();
    let group = ConsumerGroup::new("g", broker);
    group.join("m0");
    // m0 consumes everything it owns and commits.
    let mut consumed = 0usize;
    for pid in group.assignment("t", "m0").unwrap() {
        let recs = group.poll("t", "m0", pid, 10_000).unwrap();
        consumed += recs.len();
        if let Some(last) = recs.last() {
            group.commit("t", pid, last.offset.0 + 1);
        }
    }
    assert_eq!(consumed, 800);
    // A second member joins: m0 keeps only half the partitions, and its
    // old commits remain valid for the partitions it retains.
    group.join("m1");
    let m0_parts = group.assignment("t", "m0").unwrap();
    let m1_parts = group.assignment("t", "m1").unwrap();
    assert_eq!(m0_parts.len() + m1_parts.len(), 8);
    for pid in &m0_parts {
        assert!(group.poll("t", "m0", *pid, 100).unwrap().is_empty());
    }
    // Offsets are *group*-level: m1 resumes from the group's commits on
    // its newly assigned partitions, so nothing is re-processed — the
    // exactly-once-per-group property rebalances must preserve.
    let m1_total: usize = m1_parts
        .iter()
        .map(|pid| group.poll("t", "m1", *pid, 10_000).unwrap().len())
        .sum();
    assert_eq!(m1_total, 0, "group commits survive the rebalance");
    assert_eq!(group.lag("t").unwrap(), 0);
}
