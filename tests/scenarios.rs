//! Integration: the four §3 scenarios hold their headline invariants at
//! test scale, and the Figure 5 reconstruction derives from them.

use augur::core::{healthcare, influence_report, retail, tourism, traffic, InfluenceLevel};

#[test]
fn retail_ordering_and_layout_invariants() {
    let r = retail::run(&retail::RetailParams {
        users: 400,
        ..Default::default()
    })
    .unwrap();
    assert!(r.cf.hit_rate > r.popularity.hit_rate);
    assert!(r.popularity.hit_rate >= r.random.hit_rate);
    assert!(r.decluttered_layout.overlap_ratio <= r.naive_layout.overlap_ratio);
    assert!((0.0..=1.0).contains(&r.cf.hit_rate));
}

#[test]
fn tourism_invariants() {
    let r = tourism::run(&tourism::TourismParams {
        pois: 4_000,
        duration_s: 40.0,
        ..Default::default()
    })
    .unwrap();
    assert!(r.index_speedup > 1.0);
    assert!(r.tracking_error_m.is_finite() && r.tracking_error_m < 20.0);
    assert!(r.pois_surfaced >= r.queries, "k≥1 per query");
    assert!(r.decluttered_overlap <= r.naive_overlap);
}

#[test]
fn healthcare_invariants() {
    let r = healthcare::run(&healthcare::HealthcareParams {
        patients: 8,
        duration_s: 600.0,
        ..Default::default()
    })
    .unwrap();
    assert!((0.0..=1.0).contains(&r.recall));
    assert!(r.detected <= r.episodes);
    assert!(r.median_latency_s <= r.p95_latency_s);
    assert_eq!(r.samples_streamed, 8 * 3 * 600);
}

#[test]
fn traffic_invariants() {
    let r = traffic::run(&traffic::TrafficParams {
        vehicles: 20,
        duration_s: 40.0,
        ..Default::default()
    })
    .unwrap();
    assert!((0.0..=1.0).contains(&r.coverage));
    assert!(r.warned_in_time <= r.near_misses);
    assert!((0.0..=1.0).contains(&r.false_alarm_ratio));
    assert!(r.mean_lead_time_s >= 0.0);
}

#[test]
fn influence_reconstruction_covers_all_fields() {
    let retail_r = retail::run(&retail::RetailParams {
        users: 300,
        ..Default::default()
    })
    .unwrap();
    let tourism_r = tourism::run(&tourism::TourismParams {
        pois: 3_000,
        duration_s: 30.0,
        ..Default::default()
    })
    .unwrap();
    let health_r = healthcare::run(&healthcare::HealthcareParams {
        patients: 6,
        duration_s: 600.0,
        ..Default::default()
    })
    .unwrap();
    let traffic_r = traffic::run(&traffic::TrafficParams {
        vehicles: 20,
        duration_s: 40.0,
        ..Default::default()
    })
    .unwrap();
    let entries = influence_report(&retail_r, &tourism_r, &health_r, &traffic_r);
    assert_eq!(entries.len(), 4);
    for e in &entries {
        assert!((0.0..=1.0).contains(&e.score), "{e:?}");
        assert!(e.level >= InfluenceLevel::Low, "derived level for {e:?}");
    }
}
