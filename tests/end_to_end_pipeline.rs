//! End-to-end integration: sensors → platform → stream → interpretation
//! → scene graph. Exercises the full §2–§3 loop across crates.
#![allow(clippy::unwrap_used, clippy::expect_used)] // integration tests: a panic here IS the test failure

use augur::core::{AugurPlatform, PlatformConfig};
use augur::geo::{poi::synthetic_database, GeoPoint, PoiId};
use augur::semantic::{ActionTemplate, Condition, Fact, FeatureId, Rule};
use augur::sensor::{
    DeviceId, GpsParams, GpsSensor, RandomWaypoint, SensorEvent, SensorReading, Timestamp,
    Trajectory, TrajectoryParams, VitalSign, VitalsSample,
};
use augur::stream::PipelineBuilder;
use rand::SeedableRng;

fn origin() -> GeoPoint {
    GeoPoint::new(22.3364, 114.2655).unwrap()
}

#[test]
fn walker_gps_stream_lands_in_broker_partitions() {
    let mut platform = AugurPlatform::new(PlatformConfig::new(origin())).unwrap();
    let params = TrajectoryParams::default();
    let mut walker = RandomWaypoint::new(params, rand::rngs::StdRng::seed_from_u64(1));
    let truth = walker.sample(10.0, 30.0);
    let mut gps = GpsSensor::new(
        GpsParams {
            dropout_probability: 0.0,
            ..Default::default()
        },
        rand::rngs::StdRng::seed_from_u64(2),
    );
    let fixes = gps.track(&truth);
    for fix in &fixes {
        platform
            .ingest(&SensorEvent::new(
                DeviceId(7),
                fix.time,
                SensorReading::Gps(*fix),
            ))
            .unwrap();
    }
    let stats = platform.broker().stats("gps").unwrap();
    assert_eq!(stats.records, fixes.len() as u64);
    assert!(stats.bytes > 0);
    // All records from one device share a partition (ordering guarantee).
    let pid = platform.broker().partition_for("gps", 7).unwrap();
    let polled = platform.broker().poll("gps", pid, 0, 10_000).unwrap();
    assert_eq!(polled.len(), fixes.len());
    // Event times are monotone within the partition.
    for w in polled.windows(2) {
        assert!(w[1].record.event_time_us >= w[0].record.event_time_us);
    }
}

#[test]
fn vitals_flow_through_platform_into_timeseries_and_pipeline() {
    let mut platform = AugurPlatform::new(PlatformConfig::new(origin())).unwrap();
    for t in 0..120u64 {
        for patient in 0..3u32 {
            platform
                .ingest(&SensorEvent::new(
                    DeviceId(patient as u64),
                    Timestamp::from_secs(t),
                    SensorReading::Vitals(VitalsSample {
                        time: Timestamp::from_secs(t),
                        patient,
                        sign: VitalSign::HeartRate,
                        value: 70.0 + patient as f64,
                        in_anomaly: false,
                    }),
                ))
                .unwrap();
        }
    }
    // Time-series side: downsample patient 1's heart rate.
    let series = platform
        .timeseries()
        .series_by_name("patient-1/heart-rate")
        .unwrap();
    let buckets = platform
        .timeseries()
        .downsample(
            series,
            0,
            120_000_000,
            30_000_000,
            augur::store::Downsample::Mean,
        )
        .unwrap();
    assert_eq!(buckets.len(), 4);
    for (_, mean) in buckets {
        assert!((mean - 71.0).abs() < 1e-9);
    }
    // Stream side: a pipeline over the same topic sees every record.
    let mut pipeline = PipelineBuilder::new(platform.broker().clone(), "vitals", |r| {
        augur::core::decode_vitals(&r.payload)
    })
    .build();
    let (records, metrics) = pipeline.collect().unwrap();
    assert_eq!(records.len(), 360);
    assert_eq!(metrics.records_out, 360);
}

#[test]
fn fact_to_overlay_full_loop() {
    let mut platform = AugurPlatform::new(PlatformConfig::new(origin())).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    platform.set_pois(synthetic_database(origin(), 100, &mut rng).unwrap());
    platform.context_mut().set_interests(vec!["food".into()]);
    platform.context_mut().set_health_monitoring(true);
    platform.add_rule(
        Rule::new(
            "interest-recommendation",
            vec![
                Condition::FactIs("recommendation".into()),
                Condition::AttrInInterests("category".into()),
            ],
            ActionTemplate::ShowLabel {
                text: "{category}: score {value}".into(),
                priority: 0.9,
            },
        )
        .unwrap(),
    );
    platform.add_rule(
        Rule::new(
            "health-alert",
            vec![
                Condition::FactIs("heart_rate".into()),
                Condition::ValueAtLeast(115.0),
                Condition::HealthMonitoringOn,
            ],
            ActionTemplate::Alert {
                text: "HR {value}".into(),
                severity_per_unit: 0.005,
            },
        )
        .unwrap(),
    );
    // A matching recommendation materialises.
    let matched = platform
        .surface(
            &Fact::new("recommendation", FeatureId(5), 0.8).with_attr("category", "food"),
            PoiId(5),
            None,
        )
        .unwrap();
    assert_eq!(matched.len(), 1);
    // A non-matching one (wrong category) does not.
    let unmatched = platform
        .surface(
            &Fact::new("recommendation", FeatureId(6), 0.8).with_attr("category", "lodging"),
            PoiId(6),
            None,
        )
        .unwrap();
    assert!(unmatched.is_empty());
    // A health alert also lands in the scene.
    let alert = platform
        .surface(
            &Fact::new("heart_rate", FeatureId(1), 140.0),
            PoiId(1),
            None,
        )
        .unwrap();
    assert_eq!(alert.len(), 1);
    assert_eq!(platform.scene().len(), 2);
}
