//! Tier-1 gate for the in-repo static analyzer.
//!
//! Running `cargo test` must fail if anyone reintroduces a panic path,
//! a std lock, wall-clock/entropy use, a lock-order cycle, a blocking
//! call on the per-record path, an unbounded channel, a stray
//! `thread::spawn`, or an unreviewed `Ordering::Relaxed` — the same
//! policy `cargo run -p augur-audit` applies, wired into the test suite
//! so CI and local runs cannot skip it. The committed
//! `audit.baseline.json` is honored (pre-existing findings burn down
//! explicitly), and a stale baseline entry fails the gate so the
//! baseline only ever shrinks.

use std::path::Path;

use augur_audit::{audit_workspace, Severity};

/// The shipped tree passes the audit: no unsuppressed denials, and every
/// committed baseline entry still matches its exact finding count.
#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit_workspace(root).expect("workspace sources are readable");
    let denials: Vec<String> = report
        .denials()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        denials.is_empty(),
        "static audit found {} denial(s):\n{}",
        denials.len(),
        denials.join("\n")
    );
    assert!(
        report.stale_suppressions.is_empty(),
        "stale audit.baseline.json entries (the finding was fixed; prune them):\n{}",
        report.stale_suppressions.join("\n")
    );
    assert!(report.pass());
}

/// The analyzer itself still detects every seeded violation class —
/// guards against the audit silently going blind. Covers the five
/// concurrency rules (lock-order cycle, blocking reachability, channel
/// discipline, spawn confinement, atomics ordering) alongside the
/// original per-file rules.
#[test]
fn analyzer_detects_seeded_violations() {
    augur_audit::selftest::run().expect("self-test detects all fixture violations");
}

/// Advisories (e.g. slice indexing) are informational: they must never
/// be promoted to denials without a policy change in `rules.rs`.
#[test]
fn advisories_are_not_denials() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit_workspace(root).expect("workspace sources are readable");
    assert!(report
        .denials()
        .all(|v| matches!(v.severity, Severity::Deny)));
}

/// The baseline burn-down backlog is visible, bounded, and honest: every
/// suppressed finding is deny-severity and named by a baseline entry.
#[test]
fn baseline_suppressions_are_deny_only_and_bounded() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit_workspace(root).expect("workspace sources are readable");
    assert!(report
        .suppressed
        .iter()
        .all(|v| matches!(v.severity, Severity::Deny)));
    // The backlog shrinks over time; it must never silently grow past the
    // committed entries' total count.
    let opts = augur_audit::AuditOptions::discover(root).expect("baseline parses");
    let budget: usize = opts.baseline.entries.iter().map(|e| e.count).sum();
    assert!(
        report.suppressed.len() <= budget,
        "suppressed {} findings but the baseline only budgets {budget}",
        report.suppressed.len()
    );
}
