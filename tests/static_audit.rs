//! Tier-1 gate for the in-repo static analyzer.
//!
//! Running `cargo test` must fail if anyone reintroduces a panic path,
//! a std lock, or wall-clock/entropy use into the enforced crates — the
//! same policy `cargo run -p augur-audit` applies, wired into the test
//! suite so CI and local runs cannot skip it.

use std::path::Path;

use augur_audit::{audit_workspace, Severity};

/// The shipped tree is clean under the audit policy.
#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit_workspace(root).expect("workspace sources are readable");
    let denials: Vec<String> = report
        .denials()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        denials.is_empty(),
        "static audit found {} denial(s):\n{}",
        denials.len(),
        denials.join("\n")
    );
}

/// The analyzer itself still detects every seeded violation class —
/// guards against the audit silently going blind.
#[test]
fn analyzer_detects_seeded_violations() {
    augur_audit::selftest::run().expect("self-test detects all fixture violations");
}

/// Advisories (e.g. slice indexing) are informational: they must never
/// be promoted to denials without a policy change in `rules.rs`.
#[test]
fn advisories_are_not_denials() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit_workspace(root).expect("workspace sources are readable");
    assert!(report
        .denials()
        .all(|v| matches!(v.severity, Severity::Deny)));
}
