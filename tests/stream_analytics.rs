//! Integration: stream substrate × analytics — windowed statistics over
//! broker-resident sensor data match direct computation, and recovery
//! preserves results across a simulated crash.
#![allow(clippy::unwrap_used, clippy::expect_used)] // integration tests: a panic here IS the test failure

use augur::analytics::IncrementalView;
use augur::core::{decode_vitals, encode_vitals};
use augur::sensor::{VitalsGenerator, VitalsParams};
use augur::stream::window::StatsAggregation;
use augur::stream::{
    Broker, CheckpointStore, PipelineBuilder, Record, TumblingWindows, WindowState,
};
use rand::SeedableRng;

fn vitals_broker(patients: u32, duration_s: f64, seed: u64) -> (Broker, usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (samples, _) = VitalsGenerator::new(VitalsParams {
        patients,
        duration_s,
        episodes_per_patient: 1.0,
        ..Default::default()
    })
    .generate(&mut rng);
    let broker = Broker::new();
    broker.create_topic("vitals", 4).unwrap();
    broker
        .append_batch(
            "vitals",
            samples
                .iter()
                .map(|s| Record::new(s.patient as u64, encode_vitals(s), s.time.as_micros())),
        )
        .unwrap();
    (broker, samples.len())
}

#[test]
fn windowed_stats_match_direct_aggregation() {
    let (broker, total) = vitals_broker(5, 300.0, 10);
    // Windowed per-patient stats over 60 s tumbling windows.
    let mut pipeline =
        PipelineBuilder::new(broker.clone(), "vitals", |r| decode_vitals(&r.payload))
            .watermark_bound_us(0)
            .build();
    let (results, metrics) = pipeline
        .run_windowed(
            TumblingWindows::new(60_000_000),
            StatsAggregation::new(|r: &augur::core::VitalsRecord| r.value),
            None,
            None,
            false,
        )
        .unwrap();
    assert_eq!(metrics.records_in as usize, total);
    // 5 patients × 5 windows of 60 s.
    assert_eq!(results.len(), 25);
    // Counts per window: 60 samples × 3 signs.
    for r in &results {
        assert_eq!(r.value.count, 180, "window {:?}", r.window);
        assert!(r.value.min <= r.value.max);
    }
    // Cross-check one window against a direct scan of the log.
    let target = &results[0];
    let mut direct = 0u64;
    let mut direct_sum = 0.0;
    for p in 0..broker.partition_count("vitals").unwrap() {
        for pr in broker
            .poll("vitals", augur::stream::PartitionId(p), 0, usize::MAX)
            .unwrap()
        {
            if let Some(v) = decode_vitals(&pr.record.payload) {
                if v.patient as u64 == target.key && target.window.contains(v.t_us) {
                    direct += 1;
                    direct_sum += v.value;
                }
            }
        }
    }
    assert_eq!(direct, target.value.count);
    assert!((direct_sum - target.value.sum).abs() < 1e-6);
}

#[test]
fn crash_recovery_preserves_every_window() {
    let (broker, _) = vitals_broker(4, 240.0, 11);
    let store: CheckpointStore<WindowState<augur::stream::window::NumericStats>> =
        CheckpointStore::new(8);
    let window = TumblingWindows::new(30_000_000);
    let agg = || StatsAggregation::new(|r: &augur::core::VitalsRecord| r.value);

    let mut reference =
        PipelineBuilder::new(broker.clone(), "vitals", |r| decode_vitals(&r.payload))
            .watermark_bound_us(0)
            .build();
    let (mut want, _) = reference
        .run_windowed(window, agg(), None, None, false)
        .unwrap();

    let mut crashing =
        PipelineBuilder::new(broker.clone(), "vitals", |r| decode_vitals(&r.payload))
            .watermark_bound_us(0)
            .build();
    let (partial, _) = crashing
        .run_windowed(window, agg(), Some((&store, 500)), Some(1_300), false)
        .unwrap();
    let mut resumed = PipelineBuilder::new(broker, "vitals", |r| decode_vitals(&r.payload))
        .watermark_bound_us(0)
        .build();
    let (rest, _) = resumed
        .run_windowed(window, agg(), Some((&store, 500)), None, true)
        .unwrap();

    let mut got = partial;
    got.extend(rest);
    let canon = |v: &mut Vec<augur::stream::WindowResult<augur::stream::window::NumericStats>>| {
        v.sort_by_key(|r| (r.window.start_us, r.key));
        v.dedup_by_key(|r| (r.window.start_us, r.key));
    };
    canon(&mut got);
    canon(&mut want);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.key, w.key);
        assert_eq!(g.window, w.window);
        assert_eq!(g.value.count, w.value.count);
        assert!((g.value.sum - w.value.sum).abs() < 1e-6);
    }
}

#[test]
fn incremental_view_over_stream_matches_pipeline_collect() {
    let (broker, total) = vitals_broker(3, 120.0, 12);
    let mut pipeline =
        PipelineBuilder::new(broker, "vitals", |r| decode_vitals(&r.payload)).build();
    let (records, _) = pipeline.collect().unwrap();
    assert_eq!(records.len(), total);
    let mut view = IncrementalView::new();
    for r in &records {
        view.update(r.patient as u64, r.value);
    }
    assert_eq!(view.group_count(), 3);
    let per_patient = total as u64 / 3;
    for p in 0..3u64 {
        assert_eq!(view.get(p).unwrap().count, per_patient);
    }
}
