//! Integration: tracking × rendering — a fused pose drives the display
//! camera; projected POI labels declutter; occlusion classification is
//! consistent between display and city model.

use augur::geo::{poi::synthetic_database, CityModel, CityParams, Enu, GeoPoint, LocalFrame};
use augur::render::{
    greedy_layout, naive_layout, xray_reveals, LabelBox, LayoutMetrics, OcclusionIndex, ViewCamera,
    Viewport,
};
use augur::sensor::{
    GpsParams, GpsSensor, ImuParams, ImuSensor, RandomWaypoint, Trajectory, TrajectoryParams,
};
use augur::track::{registration::run_tracker, KalmanParams, KalmanTracker};
use rand::SeedableRng;

#[test]
fn tracked_pose_projects_pois_and_declutters() {
    let origin = GeoPoint::new(22.3364, 114.2655).unwrap();
    let frame = LocalFrame::new(origin);
    let mut rng = rand::rngs::StdRng::seed_from_u64(20);
    let db = synthetic_database(origin, 5_000, &mut rng).unwrap();

    // Track a short walk.
    let params = TrajectoryParams {
        half_extent_m: 150.0,
        speed_mps: 1.4,
        pause_s: 1.0,
    };
    let truth =
        RandomWaypoint::new(params, rand::rngs::StdRng::seed_from_u64(21)).sample(30.0, 30.0);
    let fixes =
        GpsSensor::new(GpsParams::default(), rand::rngs::StdRng::seed_from_u64(22)).track(&truth);
    let readings =
        ImuSensor::new(ImuParams::default(), rand::rngs::StdRng::seed_from_u64(23)).track(&truth);
    let mut tracker = KalmanTracker::new(KalmanParams::default());
    let poses = run_tracker(&mut tracker, &truth, &fixes, &readings);
    let pose = poses.last().unwrap();

    // Project the nearest POIs through the estimated pose.
    let camera = ViewCamera::new(
        Enu::new(pose.position.east, pose.position.north, 1.6),
        pose.heading_deg,
        66.0,
        Viewport::default(),
        1_000.0,
    )
    .unwrap();
    let here = frame.to_geodetic(pose.position);
    let near = db.nearest(here, 40, None);
    assert_eq!(near.len(), 40);
    let labels: Vec<LabelBox> = near
        .iter()
        .filter_map(|poi| {
            let e = frame.to_enu(poi.position);
            camera
                .project(Enu::new(e.east, e.north, 4.0))
                .map(|px| LabelBox {
                    id: poi.id.0,
                    anchor_px: px,
                    width_px: 150.0,
                    height_px: 32.0,
                    priority: poi.popularity,
                })
        })
        .collect();
    assert!(!labels.is_empty(), "some POIs must project into view");
    let naive = LayoutMetrics::measure(&labels, &naive_layout(&labels, Viewport::default()));
    let greedy = LayoutMetrics::measure(&labels, &greedy_layout(&labels, Viewport::default()));
    assert_eq!(greedy.overlap_ratio, 0.0);
    assert!(greedy.overlapped_label_ratio <= naive.overlapped_label_ratio);
}

#[test]
fn occlusion_reveals_are_frustum_consistent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(30);
    let city = CityModel::generate(&CityParams::default(), &mut rng);
    let index = OcclusionIndex::build(&city);
    let camera = ViewCamera::new(
        Enu::new(0.0, -300.0, 1.6),
        0.0,
        66.0,
        Viewport::default(),
        2_000.0,
    )
    .unwrap();
    let targets: Vec<(u64, Enu)> = (0..100)
        .map(|i| {
            let a = i as f64 * 0.0628;
            (
                i as u64,
                Enu::new(400.0 * a.cos(), 400.0 * a.sin(), 2.0 + (i % 20) as f64),
            )
        })
        .collect();
    let reveals = xray_reveals(&camera, &targets, &index);
    for r in &reveals {
        let (_, pos) = targets[r.target_id as usize];
        // Every reveal decision concerns a target actually in the frustum.
        assert!(camera.in_frustum(pos), "target {} out of view", r.target_id);
        if r.reveal {
            assert!(r.through_building.is_some());
            let b = r.through_building.unwrap();
            assert!(city.buildings().iter().any(|bd| bd.id == b));
            assert!(city.line_of_sight_blocked(camera.position, pos));
        } else {
            assert!(!city.line_of_sight_blocked(camera.position, pos));
        }
    }
    // And the out-of-view targets are absent from the reveal list.
    for (id, pos) in &targets {
        if !camera.in_frustum(*pos) {
            assert!(reveals.iter().all(|r| r.target_id != *id));
        }
    }
}
