//! End-to-end frame-budget check: one complete AR frame — tracker
//! update, context refresh, POI retrieval, occlusion, layout — measured
//! against the 33 ms interactivity bound (Azuma's second requirement).
//!
//! The assertion bound is loose in debug builds; the release-mode bench
//! binaries measure the honest numbers. What this test pins down is the
//! *structure*: every stage runs, in order, against shared state, every
//! frame, without any stage ballooning with scene size.

use std::time::Instant;

use augur::analytics::IncrementalView;
use augur::geo::{poi::synthetic_database, CityModel, CityParams, Enu, GeoPoint, LocalFrame};
use augur::render::{greedy_layout, FrameBudget, LabelBox, OcclusionIndex, ViewCamera, Viewport};
use augur::sensor::{
    GpsParams, GpsSensor, ImuParams, ImuSensor, RandomWaypoint, Trajectory, TrajectoryParams,
};
use augur::track::{KalmanParams, KalmanTracker, Tracker};
use rand::SeedableRng;

#[test]
fn full_frame_loop_fits_budget_structure() {
    let origin = GeoPoint::new(22.3364, 114.2655).unwrap();
    let frame_ref = LocalFrame::new(origin);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let db = synthetic_database(origin, 10_000, &mut rng).unwrap();
    let city = CityModel::generate(&CityParams::default(), &mut rng);
    let occlusion = OcclusionIndex::build(&city);
    let mut view = IncrementalView::new();

    // Sensors at their real rates driving 30 frames (1 s of wall time).
    let truth = RandomWaypoint::new(
        TrajectoryParams::default(),
        rand::rngs::StdRng::seed_from_u64(78),
    )
    .sample(30.0, 10.0);
    let fixes =
        GpsSensor::new(GpsParams::default(), rand::rngs::StdRng::seed_from_u64(79)).track(&truth);
    let readings =
        ImuSensor::new(ImuParams::default(), rand::rngs::StdRng::seed_from_u64(80)).track(&truth);
    let mut tracker = KalmanTracker::new(KalmanParams::default());
    let mut gi = 0usize;
    let mut ii = 0usize;

    let mut over_budget_frames = 0usize;
    let mut budget = FrameBudget::for_fps(30.0);
    for frame in &truth {
        budget.reset();
        // 1. Tracking: apply due measurements.
        let t0 = Instant::now();
        while gi < fixes.len() && fixes[gi].time <= frame.time {
            tracker.update_gps(&fixes[gi]);
            gi += 1;
        }
        while ii < readings.len() && readings[ii].time <= frame.time {
            tracker.update_imu(&readings[ii]);
            ii += 1;
        }
        let pose = tracker.pose(frame.time);
        budget.record("track", t0.elapsed().as_micros() as u64);

        // 2. Analytics: fold this frame's interaction into the live view.
        let t1 = Instant::now();
        view.update(1, pose.velocity.horizontal_norm());
        let _ = view.get(1);
        budget.record("analytics", t1.elapsed().as_micros() as u64);

        // 3. Retrieval: nearby POIs through the index.
        let t2 = Instant::now();
        let here = frame_ref.to_geodetic(pose.position);
        let near = db.nearest(here, 12, None);
        budget.record("retrieve", t2.elapsed().as_micros() as u64);

        // 4. Occlusion + layout.
        let t3 = Instant::now();
        let camera = ViewCamera::new(
            Enu::new(pose.position.east, pose.position.north, 1.6),
            pose.heading_deg,
            66.0,
            Viewport::default(),
            800.0,
        )
        .unwrap();
        let labels: Vec<LabelBox> = near
            .iter()
            .filter_map(|poi| {
                let e = frame_ref.to_enu(poi.position);
                let target = Enu::new(e.east, e.north, 4.0);
                let _ = occlusion.classify(&camera, target);
                camera.project(target).map(|px| LabelBox {
                    id: poi.id.0,
                    anchor_px: px,
                    width_px: 150.0,
                    height_px: 32.0,
                    priority: poi.popularity,
                })
            })
            .collect();
        let placed = greedy_layout(&labels, Viewport::default());
        assert!(placed.len() <= labels.len());
        budget.record("present", t3.elapsed().as_micros() as u64);

        if !budget.within_budget() {
            over_budget_frames += 1;
        }
    }
    // Debug builds are ~10–20× slower than release; allow slack but catch
    // structural blowups (a linear scan sneaking in makes every frame
    // miss by 10×).
    let limit = if cfg!(debug_assertions) {
        truth.len() / 2
    } else {
        truth.len() / 20
    };
    assert!(
        over_budget_frames <= limit,
        "{over_budget_frames}/{} frames over budget (limit {limit}); bottleneck {:?}",
        truth.len(),
        budget.bottleneck()
    );
}
