//! End-to-end frame-budget check: one complete AR frame — tracker
//! update, context refresh, POI retrieval, occlusion, layout — measured
//! against the 33 ms interactivity bound (Azuma's second requirement).
//!
//! Stage timings flow through the telemetry layer: a [`Tracer`] over the
//! sanctioned [`MonotonicTime`] source records per-stage span histograms
//! and a whole-frame histogram, and the budget assertion reads the
//! histogram quantile — p50 in debug builds (debug is ~10–20× slower
//! than release; the release bench binaries measure the honest numbers),
//! p95 in release. The histogram quantile is cross-checked against an
//! independent streaming estimator ([`P2Quantile`]) fed the same values.
//! What this test pins down is the *structure*: every stage runs, in
//! order, against shared state, every frame, without any stage
//! ballooning with scene size.

use augur::analytics::{IncrementalView, P2Quantile};
use augur::geo::{poi::synthetic_database, CityModel, CityParams, Enu, GeoPoint, LocalFrame};
use augur::render::{greedy_layout, FrameBudget, LabelBox, OcclusionIndex, ViewCamera, Viewport};
use augur::sensor::{
    GpsParams, GpsSensor, ImuParams, ImuSensor, RandomWaypoint, Trajectory, TrajectoryParams,
};
use augur::telemetry::{MonotonicTime, Registry, TimeSource, Tracer, SPAN_METRIC};
use augur::track::{KalmanParams, KalmanTracker, Tracker};
use rand::SeedableRng;

const FRAME_BUDGET_US: u64 = 33_333;

#[test]
fn full_frame_loop_fits_budget_structure() {
    let origin = GeoPoint::new(22.3364, 114.2655).unwrap();
    let frame_ref = LocalFrame::new(origin);
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let db = synthetic_database(origin, 10_000, &mut rng).unwrap();
    let city = CityModel::generate(&CityParams::default(), &mut rng);
    let occlusion = OcclusionIndex::build(&city);
    let mut view = IncrementalView::new();

    let registry = Registry::new();
    let clock = MonotonicTime::shared();
    let tracer = Tracer::new(&registry, clock.clone());
    let frame_total_us = registry.histogram("frame_total_us");
    let q = if cfg!(debug_assertions) { 0.5 } else { 0.95 };
    let mut p2 = P2Quantile::new(q).unwrap();

    // Sensors at their real rates driving 30 frames (1 s of wall time).
    let truth = RandomWaypoint::new(
        TrajectoryParams::default(),
        rand::rngs::StdRng::seed_from_u64(78),
    )
    .sample(30.0, 10.0);
    let fixes =
        GpsSensor::new(GpsParams::default(), rand::rngs::StdRng::seed_from_u64(79)).track(&truth);
    let readings =
        ImuSensor::new(ImuParams::default(), rand::rngs::StdRng::seed_from_u64(80)).track(&truth);
    let mut tracker = KalmanTracker::new(KalmanParams::default());
    let mut gi = 0usize;
    let mut ii = 0usize;

    let mut budget = FrameBudget::for_fps(30.0);
    for frame in &truth {
        budget.reset();
        let frame_start = clock.now_micros();
        // 1. Tracking: apply due measurements.
        let t0 = clock.now_micros();
        while gi < fixes.len() && fixes[gi].time <= frame.time {
            tracker.update_gps(&fixes[gi]);
            gi += 1;
        }
        while ii < readings.len() && readings[ii].time <= frame.time {
            tracker.update_imu(&readings[ii]);
            ii += 1;
        }
        let pose = tracker.pose(frame.time);
        let track_us = clock.now_micros() - t0;
        budget.record("track", track_us);
        tracer.record_span_micros("frame/track", track_us);

        // 2. Analytics: fold this frame's interaction into the live view.
        let t1 = clock.now_micros();
        view.update(1, pose.velocity.horizontal_norm());
        let _ = view.get(1);
        let analytics_us = clock.now_micros() - t1;
        budget.record("analytics", analytics_us);
        tracer.record_span_micros("frame/analytics", analytics_us);

        // 3. Retrieval: nearby POIs through the index.
        let t2 = clock.now_micros();
        let here = frame_ref.to_geodetic(pose.position);
        let near = db.nearest(here, 12, None);
        let retrieve_us = clock.now_micros() - t2;
        budget.record("retrieve", retrieve_us);
        tracer.record_span_micros("frame/retrieve", retrieve_us);

        // 4. Occlusion + layout.
        let t3 = clock.now_micros();
        let camera = ViewCamera::new(
            Enu::new(pose.position.east, pose.position.north, 1.6),
            pose.heading_deg,
            66.0,
            Viewport::default(),
            800.0,
        )
        .unwrap();
        let labels: Vec<LabelBox> = near
            .iter()
            .filter_map(|poi| {
                let e = frame_ref.to_enu(poi.position);
                let target = Enu::new(e.east, e.north, 4.0);
                let _ = occlusion.classify(&camera, target);
                camera.project(target).map(|px| LabelBox {
                    id: poi.id.0,
                    anchor_px: px,
                    width_px: 150.0,
                    height_px: 32.0,
                    priority: poi.popularity,
                })
            })
            .collect();
        let placed = greedy_layout(&labels, Viewport::default());
        assert!(placed.len() <= labels.len());
        let present_us = clock.now_micros() - t3;
        budget.record("present", present_us);
        tracer.record_span_micros("frame/present", present_us);

        let total_us = clock.now_micros() - frame_start;
        frame_total_us.record(total_us);
        p2.observe(total_us as f64);
    }

    // Every stage's span histogram saw every frame.
    let snap = registry.snapshot();
    for stage in [
        "frame/track",
        "frame/analytics",
        "frame/retrieve",
        "frame/present",
    ] {
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == SPAN_METRIC && h.labels.iter().any(|(_, v)| v == stage))
            .unwrap_or_else(|| panic!("missing span histogram for {stage}"));
        assert_eq!(hist.stats.count, truth.len() as u64, "{stage} count");
    }

    // Budget: the p50 (debug) / p95 (release) frame time stays inside
    // 33 ms. A structural blowup (a linear scan sneaking in) misses by
    // 10× at every quantile, which this catches at either build level.
    let quantile_us = frame_total_us.quantile(q);
    assert!(
        quantile_us <= FRAME_BUDGET_US,
        "frame p{:.0} = {quantile_us} µs exceeds {FRAME_BUDGET_US} µs; bottleneck {:?}",
        q * 100.0,
        budget.bottleneck()
    );

    // Cross-check the log-linear histogram against an independent
    // streaming estimator over the same stream. Both are approximate
    // (the histogram is bucketed, P² interpolates), so the tolerance is
    // loose — they must agree on magnitude, not digits.
    assert_eq!(p2.count(), truth.len() as u64);
    let p2_estimate = p2.estimate().unwrap();
    assert!(p2_estimate.is_finite() && p2_estimate >= 0.0);
    let hist_est = quantile_us as f64;
    let tolerance = (hist_est.max(p2_estimate) * 0.5).max(200.0);
    assert!(
        (hist_est - p2_estimate).abs() <= tolerance,
        "histogram p{:.0} {hist_est} µs vs P² {p2_estimate} µs disagree beyond tolerance",
        q * 100.0
    );
}
