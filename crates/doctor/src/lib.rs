//! Perf-regression gate over bench snapshots.
//!
//! `augur-doctor` loads the `results/*.json` snapshots the bench
//! binaries write (schema `{"bench", "params", "metrics"}`, see
//! `augur-bench`), pairs each with the committed baseline snapshot of
//! the same name under `results/baseline/`, and classifies every metric
//! into a tolerance class:
//!
//! - **Latency** (`*_ms`, `*_us`, `latency`, `duration`, histogram
//!   `p95`): regression when current exceeds baseline by more than the
//!   class tolerance.
//! - **Throughput** (`throughput`, `rps`, `per_sec`): regression when
//!   current falls below baseline by more than the tolerance.
//! - **Drop** (`drop`, `dropped`, `lost`): a loss counter; regression
//!   when it grows beyond the tolerance.
//! - **Share** (`*_share`, `overhead`): a fraction in `0..=1` where
//!   lower is better (e.g. `obs_overhead_share`, the observability
//!   self-cost ratio); regression when it grows beyond a tight
//!   absolute tolerance — the 1% budgets these track would drown in
//!   the drop class's integer-sized floor.
//! - **Count** (everything else): informational — reported as changed,
//!   never a failure, since raw event counts move with workload shape.
//!
//! Snapshots whose `params` objects differ are skipped with a warning
//! rather than compared — a changed workload is not a regression. The
//! CLI renders a markdown report, optionally a JSON verdict, and exits
//! nonzero when any regression survives.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use augur_semantic::json::JsonValue;

/// Log-fingerprint gate over JSONL event logs (`--logs`).
pub mod logs;
/// Differential-profile regression localization (`--profile-diff`).
pub mod profile_diff;
/// Trend fitting over snapshot histories (`--trend`).
pub mod trend;
/// Bottleneck-shape gate over xray artifacts (`--xray`).
pub mod xray;

/// Which tolerance rule a metric falls under, derived from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Lower is better; gate on increases.
    Latency,
    /// Higher is better; gate on decreases.
    Throughput,
    /// Loss counter; gate on increases.
    Drop,
    /// Small budgeted fraction (lower is better); gate on increases
    /// with a tight absolute floor.
    Share,
    /// Informational count; never gates.
    Count,
}

impl MetricClass {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MetricClass::Latency => "latency",
            MetricClass::Throughput => "throughput",
            MetricClass::Drop => "drop",
            MetricClass::Share => "share",
            MetricClass::Count => "count",
        }
    }
}

/// Classifies a metric key by name heuristics (the workspace's metric
/// naming is regular enough for this to be reliable; see DESIGN.md).
pub fn classify(key: &str) -> MetricClass {
    let k = key.to_ascii_lowercase();
    let name = k.split('{').next().unwrap_or(&k);
    // Share first: `blocked_share` and friends must not fall into the
    // drop/latency buckets their substrings would otherwise match.
    if name.ends_with("_share") || name.contains("overhead") {
        return MetricClass::Share;
    }
    if name.contains("drop") || name.contains("lost") {
        return MetricClass::Drop;
    }
    if name.contains("throughput") || name.contains("rps") || name.contains("per_sec") {
        return MetricClass::Throughput;
    }
    if name.ends_with("_ms")
        || name.ends_with("_us")
        || name.ends_with("_ns")
        || name.contains("latency")
        || name.contains("duration")
        || k.ends_with(".p95")
    {
        return MetricClass::Latency;
    }
    MetricClass::Count
}

/// A per-class tolerance: a change is within tolerance when
/// `|delta| <= max(ratio * |baseline|, abs)`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative slack as a fraction of the baseline magnitude.
    pub ratio: f64,
    /// Absolute slack floor (covers near-zero baselines).
    pub abs: f64,
}

impl Tolerance {
    /// Whether a worsening of `delta` (already oriented so positive =
    /// worse) stays within this tolerance of `baseline`.
    pub fn allows(&self, baseline: f64, delta: f64) -> bool {
        delta <= (self.ratio * baseline.abs()).max(self.abs)
    }
}

/// The gate's tolerance schedule, one rule per metric class.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Applied to [`MetricClass::Latency`] increases.
    pub latency: Tolerance,
    /// Applied to [`MetricClass::Throughput`] decreases.
    pub throughput: Tolerance,
    /// Applied to [`MetricClass::Drop`] increases.
    pub drops: Tolerance,
    /// Applied to [`MetricClass::Share`] increases.
    pub share: Tolerance,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            latency: Tolerance {
                ratio: 0.15,
                abs: 0.5,
            },
            throughput: Tolerance {
                ratio: 0.15,
                abs: 1.0,
            },
            drops: Tolerance {
                ratio: 0.10,
                abs: 2.0,
            },
            // Shares are fractions of small budgets (the obs overhead
            // budget is 0.01): an absolute floor of one budget unit, so
            // a healthy ~0.004 share jumping to 0.8 under the inject
            // probe is a regression while deterministic same-seed noise
            // (which is zero) never fires.
            share: Tolerance {
                ratio: 0.10,
                abs: 0.01,
            },
        }
    }
}

/// One parsed bench snapshot: name, parameters, and a flat metric map
/// keyed `name{label=value,...}` (histograms contribute `.p95` and
/// `.count` entries).
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// The bench name (output file stem).
    pub bench: String,
    /// Rendered parameter map, used for the changed-workload check.
    pub params: BTreeMap<String, String>,
    /// Flat metric samples.
    pub metrics: BTreeMap<String, f64>,
}

/// Parses one snapshot document.
///
/// # Errors
///
/// Propagates JSON syntax/shape errors from the semantic parser.
pub fn parse_snapshot(text: &str) -> Result<BenchDoc, augur_semantic::SemanticError> {
    let doc = JsonValue::parse(text)?;
    let bench = doc.field("bench")?.as_str()?.to_string();
    let mut params = BTreeMap::new();
    for (k, v) in doc.field("params")?.as_object()? {
        params.insert(k.clone(), v.to_json());
    }
    let metrics_doc = doc.field("metrics")?;
    let mut metrics = BTreeMap::new();
    for series in ["counters", "gauges"] {
        for entry in metrics_doc.field(series)?.as_array()? {
            let key = metric_key(entry)?;
            metrics.insert(key, entry.field("value")?.as_f64()?);
        }
    }
    for entry in metrics_doc.field("histograms")?.as_array()? {
        let key = metric_key(entry)?;
        metrics.insert(format!("{key}.p95"), entry.field("p95")?.as_f64()?);
        metrics.insert(format!("{key}.count"), entry.field("count")?.as_f64()?);
    }
    Ok(BenchDoc {
        bench,
        params,
        metrics,
    })
}

/// Renders an entry's `name{labels}` identity key.
fn metric_key(entry: &JsonValue) -> Result<String, augur_semantic::SemanticError> {
    let name = entry.field("name")?.as_str()?;
    let labels = entry.field("labels")?.as_object()?;
    if labels.is_empty() {
        return Ok(name.to_string());
    }
    let mut key = format!("{name}{{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}={}", v.to_json());
    }
    key.push('}');
    Ok(key)
}

/// Outcome of one metric comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or an informational count change).
    Ok,
    /// Outside tolerance in the worse direction.
    Regression,
    /// Outside tolerance in the better direction.
    Improved,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The metric identity key (`name{labels}` or `….p95`).
    pub metric: String,
    /// Tolerance class the metric fell under.
    pub class: MetricClass,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Comparison outcome.
    pub verdict: Verdict,
}

/// Result of comparing one bench pair (or the reason it was skipped).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The bench name.
    pub bench: String,
    /// When `Some`, the pair was not compared and this is the reason.
    pub skipped: Option<String>,
    /// Per-metric findings (empty when skipped).
    pub findings: Vec<Finding>,
}

impl Comparison {
    /// Findings that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.verdict == Verdict::Regression)
    }
}

/// Compares one baseline/current snapshot pair. Metrics present on only
/// one side are ignored (new instrumentation must not fail old
/// baselines); params mismatch skips the pair entirely.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc, tol: &Tolerances) -> Comparison {
    if baseline.params != current.params {
        let changed: Vec<&str> = baseline
            .params
            .iter()
            .filter(|(k, v)| current.params.get(*k) != Some(v))
            .map(|(k, _)| k.as_str())
            .chain(
                current
                    .params
                    .keys()
                    .filter(|k| !baseline.params.contains_key(*k))
                    .map(String::as_str),
            )
            .collect();
        return Comparison {
            bench: baseline.bench.clone(),
            skipped: Some(format!(
                "params differ ({}); not comparable",
                changed.join(", ")
            )),
            findings: Vec::new(),
        };
    }
    let mut findings = Vec::new();
    for (key, &base) in &baseline.metrics {
        let Some(&cur) = current.metrics.get(key) else {
            continue;
        };
        let class = classify(key);
        // Orient delta so positive = worse for the gated classes.
        let (rule, worse_delta) = match class {
            MetricClass::Latency => (Some(tol.latency), cur - base),
            MetricClass::Drop => (Some(tol.drops), cur - base),
            MetricClass::Share => (Some(tol.share), cur - base),
            MetricClass::Throughput => (Some(tol.throughput), base - cur),
            MetricClass::Count => (None, 0.0),
        };
        let verdict = match rule {
            Some(t) if !t.allows(base, worse_delta) => Verdict::Regression,
            Some(t) if !t.allows(base, -worse_delta) => Verdict::Improved,
            _ => Verdict::Ok,
        };
        findings.push(Finding {
            metric: key.clone(),
            class,
            baseline: base,
            current: cur,
            verdict,
        });
    }
    Comparison {
        bench: baseline.bench.clone(),
        skipped: None,
        findings,
    }
}

/// Loads every `*.json` snapshot directly under `dir`, keyed by bench
/// name. Files that fail to parse as snapshots are skipped (trace files
/// and other artefacts share the results directory).
///
/// # Errors
///
/// Propagates directory-read failures; unreadable individual files are
/// skipped.
pub fn load_dir(dir: &Path) -> io::Result<BTreeMap<String, BenchDoc>> {
    let mut docs = BTreeMap::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for path in paths {
        if path.extension().and_then(|e| e.to_str()) != Some("json") || !path.is_file() {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Ok(doc) = parse_snapshot(&text) {
            docs.insert(doc.bench.clone(), doc);
        }
    }
    Ok(docs)
}

/// Runs the gate over two snapshot directories: every baseline bench
/// that also exists in `current` is compared (the intersection rule —
/// wall-clock benches absent from the baseline never flake the gate).
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn run_gate(
    baseline_dir: &Path,
    current_dir: &Path,
    tol: &Tolerances,
) -> io::Result<Vec<Comparison>> {
    let baseline = load_dir(baseline_dir)?;
    let current = load_dir(current_dir)?;
    Ok(baseline
        .values()
        .filter_map(|b| current.get(&b.bench).map(|c| compare(b, c, tol)))
        .collect())
}

/// Whether any comparison carries a regression.
pub fn has_regressions(comps: &[Comparison]) -> bool {
    comps.iter().any(|c| c.regressions().next().is_some())
}

/// Renders the markdown verdict report.
pub fn render_markdown(comps: &[Comparison]) -> String {
    let mut out = String::from("# augur-doctor verdict\n\n");
    if comps.is_empty() {
        out.push_str("No baseline/current snapshot pairs to compare.\n");
        return out;
    }
    let regressed = has_regressions(comps);
    let _ = writeln!(
        out,
        "**{}** — {} bench pair(s) compared.\n",
        if regressed { "REGRESSION" } else { "OK" },
        comps.len()
    );
    for c in comps {
        if let Some(reason) = &c.skipped {
            let _ = writeln!(out, "- `{}`: **skipped** — {reason}", c.bench);
            continue;
        }
        let regressions: Vec<&Finding> = c.regressions().collect();
        let improved = c
            .findings
            .iter()
            .filter(|f| f.verdict == Verdict::Improved)
            .count();
        let _ = writeln!(
            out,
            "- `{}`: {} metric(s), {} regression(s), {} improvement(s)",
            c.bench,
            c.findings.len(),
            regressions.len(),
            improved
        );
        if !regressions.is_empty() {
            out.push_str("\n  | metric | class | baseline | current |\n");
            out.push_str("  |---|---|---|---|\n");
            for f in regressions {
                let _ = writeln!(
                    out,
                    "  | `{}` | {} | {} | {} |",
                    f.metric,
                    f.class.label(),
                    f.baseline,
                    f.current
                );
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the machine-readable JSON verdict.
pub fn render_json(comps: &[Comparison]) -> String {
    let mut out = String::from("{\"status\":\"");
    out.push_str(if has_regressions(comps) {
        "regression"
    } else {
        "ok"
    });
    out.push_str("\",\"benches\":[");
    for (i, c) in comps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"bench\":\"{}\",", escape(&c.bench));
        match &c.skipped {
            Some(reason) => {
                let _ = write!(out, "\"skipped\":\"{}\",", escape(reason));
            }
            None => out.push_str("\"skipped\":null,"),
        }
        out.push_str("\"regressions\":[");
        for (j, f) in c.regressions().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"metric\":\"{}\",\"class\":\"{}\",\"baseline\":{},\"current\":{}}}",
                escape(&f.metric),
                f.class.label(),
                f.baseline,
                f.current
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping for report rendering.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(bench: &str, p95: f64, throughput: f64, dropped: f64) -> String {
        format!(
            concat!(
                "{{\"bench\":\"{}\",\"params\":{{\"events\":1000}},\"metrics\":{{",
                "\"counters\":[{{\"name\":\"records_dropped_total\",\"labels\":{{}},\"value\":{}}}],",
                "\"gauges\":[{{\"name\":\"pipeline_throughput_rps\",\"labels\":{{}},\"value\":{}}}],",
                "\"histograms\":[{{\"name\":\"record_latency_ns\",\"labels\":{{}},",
                "\"count\":1000,\"sum\":50000,\"min\":10,\"max\":900,\"mean\":50,",
                "\"p50\":40,\"p90\":80,\"p95\":{},\"p99\":200}}]}}}}"
            ),
            bench, dropped, throughput, p95
        )
    }

    fn doc(bench: &str, p95: f64, throughput: f64, dropped: f64) -> BenchDoc {
        match parse_snapshot(&snapshot(bench, p95, throughput, dropped)) {
            Ok(d) => d,
            Err(e) => unreachable!("fixture must parse: {e}"),
        }
    }

    #[test]
    fn classifies_by_name_heuristics() {
        assert_eq!(
            classify("device_ms{network=\"wifi\"}"),
            MetricClass::Latency
        );
        assert_eq!(classify("record_latency_ns.p95"), MetricClass::Latency);
        assert_eq!(classify("pipeline_throughput_rps"), MetricClass::Throughput);
        assert_eq!(classify("records_dropped_total"), MetricClass::Drop);
        assert_eq!(classify("beacons_lost"), MetricClass::Drop);
        assert_eq!(classify("records_in_total"), MetricClass::Count);
        assert_eq!(classify("obs_overhead_share"), MetricClass::Share);
        assert_eq!(classify("lane_blocked_share"), MetricClass::Share);
    }

    #[test]
    fn share_metrics_gate_on_tight_absolute_growth() {
        let mk = |share: f64| {
            let mut d = doc("e_test", 100.0, 5000.0, 0.0);
            d.metrics.insert("obs_overhead_share".into(), share);
            d
        };
        // A healthy 0.4% share blowing up to 80% (the inject probe) is
        // a regression...
        let comp = compare(&mk(0.004), &mk(0.8), &Tolerances::default());
        let regs: Vec<_> = comp.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "obs_overhead_share");
        assert_eq!(regs[0].class, MetricClass::Share);
        // ...while wiggle inside one budget unit (abs 0.01) passes.
        let comp = compare(&mk(0.004), &mk(0.009), &Tolerances::default());
        assert!(comp.regressions().next().is_none());
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = doc("e_test", 100.0, 5000.0, 0.0);
        let cur = doc("e_test", 100.0, 5000.0, 0.0);
        let comp = compare(&base, &cur, &Tolerances::default());
        assert!(comp.skipped.is_none());
        assert!(comp.regressions().next().is_none());
        assert!(!comp.findings.is_empty());
    }

    #[test]
    fn perturbed_p95_is_a_regression() {
        let base = doc("e_test", 100.0, 5000.0, 0.0);
        // +40% p95: far past the 15% latency tolerance.
        let cur = doc("e_test", 140.0, 5000.0, 0.0);
        let comp = compare(&base, &cur, &Tolerances::default());
        let regs: Vec<_> = comp.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "record_latency_ns.p95");
        assert_eq!(regs[0].class, MetricClass::Latency);
        assert!(has_regressions(&[comp]));
    }

    #[test]
    fn throughput_gates_downward_only() {
        let base = doc("e_test", 100.0, 5000.0, 0.0);
        let faster = doc("e_test", 100.0, 9000.0, 0.0);
        let comp = compare(&base, &faster, &Tolerances::default());
        assert!(comp.regressions().next().is_none());
        assert!(comp
            .findings
            .iter()
            .any(|f| f.metric == "pipeline_throughput_rps" && f.verdict == Verdict::Improved));

        let slower = doc("e_test", 100.0, 3000.0, 0.0);
        let comp = compare(&base, &slower, &Tolerances::default());
        let regs: Vec<_> = comp.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "pipeline_throughput_rps");
    }

    #[test]
    fn drop_counters_gate_with_absolute_floor() {
        let base = doc("e_test", 100.0, 5000.0, 0.0);
        // +2 drops from zero: inside the abs=2 floor.
        let wiggle = doc("e_test", 100.0, 5000.0, 2.0);
        let comp = compare(&base, &wiggle, &Tolerances::default());
        assert!(comp.regressions().next().is_none());
        // +50 drops: regression.
        let burst = doc("e_test", 100.0, 5000.0, 50.0);
        let comp = compare(&base, &burst, &Tolerances::default());
        assert_eq!(comp.regressions().count(), 1);
    }

    #[test]
    fn params_mismatch_skips_instead_of_comparing() {
        let base = doc("e_test", 100.0, 5000.0, 0.0);
        let mut cur = doc("e_test", 400.0, 1.0, 999.0);
        cur.params.insert("events".into(), "2000".into());
        let comp = compare(&base, &cur, &Tolerances::default());
        assert!(comp.skipped.is_some());
        assert!(comp.findings.is_empty());
        assert!(!has_regressions(&[comp]));
    }

    #[test]
    fn gate_runs_over_directories_and_renders() {
        let dir = std::env::temp_dir().join("augur-doctor-gate-test");
        let baseline = dir.join("baseline");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&baseline).unwrap();
        std::fs::write(
            baseline.join("e_test.json"),
            snapshot("e_test", 100.0, 5000.0, 0.0),
        )
        .unwrap();
        // A baseline-only bench must not fail the gate (intersection rule),
        // and a non-snapshot JSON artefact must be ignored.
        std::fs::write(
            baseline.join("e_only_in_baseline.json"),
            snapshot("e_only_in_baseline", 1.0, 1.0, 0.0),
        )
        .unwrap();
        std::fs::write(
            dir.join("e_test.json"),
            snapshot("e_test", 101.0, 4990.0, 0.0),
        )
        .unwrap();
        std::fs::write(dir.join("weird.trace.json"), "[]").unwrap();

        let comps = run_gate(&baseline, &dir, &Tolerances::default()).unwrap();
        assert_eq!(comps.len(), 1);
        assert!(!has_regressions(&comps));
        let md = render_markdown(&comps);
        assert!(md.contains("OK"), "markdown: {md}");
        let json = render_json(&comps);
        assert!(json.contains("\"status\":\"ok\""), "json: {json}");
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(parsed.field("status").unwrap().as_str().unwrap(), "ok");

        // Perturb and re-run: regression, nonzero verdict.
        std::fs::write(
            dir.join("e_test.json"),
            snapshot("e_test", 140.0, 5000.0, 0.0),
        )
        .unwrap();
        let comps = run_gate(&baseline, &dir, &Tolerances::default()).unwrap();
        assert!(has_regressions(&comps));
        assert!(render_markdown(&comps).contains("REGRESSION"));
        assert!(render_json(&comps).contains("\"status\":\"regression\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_param_and_metric_names_render_valid_json() {
        let comps = vec![Comparison {
            bench: "we\"ird\\bench\n".into(),
            skipped: Some("param \"x\" changed".into()),
            findings: Vec::new(),
        }];
        let json = render_json(&comps);
        assert!(JsonValue::parse(&json).is_ok(), "must stay valid: {json}");
    }
}
