//! Trend analysis over a snapshot history directory.
//!
//! The pairwise gate in [`crate::compare`] only sees two snapshots, so a
//! slow leak — say +4% p95 per release, forever — never trips it: each
//! step is inside the 15% latency tolerance. `--trend` closes that hole.
//! It loads every `*.json` snapshot under one directory, orders them by
//! filename (the convention: zero-padded sequence or timestamp
//! prefixes), groups them by bench, fits a least-squares line to every
//! gated metric, and flags **sustained drift**: the fitted worsening
//! over the whole history exceeds the class tolerance relative to the
//! first sample, and most steps move in the worsening direction — even
//! when every individual step is inside tolerance.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::{classify, BenchDoc, MetricClass, Tolerances};

/// Minimum history length for a trend fit. With two points a "trend" is
/// just a pairwise diff, which the ordinary gate already covers.
pub const MIN_SNAPSHOTS: usize = 3;

/// Fraction of inter-snapshot steps that must move in the worsening
/// direction for a drift to count as sustained (noise around a flat
/// line worsens ~half its steps; a leak worsens nearly all of them).
pub const SUSTAINED_STEP_FRACTION: f64 = 0.6;

/// One metric's fitted trend across the history.
#[derive(Debug, Clone)]
pub struct TrendFinding {
    /// The metric identity key (`name{labels}` or `….p95`).
    pub metric: String,
    /// Tolerance class the metric fell under.
    pub class: MetricClass,
    /// Value in the oldest snapshot.
    pub first: f64,
    /// Value in the newest snapshot.
    pub last: f64,
    /// Least-squares slope per snapshot step, oriented so positive =
    /// worse for the metric's class.
    pub worse_per_step: f64,
    /// Steps that moved in the worsening direction.
    pub worsening_steps: usize,
    /// Total inter-snapshot steps.
    pub steps: usize,
    /// Whether this metric drifts (see module docs).
    pub drifting: bool,
}

/// One bench's trend verdict (or the reason it was skipped).
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// The bench name.
    pub bench: String,
    /// Snapshots in the fitted history.
    pub snapshots: usize,
    /// When `Some`, the bench was not fitted and this is the reason.
    pub skipped: Option<String>,
    /// Per-metric findings (empty when skipped).
    pub findings: Vec<TrendFinding>,
}

impl TrendReport {
    /// Findings that fail the trend gate.
    pub fn drifts(&self) -> impl Iterator<Item = &TrendFinding> {
        self.findings.iter().filter(|f| f.drifting)
    }
}

/// Loads every `*.json` snapshot under `dir`, sorted by filename, and
/// groups them by bench name in file order — so a history directory of
/// `001_run.json`, `002_run.json`, … yields chronological series.
/// Non-snapshot JSON artefacts are skipped.
///
/// # Errors
///
/// Propagates directory-read failures; unreadable files are skipped.
pub fn load_history(dir: &Path) -> io::Result<BTreeMap<String, Vec<BenchDoc>>> {
    let mut histories: BTreeMap<String, Vec<BenchDoc>> = BTreeMap::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for path in paths {
        if path.extension().and_then(|e| e.to_str()) != Some("json") || !path.is_file() {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Ok(doc) = crate::parse_snapshot(&text) {
            histories.entry(doc.bench.clone()).or_default().push(doc);
        }
    }
    Ok(histories)
}

/// Fits one bench's chronological history. Metrics must be present in
/// every snapshot to be fitted (the intersection rule, extended over the
/// whole series); mismatched params skip the bench — a changed workload
/// is not a drift.
pub fn analyze(bench: &str, history: &[BenchDoc], tol: &Tolerances) -> TrendReport {
    if history.len() < MIN_SNAPSHOTS {
        return TrendReport {
            bench: bench.to_string(),
            snapshots: history.len(),
            skipped: Some(format!(
                "need at least {MIN_SNAPSHOTS} snapshots, have {}",
                history.len()
            )),
            findings: Vec::new(),
        };
    }
    let first = &history[0];
    if history.iter().any(|d| d.params != first.params) {
        return TrendReport {
            bench: bench.to_string(),
            snapshots: history.len(),
            skipped: Some("params changed across the history; not comparable".to_string()),
            findings: Vec::new(),
        };
    }
    let steps = history.len() - 1;
    let mut findings = Vec::new();
    for (key, &v0) in &first.metrics {
        let values: Vec<f64> = history
            .iter()
            .filter_map(|d| d.metrics.get(key).copied())
            .collect();
        if values.len() != history.len() {
            continue; // not present in every snapshot
        }
        let class = classify(key);
        // Orient the series so an increase means "worse".
        let (rule, sign) = match class {
            MetricClass::Latency => (tol.latency, 1.0),
            MetricClass::Drop => (tol.drops, 1.0),
            MetricClass::Share => (tol.share, 1.0),
            MetricClass::Throughput => (tol.throughput, -1.0),
            MetricClass::Count => continue,
        };
        let oriented: Vec<f64> = values.iter().map(|v| v * sign).collect();
        let slope = least_squares_slope(&oriented);
        let worsening_steps = oriented.windows(2).filter(|w| w[1] > w[0]).count();
        // Sustained drift: the fitted worsening across the whole span
        // exceeds the class tolerance (relative to the first sample),
        // and most steps worsen.
        let fitted_worsening = slope * steps as f64;
        let drifting = !rule.allows(v0, fitted_worsening)
            && (worsening_steps as f64) >= SUSTAINED_STEP_FRACTION * steps as f64;
        findings.push(TrendFinding {
            metric: key.clone(),
            class,
            first: v0,
            last: values[values.len() - 1],
            worse_per_step: slope,
            worsening_steps,
            steps,
            drifting,
        });
    }
    TrendReport {
        bench: bench.to_string(),
        snapshots: history.len(),
        skipped: None,
        findings,
    }
}

/// Runs the trend gate over a history directory: one report per bench.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn run_trend(dir: &Path, tol: &Tolerances) -> io::Result<Vec<TrendReport>> {
    let histories = load_history(dir)?;
    Ok(histories
        .iter()
        .map(|(bench, history)| analyze(bench, history, tol))
        .collect())
}

/// Whether any report carries a drifting metric.
pub fn has_drift(reports: &[TrendReport]) -> bool {
    reports.iter().any(|r| r.drifts().next().is_some())
}

/// Renders the markdown trend report.
pub fn render_trend_markdown(reports: &[TrendReport]) -> String {
    let mut out = String::from("# augur-doctor trend verdict\n\n");
    if reports.is_empty() {
        out.push_str("No snapshot histories to fit.\n");
        return out;
    }
    let _ = writeln!(
        out,
        "**{}** — {} bench histor(y/ies) fitted.\n",
        if has_drift(reports) { "DRIFT" } else { "OK" },
        reports.len()
    );
    for r in reports {
        if let Some(reason) = &r.skipped {
            let _ = writeln!(
                out,
                "- `{}` ({} snapshot(s)): **skipped** — {reason}",
                r.bench, r.snapshots
            );
            continue;
        }
        let drifts: Vec<&TrendFinding> = r.drifts().collect();
        let _ = writeln!(
            out,
            "- `{}` ({} snapshots): {} metric(s) fitted, {} drifting",
            r.bench,
            r.snapshots,
            r.findings.len(),
            drifts.len()
        );
        if !drifts.is_empty() {
            out.push_str("\n  | metric | class | first | last | worse/step | worsening steps |\n");
            out.push_str("  |---|---|---|---|---|---|\n");
            for f in drifts {
                let _ = writeln!(
                    out,
                    "  | `{}` | {} | {} | {} | {:.3} | {}/{} |",
                    f.metric,
                    f.class.label(),
                    f.first,
                    f.last,
                    f.worse_per_step,
                    f.worsening_steps,
                    f.steps
                );
            }
            out.push('\n');
        }
    }
    out
}

/// Least-squares slope of `values` against their indices 0..n. Returns
/// 0 for histories shorter than two points (callers guard anyway).
fn least_squares_slope(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = values.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, v) in values.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (v - mean_y);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_snapshot;

    fn snapshot(bench: &str, p95: f64, throughput: f64) -> String {
        format!(
            concat!(
                "{{\"bench\":\"{}\",\"params\":{{\"events\":1000}},\"metrics\":{{",
                "\"counters\":[],",
                "\"gauges\":[{{\"name\":\"pipeline_throughput_rps\",\"labels\":{{}},\"value\":{}}}],",
                "\"histograms\":[{{\"name\":\"record_latency_ns\",\"labels\":{{}},",
                "\"count\":1000,\"sum\":50000,\"min\":10,\"max\":900,\"mean\":50,",
                "\"p50\":40,\"p90\":80,\"p95\":{},\"p99\":200}}]}}}}"
            ),
            bench, throughput, p95
        )
    }

    fn doc(p95: f64, throughput: f64) -> BenchDoc {
        match parse_snapshot(&snapshot("e_trend", p95, throughput)) {
            Ok(d) => d,
            Err(e) => unreachable!("fixture must parse: {e}"),
        }
    }

    #[test]
    fn slope_fits_a_line() {
        assert!((least_squares_slope(&[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(least_squares_slope(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(least_squares_slope(&[1.0]), 0.0);
    }

    #[test]
    fn sustained_drift_fires_even_when_each_step_is_inside_tolerance() {
        // +6% per step for 5 steps: every pairwise step is inside the
        // 15% latency tolerance, but the cumulative fit is ~+34%.
        let history: Vec<BenchDoc> = (0..6)
            .map(|i| doc(100.0 * 1.06f64.powi(i), 5000.0))
            .collect();
        // Pairwise gate sees nothing step to step.
        for w in history.windows(2) {
            let comp = crate::compare(&w[0], &w[1], &Tolerances::default());
            assert!(
                comp.regressions().next().is_none(),
                "steps inside tolerance"
            );
        }
        let report = analyze("e_trend", &history, &Tolerances::default());
        let drifts: Vec<_> = report.drifts().collect();
        assert_eq!(drifts.len(), 1, "findings: {:?}", report.findings);
        assert_eq!(drifts[0].metric, "record_latency_ns.p95");
        assert_eq!(drifts[0].worsening_steps, 5);
        assert!(has_drift(&[report]));
    }

    #[test]
    fn throughput_decay_drifts_and_growth_does_not() {
        let decay: Vec<BenchDoc> = (0..6)
            .map(|i| doc(100.0, 5000.0 * 0.94f64.powi(i)))
            .collect();
        let report = analyze("e_trend", &decay, &Tolerances::default());
        assert!(report
            .drifts()
            .any(|f| f.metric == "pipeline_throughput_rps"));

        let growth: Vec<BenchDoc> = (0..6)
            .map(|i| doc(100.0, 5000.0 * 1.06f64.powi(i)))
            .collect();
        let report = analyze("e_trend", &growth, &Tolerances::default());
        assert!(!has_drift(&[report]));
    }

    #[test]
    fn noise_without_direction_does_not_drift() {
        // Alternating around a flat line: only half the steps worsen.
        let values = [100.0, 108.0, 98.0, 109.0, 97.0, 110.0];
        let history: Vec<BenchDoc> = values.iter().map(|&v| doc(v, 5000.0)).collect();
        let report = analyze("e_trend", &history, &Tolerances::default());
        assert!(
            !has_drift(&[report]),
            "3/5 worsening steps is below the sustained fraction"
        );
    }

    #[test]
    fn short_or_mismatched_histories_are_skipped() {
        let short = vec![doc(100.0, 5000.0), doc(200.0, 5000.0)];
        let report = analyze("e_trend", &short, &Tolerances::default());
        assert!(report.skipped.is_some());
        assert!(!has_drift(&[report]));

        let mut changed = vec![doc(100.0, 5000.0), doc(100.0, 5000.0), doc(100.0, 5000.0)];
        changed[2].params.insert("events".into(), "2000".into());
        let report = analyze("e_trend", &changed, &Tolerances::default());
        assert!(report.skipped.is_some());
    }

    #[test]
    fn trend_gate_runs_over_a_directory_and_renders() {
        let dir = std::env::temp_dir().join("augur-doctor-trend-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..5 {
            std::fs::write(
                dir.join(format!("{i:03}_run.json")),
                snapshot("e_trend", 100.0 * 1.08f64.powi(i), 5000.0),
            )
            .unwrap();
        }
        std::fs::write(dir.join("weird.trace.json"), "[]").unwrap();
        let reports = run_trend(&dir, &Tolerances::default()).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(has_drift(&reports));
        let md = render_trend_markdown(&reports);
        assert!(md.contains("DRIFT"), "markdown: {md}");
        assert!(md.contains("record_latency_ns.p95"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
