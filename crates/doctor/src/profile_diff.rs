//! Differential-profile mode (`--profile-diff`): regression
//! localization.
//!
//! The pairwise and trend gates answer *whether* a bench regressed;
//! this mode answers *where*. Given two folded-stack profiles (the
//! `.folded` artifacts `--profile` runs write), it ranks every frame by
//! exclusive self-time delta and fails — naming the frame — when the
//! worst movement exceeds the latency tolerance the snapshot gate
//! already uses. A failing doctor verdict thus comes with the stack
//! frame that caused it.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use augur_profile::{diff_folded, parse_folded, FrameDelta};

use crate::Tolerances;

/// Outcome of diffing two folded profiles.
#[derive(Debug, Clone)]
pub struct ProfileDiffReport {
    /// Every frame present in either profile, worst regression first.
    pub deltas: Vec<FrameDelta>,
    /// Names of frames whose self-time growth exceeds the latency
    /// tolerance, in delta order (worst first).
    pub regressed: Vec<String>,
}

/// Diffs `baseline` against `current` (both folded-stack files),
/// gating each frame's self-time growth on `tol.latency`.
///
/// # Errors
///
/// I/O errors reading either file; malformed folded input surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn run_profile_diff(
    baseline: &Path,
    current: &Path,
    tol: &Tolerances,
) -> io::Result<ProfileDiffReport> {
    let parse = |path: &Path| -> io::Result<_> {
        let text = std::fs::read_to_string(path)?;
        parse_folded(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    };
    let base = parse(baseline)?;
    let cur = parse(current)?;
    let deltas = diff_folded(&base, &cur);
    let regressed = deltas
        .iter()
        .filter(|d| d.delta_us > 0 && !tol.latency.allows(d.baseline_us as f64, d.delta_us as f64))
        .map(|d| d.name.clone())
        .collect();
    Ok(ProfileDiffReport { deltas, regressed })
}

/// True when any frame's growth breaks the tolerance.
pub fn has_profile_regressions(report: &ProfileDiffReport) -> bool {
    !report.regressed.is_empty()
}

/// Renders the localization verdict: the ranked frame table plus a
/// verdict line naming the worst offender (or declaring the profiles
/// within tolerance).
pub fn render_profile_diff_markdown(report: &ProfileDiffReport) -> String {
    let mut out = String::from("# augur-doctor profile diff\n\n");
    out.push_str(&augur_profile::render_diff_markdown(&report.deltas));
    out.push('\n');
    match report.regressed.first() {
        Some(worst) => {
            let _ = writeln!(
                out,
                "**REGRESSION**: {} frame(s) over latency tolerance; worst: `{worst}`",
                report.regressed.len()
            );
        }
        None => {
            out.push_str("No frame exceeds the latency tolerance.\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("augur-doctor-profile-diff-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| unreachable!("{e}"));
        path
    }

    #[test]
    fn flags_only_out_of_tolerance_growth() {
        let base = write_tmp("base.folded", "run 1000\nrun;slow 500\nrun;noise 500\n");
        let cur = write_tmp("cur.folded", "run 1000\nrun;slow 800\nrun;noise 510\n");
        let report = run_profile_diff(&base, &cur, &Tolerances::default())
            .unwrap_or_else(|e| unreachable!("{e}"));
        assert!(has_profile_regressions(&report));
        assert_eq!(report.regressed, vec!["slow"], "2% noise stays inside");
        assert_eq!(report.deltas[0].name, "slow");
        let md = render_profile_diff_markdown(&report);
        assert!(md.contains("worst: `slow`"), "{md}");
    }

    #[test]
    fn clean_diff_has_no_regressions() {
        let base = write_tmp("clean-base.folded", "run 1000\n");
        let cur = write_tmp("clean-cur.folded", "run 1005\n");
        let report = run_profile_diff(&base, &cur, &Tolerances::default())
            .unwrap_or_else(|e| unreachable!("{e}"));
        assert!(!has_profile_regressions(&report));
        assert!(render_profile_diff_markdown(&report)
            .contains("No frame exceeds the latency tolerance."));
    }

    #[test]
    fn malformed_input_is_invalid_data() {
        let bad = write_tmp("bad.folded", "not-a-profile\n");
        let ok = write_tmp("ok.folded", "run 10\n");
        let err = run_profile_diff(&bad, &ok, &Tolerances::default())
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
