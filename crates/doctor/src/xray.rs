//! Xray-gate mode (`--xray`): bottleneck-shape regression detection.
//!
//! The pairwise gate watches scalar metrics; this mode watches the
//! *shape* of the bottleneck. It diffs two `*.xray.json` artifacts (the
//! canonical reports `augur-xray` renders, byte-stable for a fixed
//! seed) and fails when the current run's bottleneck profile regressed
//! against the committed baseline:
//!
//! - **Head change**: the heaviest critical-path frame is a different
//!   stage than the baseline's — the bottleneck moved, and the report
//!   names where it moved to (this is the red-gate CI relies on: an
//!   injected single-stage slowdown must surface here by name).
//! - **Share regression**: any stage's critical-path share grew by more
//!   than [`SHARE_TOLERANCE`] absolute — one stage is eating a larger
//!   fraction of end-to-end latency.
//! - **Bound drop**: `parallel_speedup_bound` fell by more than
//!   [`BOUND_DROP_TOLERANCE`] relative — the ceiling the sharding arc
//!   (ROADMAP item 1) is chasing got lower.
//! - **Efficiency drop**: `measured.parallel_efficiency` (the *measured*
//!   counterpart of the modeled bound, from per-lane busy counters) fell
//!   by more than [`EFFICIENCY_DROP_TOLERANCE`] relative — the workers
//!   are really running less in parallel than they used to.
//! - **Blocked-share growth**: a stage's or a worker lane's measured
//!   blocked share grew by more than [`BLOCKED_SHARE_TOLERANCE`]
//!   absolute — new contention, named by stage and by lane (this is the
//!   lane red-gate: an injected stall must surface here by name).
//! - **Truncation**: the current report was built from a lossy drain
//!   (`"truncated": true`); a critical path with holes must not pass a
//!   gate quietly — **unless** the report says the loss was deliberate:
//!   `sampling.sampled: true` with an `effective_rate` consistent with
//!   the kept-event fraction is tail sampling doing its job, and passes
//!   with a note. An inconsistent rate (or no sampling claim at all) is
//!   genuine ring overflow and still fails. The verdict names which
//!   case it saw.
//!
//! The measured fields and the sampling section are optional in both
//! artifacts: baselines committed before lanes or sampling existed
//! still parse and gate on the original checks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use augur_semantic::json::JsonValue;

/// Absolute growth in a stage's critical-path share tolerated before
/// the gate fails (shares are fractions in `0..=1`).
pub const SHARE_TOLERANCE: f64 = 0.05;

/// Relative drop in `parallel_speedup_bound` tolerated before the gate
/// fails.
pub const BOUND_DROP_TOLERANCE: f64 = 0.10;

/// Relative drop in `measured.parallel_efficiency` tolerated before
/// the gate fails.
pub const EFFICIENCY_DROP_TOLERANCE: f64 = 0.10;

/// Absolute growth in a stage's or lane's measured blocked share
/// tolerated before the gate fails (shares are fractions in `0..=1`).
pub const BLOCKED_SHARE_TOLERANCE: f64 = 0.05;

/// Absolute mismatch tolerated between a truncated report's advertised
/// `sampling.effective_rate` and the kept-event fraction its own
/// `events` section implies, before the truncation stops counting as
/// deliberate sampling and becomes a ring-overflow regression.
pub const SAMPLING_RATE_TOLERANCE: f64 = 0.05;

/// The gate-relevant slice of one xray artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct XraySummary {
    /// Scenario the report covers (`"xray"` field).
    pub scenario: String,
    /// Heaviest critical-path frame, `None` for an empty drain.
    pub head: Option<String>,
    /// The parallel speedup bound headline.
    pub bound: f64,
    /// Whether the drain behind the report dropped events.
    pub truncated: bool,
    /// Total events the report accounts for (`events.total`, drained
    /// plus dropped); 0 for pre-events artifacts.
    pub total_events: u64,
    /// Events the drain lost (`events.dropped`).
    pub dropped_events: u64,
    /// Whether the report says it was built from a sampled slice
    /// (`sampling.sampled`); `false` for pre-sampling artifacts.
    pub sampled: bool,
    /// The kept fraction the report advertises
    /// (`sampling.effective_rate`), `None` for pre-sampling artifacts.
    pub effective_rate: Option<f64>,
    /// Critical-path share per stage name.
    pub shares: BTreeMap<String, f64>,
    /// Measured parallel efficiency (`measured.parallel_efficiency`),
    /// `None` for artifacts rendered before lanes existed.
    pub efficiency: Option<f64>,
    /// Measured blocked share per stage name (absent pre-lane).
    pub stage_blocked: BTreeMap<String, f64>,
    /// Measured blocked share per lane name (absent pre-lane).
    pub lane_blocked: BTreeMap<String, f64>,
}

impl XraySummary {
    /// The kept-event fraction the `events` section implies:
    /// `(total - dropped) / total`, 1.0 when the report accounts for no
    /// events at all.
    pub fn kept_fraction(&self) -> f64 {
        if self.total_events == 0 {
            1.0
        } else {
            self.total_events.saturating_sub(self.dropped_events) as f64 / self.total_events as f64
        }
    }

    /// Whether this report's truncation is explained by deliberate
    /// sampling: it claims `sampled: true` and its advertised
    /// `effective_rate` agrees with the kept fraction its own event
    /// counts imply (within [`SAMPLING_RATE_TOLERANCE`]). Anything else
    /// — no claim, or a rate that doesn't match the loss — is genuine
    /// ring overflow.
    pub fn truncation_is_sampling(&self) -> bool {
        self.sampled
            && self
                .effective_rate
                .map(|rate| (rate - self.kept_fraction()).abs() <= SAMPLING_RATE_TOLERANCE)
                .unwrap_or(false)
    }
}

/// Outcome of diffing a current xray artifact against the baseline.
#[derive(Debug, Clone)]
pub struct XrayGateReport {
    /// The committed baseline's summary.
    pub baseline: XraySummary,
    /// The current run's summary.
    pub current: XraySummary,
    /// Human-readable regression statements; any entry fails the gate.
    pub regressions: Vec<String>,
    /// Non-failing observations worth surfacing in the verdict (e.g.
    /// truncation explained by deliberate tail sampling).
    pub notes: Vec<String>,
}

/// Parses the gate-relevant fields out of an xray artifact.
///
/// # Errors
///
/// Shape mismatches surface as [`io::ErrorKind::InvalidData`] — a
/// malformed artifact must not silently pass the gate.
pub fn parse_xray_report(text: &str) -> io::Result<XraySummary> {
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let doc = JsonValue::parse(text).map_err(|e| bad(format!("invalid JSON ({e})")))?;
    let scenario = doc
        .field("xray")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| bad(format!("missing xray scenario ({e})")))?;
    let truncated = match doc.field("truncated") {
        Ok(JsonValue::Bool(b)) => *b,
        Ok(other) => {
            return Err(bad(format!(
                "truncated: expected bool, found {}",
                other.to_json()
            )))
        }
        Err(e) => return Err(bad(format!("missing truncated ({e})"))),
    };
    let bound = doc
        .field("speedup")
        .and_then(|s| s.field("parallel_speedup_bound"))
        .and_then(|v| v.as_f64())
        .map_err(|e| bad(format!("missing speedup.parallel_speedup_bound ({e})")))?;
    let head = match doc.field("head") {
        Ok(JsonValue::Null) => None,
        Ok(v) => Some(
            v.as_str()
                .map(str::to_string)
                .map_err(|e| bad(format!("head: {e}")))?,
        ),
        Err(e) => return Err(bad(format!("missing head ({e})"))),
    };
    let mut shares = BTreeMap::new();
    let frames = doc
        .field("critical_path")
        .and_then(|v| v.as_array())
        .map_err(|e| bad(format!("missing critical_path ({e})")))?;
    for frame in frames {
        let name = frame
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| bad(format!("critical_path frame missing name ({e})")))?;
        let share = frame
            .field("share")
            .and_then(|v| v.as_f64())
            .map_err(|e| bad(format!("critical_path frame missing share ({e})")))?;
        shares.insert(name, share);
    }
    // Event accounting: optional with zero defaults, so minimal
    // fixtures and old artifacts keep parsing.
    let event_count = |key: &str| -> u64 {
        doc.field("events")
            .and_then(|e| e.field(key))
            .and_then(|v| v.as_f64())
            .ok()
            .map(|v| v.max(0.0) as u64)
            .unwrap_or(0)
    };
    // Sampling section: optional, so baselines committed before
    // augur-sample existed keep parsing (they read as unsampled).
    let sampled = doc
        .field("sampling")
        .and_then(|s| s.field("sampled"))
        .ok()
        .and_then(|v| match v {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        })
        .unwrap_or(false);
    let effective_rate = doc
        .field("sampling")
        .and_then(|s| s.field("effective_rate"))
        .and_then(|v| v.as_f64())
        .ok();
    // Lane-era fields: optional, so baselines committed before worker
    // lanes existed keep parsing (and simply skip the measured gates).
    let efficiency = doc
        .field("measured")
        .and_then(|m| m.field("parallel_efficiency"))
        .and_then(|v| v.as_f64())
        .ok();
    let blocked_by_name = |array: &str, key: &str| -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        if let Ok(rows) = doc.field(array).and_then(|v| v.as_array()) {
            for row in rows {
                let name = row.field(key).and_then(|v| v.as_str().map(str::to_string));
                let share = row.field("blocked_share").and_then(|v| v.as_f64());
                if let (Ok(name), Ok(share)) = (name, share) {
                    out.insert(name, share);
                }
            }
        }
        out
    };
    Ok(XraySummary {
        scenario,
        head,
        bound,
        truncated,
        total_events: event_count("total"),
        dropped_events: event_count("dropped"),
        sampled,
        effective_rate,
        shares,
        efficiency,
        stage_blocked: blocked_by_name("stages", "name"),
        lane_blocked: blocked_by_name("lanes", "name"),
    })
}

/// Diffs two summaries into the gate verdict (pure; see
/// [`run_xray_gate`] for the file-reading front end).
pub fn diff_xray(baseline: XraySummary, current: XraySummary) -> XrayGateReport {
    let mut regressions = Vec::new();
    let mut notes = Vec::new();
    if current.truncated {
        if current.truncation_is_sampling() {
            notes.push(format!(
                "current report is truncated by deliberate tail sampling, not ring overflow: \
                 sampled with effective_rate {:.6} consistent with the kept-event fraction \
                 {:.6} — intentional loss, gate continues",
                current.effective_rate.unwrap_or(1.0),
                current.kept_fraction(),
            ));
        } else if current.sampled {
            regressions.push(format!(
                "current report is truncated by genuine ring overflow, not sampling: it claims \
                 sampled with effective_rate {:.6}, but its events imply a kept fraction of \
                 {:.6} (mismatch > {SAMPLING_RATE_TOLERANCE}) — rerun with a larger ring \
                 before gating",
                current.effective_rate.unwrap_or(1.0),
                current.kept_fraction(),
            ));
        } else {
            regressions.push(
                "current report is truncated by genuine ring overflow (lossy flight drain, no \
                 sampling claimed) — its critical path has holes; rerun with a larger ring \
                 before gating"
                    .to_string(),
            );
        }
    }
    if current.head != baseline.head {
        let name = |h: &Option<String>| h.clone().unwrap_or_else(|| "(none)".to_string());
        regressions.push(format!(
            "critical-path head moved: `{}` -> `{}` — the bottleneck is now {}",
            name(&baseline.head),
            name(&current.head),
            name(&current.head),
        ));
    }
    for (stage, &cur) in &current.shares {
        let base = baseline.shares.get(stage).copied().unwrap_or(0.0);
        if cur - base > SHARE_TOLERANCE {
            regressions.push(format!(
                "stage `{stage}` critical-path share grew {:.1}% -> {:.1}% \
                 (+{:.1} pts > {:.0} pt tolerance)",
                base * 100.0,
                cur * 100.0,
                (cur - base) * 100.0,
                SHARE_TOLERANCE * 100.0,
            ));
        }
    }
    if current.bound < baseline.bound * (1.0 - BOUND_DROP_TOLERANCE) {
        regressions.push(format!(
            "parallel speedup bound dropped {:.2}x -> {:.2}x \
             (more than {:.0}% — the sharding headroom shrank)",
            baseline.bound,
            current.bound,
            BOUND_DROP_TOLERANCE * 100.0,
        ));
    }
    if let (Some(base), Some(cur)) = (baseline.efficiency, current.efficiency) {
        if cur < base * (1.0 - EFFICIENCY_DROP_TOLERANCE) {
            regressions.push(format!(
                "measured parallel efficiency dropped {base:.2} -> {cur:.2} \
                 (more than {:.0}% — the lanes really are running less in parallel)",
                EFFICIENCY_DROP_TOLERANCE * 100.0,
            ));
        }
    }
    for (stage, &cur) in &current.stage_blocked {
        let base = baseline.stage_blocked.get(stage).copied().unwrap_or(0.0);
        if cur - base > BLOCKED_SHARE_TOLERANCE {
            regressions.push(format!(
                "stage `{stage}` blocked share grew {:.1}% -> {:.1}% \
                 (+{:.1} pts > {:.0} pt tolerance) — contention grew at stage {stage}",
                base * 100.0,
                cur * 100.0,
                (cur - base) * 100.0,
                BLOCKED_SHARE_TOLERANCE * 100.0,
            ));
        }
    }
    for (lane, &cur) in &current.lane_blocked {
        let base = baseline.lane_blocked.get(lane).copied().unwrap_or(0.0);
        if cur - base > BLOCKED_SHARE_TOLERANCE {
            regressions.push(format!(
                "lane `{lane}` blocked share grew {:.1}% -> {:.1}% \
                 (+{:.1} pts > {:.0} pt tolerance) — lane {lane} is stalled",
                base * 100.0,
                cur * 100.0,
                (cur - base) * 100.0,
                BLOCKED_SHARE_TOLERANCE * 100.0,
            ));
        }
    }
    XrayGateReport {
        baseline,
        current,
        regressions,
        notes,
    }
}

/// Diffs a current xray artifact against a committed baseline artifact.
///
/// # Errors
///
/// I/O errors reading either file; malformed content surfaces as
/// [`io::ErrorKind::InvalidData`] naming the offending file.
pub fn run_xray_gate(current: &Path, baseline: &Path) -> io::Result<XrayGateReport> {
    let label =
        |path: &Path, e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
    let cur_text = std::fs::read_to_string(current).map_err(|e| label(current, e))?;
    let cur = parse_xray_report(&cur_text).map_err(|e| label(current, e))?;
    let base_text = std::fs::read_to_string(baseline).map_err(|e| label(baseline, e))?;
    let base = parse_xray_report(&base_text).map_err(|e| label(baseline, e))?;
    Ok(diff_xray(base, cur))
}

/// True when the bottleneck shape regressed; the CLI exits 1.
pub fn has_xray_regressions(report: &XrayGateReport) -> bool {
    !report.regressions.is_empty()
}

/// Renders the gate verdict: the share table, the bound movement, and
/// every regression statement.
pub fn render_xray_markdown(report: &XrayGateReport) -> String {
    let mut out = String::from("# augur-doctor xray gate\n\n");
    let name = |h: &Option<String>| h.clone().unwrap_or_else(|| "(none)".to_string());
    let _ = writeln!(
        out,
        "scenario `{}`: head `{}` (baseline `{}`), speedup bound {:.2}x (baseline {:.2}x)\n",
        report.current.scenario,
        name(&report.current.head),
        name(&report.baseline.head),
        report.current.bound,
        report.baseline.bound,
    );
    if let (Some(base), Some(cur)) = (report.baseline.efficiency, report.current.efficiency) {
        let _ = writeln!(
            out,
            "measured parallel efficiency {cur:.2} (baseline {base:.2})\n",
        );
    }
    if report.current.sampled {
        let _ = writeln!(
            out,
            "current report is sampled (effective rate {:.6}, kept fraction {:.6})\n",
            report.current.effective_rate.unwrap_or(1.0),
            report.current.kept_fraction(),
        );
    }
    out.push_str("| stage | baseline share | current share | delta |\n|---|---|---|---|\n");
    let mut stages: Vec<&String> = report
        .baseline
        .shares
        .keys()
        .chain(report.current.shares.keys())
        .collect();
    stages.sort();
    stages.dedup();
    for stage in stages {
        let base = report.baseline.shares.get(stage).copied().unwrap_or(0.0);
        let cur = report.current.shares.get(stage).copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "| `{stage}` | {:.1}% | {:.1}% | {:+.1} pts |",
            base * 100.0,
            cur * 100.0,
            (cur - base) * 100.0,
        );
    }
    if !report.notes.is_empty() {
        out.push('\n');
        for n in &report.notes {
            let _ = writeln!(out, "- note: {n}");
        }
    }
    if report.regressions.is_empty() {
        out.push_str("\nNo xray regressions: bottleneck shape matches the baseline.\n");
    } else {
        let _ = writeln!(
            out,
            "\n**XRAY REGRESSIONS**: {} finding(s)\n",
            report.regressions.len()
        );
        for r in &report.regressions {
            let _ = writeln!(out, "- {r}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(head: &str, head_share: f64, other_share: f64, bound: f64) -> String {
        format!(
            "{{\"xray\":\"t\",\"truncated\":false,\"events\":{{\"total\":4,\"dropped\":0}},\
             \"roots\":1,\"makespan_us\":100,\"work_us\":100,\"span_us\":100,\
             \"speedup\":{{\"work_span_bound\":1,\"stage_bound\":{bound},\
             \"parallel_speedup_bound\":{bound}}},\"head\":\"{head}\",\
             \"critical_path\":[{{\"name\":\"{head}\",\"self_us\":60,\"count\":1,\
             \"share\":{head_share}}},{{\"name\":\"other\",\"self_us\":40,\"count\":1,\
             \"share\":{other_share}}}],\"stages\":[],\"queues\":[]}}"
        )
    }

    fn parse(text: &str) -> XraySummary {
        parse_xray_report(text).unwrap_or_else(|e| unreachable!("{e}"))
    }

    #[test]
    fn identical_reports_pass() {
        let a = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let report = diff_xray(a.clone(), a);
        assert!(!has_xray_regressions(&report));
        assert!(render_xray_markdown(&report).contains("No xray regressions"));
    }

    #[test]
    fn head_change_is_named() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&artifact("window", 0.6, 0.4, 2.0));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        let md = render_xray_markdown(&report);
        assert!(
            md.contains("the bottleneck is now window"),
            "the new head must be named: {md}"
        );
    }

    #[test]
    fn share_growth_past_tolerance_fails() {
        let base = parse(&artifact("transform", 0.60, 0.40, 2.0));
        let cur = parse(&artifact("transform", 0.66, 0.34, 2.0));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("`transform`"));
        // Growth inside tolerance passes.
        let base = parse(&artifact("transform", 0.60, 0.40, 2.0));
        let cur = parse(&artifact("transform", 0.64, 0.36, 2.0));
        assert!(!has_xray_regressions(&diff_xray(base, cur)));
    }

    #[test]
    fn bound_drop_past_tolerance_fails() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&artifact("transform", 0.6, 0.4, 1.7));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("speedup bound dropped"));
        // A 5% dip stays inside the 10% tolerance.
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&artifact("transform", 0.6, 0.4, 1.9));
        assert!(!has_xray_regressions(&diff_xray(base, cur)));
    }

    #[test]
    fn truncated_current_fails_loudly() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let text = artifact("transform", 0.6, 0.4, 2.0)
            .replace("\"truncated\":false", "\"truncated\":true");
        let report = diff_xray(base, parse(&text));
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("truncated"));
        assert!(
            report.regressions[0].contains("genuine ring overflow"),
            "the verdict must say which case it is: {}",
            report.regressions[0]
        );
    }

    /// Injects a `sampling` section and truncation loss into a fixture:
    /// 64 of 4096 events kept (1/64 tail retention).
    fn sampled_artifact(effective_rate: f64) -> String {
        artifact("transform", 0.6, 0.4, 2.0)
            .replace("\"truncated\":false", "\"truncated\":true")
            .replace(
                "\"events\":{\"total\":4,\"dropped\":0}",
                &format!(
                    "\"events\":{{\"total\":4096,\"dropped\":4032}},\
                     \"sampling\":{{\"sampled\":true,\"effective_rate\":{effective_rate},\
                     \"estimated_roots\":64,\"estimated_events\":4096}}"
                ),
            )
    }

    #[test]
    fn truncation_explained_by_consistent_sampling_passes_with_note() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&sampled_artifact(1.0 / 64.0));
        assert!(cur.sampled);
        assert!(cur.truncation_is_sampling());
        let report = diff_xray(base, cur);
        assert!(
            !has_xray_regressions(&report),
            "deliberate tail sampling must not fail the gate: {:?}",
            report.regressions
        );
        let md = render_xray_markdown(&report);
        assert!(
            md.contains("deliberate tail sampling, not ring overflow"),
            "the verdict must say which case it is: {md}"
        );
        assert!(md.contains("current report is sampled (effective rate 0.015625"));
    }

    #[test]
    fn truncation_with_inconsistent_rate_is_still_ring_overflow() {
        // Claims it kept half, but its own events say 1/64 survived:
        // the loss is not explained by the advertised sampling.
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&sampled_artifact(0.5));
        assert!(!cur.truncation_is_sampling());
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        assert!(
            report.regressions[0].contains("genuine ring overflow, not sampling"),
            "the verdict must say which case it is: {}",
            report.regressions[0]
        );
    }

    #[test]
    fn untruncated_sampled_report_gates_normally() {
        // Pure head sampling: unsampled events never reach the ring, so
        // truncated stays false and nothing special fires.
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let text = artifact("transform", 0.6, 0.4, 2.0).replace(
            "\"events\":{\"total\":4,\"dropped\":0}",
            "\"events\":{\"total\":4,\"dropped\":0},\
             \"sampling\":{\"sampled\":true,\"effective_rate\":0.015625,\
             \"estimated_roots\":64,\"estimated_events\":256}",
        );
        let report = diff_xray(base, parse(&text));
        assert!(!has_xray_regressions(&report));
        assert!(report.notes.is_empty());
    }

    /// A lane-era artifact: measured section plus stage/lane blocked
    /// shares (shapes match what `augur-xray` renders).
    fn lane_artifact(efficiency: f64, stage_blocked: f64, lane_blocked: f64) -> String {
        format!(
            "{{\"xray\":\"t\",\"truncated\":false,\"events\":{{\"total\":4,\"dropped\":0}},\
             \"roots\":1,\"makespan_us\":100,\"work_us\":100,\"span_us\":100,\
             \"speedup\":{{\"work_span_bound\":1,\"stage_bound\":2,\
             \"parallel_speedup_bound\":2}},\
             \"measured\":{{\"lanes\":2,\"busy_us\":130,\"blocked_us\":20,\
             \"parallel_efficiency\":{efficiency}}},\"head\":\"produce\",\
             \"critical_path\":[{{\"name\":\"produce\",\"self_us\":100,\"count\":1,\
             \"share\":1.0}}],\
             \"stages\":[{{\"name\":\"produce\",\"count\":1,\"busy_us\":100,\
             \"arrival_per_s\":1,\"service_us\":100,\"utilization\":1,\
             \"queue_wait_us\":0,\"queue_wait_share\":0,\"blocked_us\":20,\
             \"blocked_share\":{stage_blocked}}}],\
             \"lanes\":[{{\"lane\":1,\"name\":\"producer-1\",\"busy_us\":80,\
             \"blocked_us\":20,\"dropped\":0,\"utilization\":0.8,\
             \"blocked_share\":{lane_blocked}}}],\"queues\":[]}}"
        )
    }

    #[test]
    fn efficiency_drop_past_tolerance_fails() {
        let base = parse(&lane_artifact(0.9, 0.0, 0.0));
        let cur = parse(&lane_artifact(0.7, 0.0, 0.0));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("measured parallel efficiency dropped"));
        // A drop inside the 10% relative tolerance passes.
        let base = parse(&lane_artifact(0.9, 0.0, 0.0));
        let cur = parse(&lane_artifact(0.85, 0.0, 0.0));
        assert!(!has_xray_regressions(&diff_xray(base, cur)));
        let md = render_xray_markdown(&diff_xray(
            parse(&lane_artifact(0.9, 0.0, 0.0)),
            parse(&lane_artifact(0.85, 0.0, 0.0)),
        ));
        assert!(md.contains("measured parallel efficiency 0.85 (baseline 0.90)"));
    }

    #[test]
    fn blocked_share_growth_names_the_stage_and_lane() {
        let base = parse(&lane_artifact(0.9, 0.02, 0.02));
        let cur = parse(&lane_artifact(0.9, 0.30, 0.30));
        let report = diff_xray(base, cur);
        assert_eq!(report.regressions.len(), 2);
        assert!(
            report.regressions[0].contains("contention grew at stage produce"),
            "stage must be named: {:?}",
            report.regressions
        );
        assert!(
            report.regressions[1].contains("lane `producer-1` blocked share grew"),
            "lane must be named: {:?}",
            report.regressions
        );
        // Growth inside the 5 pt tolerance passes.
        let base = parse(&lane_artifact(0.9, 0.02, 0.02));
        let cur = parse(&lane_artifact(0.9, 0.06, 0.06));
        assert!(!has_xray_regressions(&diff_xray(base, cur)));
    }

    #[test]
    fn pre_lane_baseline_still_parses_and_skips_measured_gates() {
        // Old committed baseline: no measured/lanes/blocked fields.
        let base = parse(&artifact("produce", 1.0, 0.0, 2.0));
        assert_eq!(base.efficiency, None);
        assert!(base.lane_blocked.is_empty());
        // New current with an awful efficiency: no efficiency gate
        // fires (nothing to compare against), but blocked-share growth
        // still gates against an implicit zero baseline.
        let cur = parse(&lane_artifact(0.1, 0.0, 0.4));
        let report = diff_xray(base, cur);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].contains("lane `producer-1`"));
    }

    #[test]
    fn malformed_artifact_is_invalid_data() {
        let err = parse_xray_report("{\"xray\":\"t\"}")
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = parse_xray_report("not json")
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
