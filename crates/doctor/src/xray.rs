//! Xray-gate mode (`--xray`): bottleneck-shape regression detection.
//!
//! The pairwise gate watches scalar metrics; this mode watches the
//! *shape* of the bottleneck. It diffs two `*.xray.json` artifacts (the
//! canonical reports `augur-xray` renders, byte-stable for a fixed
//! seed) and fails when the current run's bottleneck profile regressed
//! against the committed baseline:
//!
//! - **Head change**: the heaviest critical-path frame is a different
//!   stage than the baseline's — the bottleneck moved, and the report
//!   names where it moved to (this is the red-gate CI relies on: an
//!   injected single-stage slowdown must surface here by name).
//! - **Share regression**: any stage's critical-path share grew by more
//!   than [`SHARE_TOLERANCE`] absolute — one stage is eating a larger
//!   fraction of end-to-end latency.
//! - **Bound drop**: `parallel_speedup_bound` fell by more than
//!   [`BOUND_DROP_TOLERANCE`] relative — the ceiling the sharding arc
//!   (ROADMAP item 1) is chasing got lower.
//! - **Truncation**: the current report was built from a lossy drain
//!   (`"truncated": true`); a critical path with holes must not pass a
//!   gate quietly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use augur_semantic::json::JsonValue;

/// Absolute growth in a stage's critical-path share tolerated before
/// the gate fails (shares are fractions in `0..=1`).
pub const SHARE_TOLERANCE: f64 = 0.05;

/// Relative drop in `parallel_speedup_bound` tolerated before the gate
/// fails.
pub const BOUND_DROP_TOLERANCE: f64 = 0.10;

/// The gate-relevant slice of one xray artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct XraySummary {
    /// Scenario the report covers (`"xray"` field).
    pub scenario: String,
    /// Heaviest critical-path frame, `None` for an empty drain.
    pub head: Option<String>,
    /// The parallel speedup bound headline.
    pub bound: f64,
    /// Whether the drain behind the report dropped events.
    pub truncated: bool,
    /// Critical-path share per stage name.
    pub shares: BTreeMap<String, f64>,
}

/// Outcome of diffing a current xray artifact against the baseline.
#[derive(Debug, Clone)]
pub struct XrayGateReport {
    /// The committed baseline's summary.
    pub baseline: XraySummary,
    /// The current run's summary.
    pub current: XraySummary,
    /// Human-readable regression statements; any entry fails the gate.
    pub regressions: Vec<String>,
}

/// Parses the gate-relevant fields out of an xray artifact.
///
/// # Errors
///
/// Shape mismatches surface as [`io::ErrorKind::InvalidData`] — a
/// malformed artifact must not silently pass the gate.
pub fn parse_xray_report(text: &str) -> io::Result<XraySummary> {
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let doc = JsonValue::parse(text).map_err(|e| bad(format!("invalid JSON ({e})")))?;
    let scenario = doc
        .field("xray")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| bad(format!("missing xray scenario ({e})")))?;
    let truncated = match doc.field("truncated") {
        Ok(JsonValue::Bool(b)) => *b,
        Ok(other) => {
            return Err(bad(format!(
                "truncated: expected bool, found {}",
                other.to_json()
            )))
        }
        Err(e) => return Err(bad(format!("missing truncated ({e})"))),
    };
    let bound = doc
        .field("speedup")
        .and_then(|s| s.field("parallel_speedup_bound"))
        .and_then(|v| v.as_f64())
        .map_err(|e| bad(format!("missing speedup.parallel_speedup_bound ({e})")))?;
    let head = match doc.field("head") {
        Ok(JsonValue::Null) => None,
        Ok(v) => Some(
            v.as_str()
                .map(str::to_string)
                .map_err(|e| bad(format!("head: {e}")))?,
        ),
        Err(e) => return Err(bad(format!("missing head ({e})"))),
    };
    let mut shares = BTreeMap::new();
    let frames = doc
        .field("critical_path")
        .and_then(|v| v.as_array())
        .map_err(|e| bad(format!("missing critical_path ({e})")))?;
    for frame in frames {
        let name = frame
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| bad(format!("critical_path frame missing name ({e})")))?;
        let share = frame
            .field("share")
            .and_then(|v| v.as_f64())
            .map_err(|e| bad(format!("critical_path frame missing share ({e})")))?;
        shares.insert(name, share);
    }
    Ok(XraySummary {
        scenario,
        head,
        bound,
        truncated,
        shares,
    })
}

/// Diffs two summaries into the gate verdict (pure; see
/// [`run_xray_gate`] for the file-reading front end).
pub fn diff_xray(baseline: XraySummary, current: XraySummary) -> XrayGateReport {
    let mut regressions = Vec::new();
    if current.truncated {
        regressions.push(
            "current report is truncated (lossy flight drain) — its critical path has holes; \
             rerun with a larger ring before gating"
                .to_string(),
        );
    }
    if current.head != baseline.head {
        let name = |h: &Option<String>| h.clone().unwrap_or_else(|| "(none)".to_string());
        regressions.push(format!(
            "critical-path head moved: `{}` -> `{}` — the bottleneck is now {}",
            name(&baseline.head),
            name(&current.head),
            name(&current.head),
        ));
    }
    for (stage, &cur) in &current.shares {
        let base = baseline.shares.get(stage).copied().unwrap_or(0.0);
        if cur - base > SHARE_TOLERANCE {
            regressions.push(format!(
                "stage `{stage}` critical-path share grew {:.1}% -> {:.1}% \
                 (+{:.1} pts > {:.0} pt tolerance)",
                base * 100.0,
                cur * 100.0,
                (cur - base) * 100.0,
                SHARE_TOLERANCE * 100.0,
            ));
        }
    }
    if current.bound < baseline.bound * (1.0 - BOUND_DROP_TOLERANCE) {
        regressions.push(format!(
            "parallel speedup bound dropped {:.2}x -> {:.2}x \
             (more than {:.0}% — the sharding headroom shrank)",
            baseline.bound,
            current.bound,
            BOUND_DROP_TOLERANCE * 100.0,
        ));
    }
    XrayGateReport {
        baseline,
        current,
        regressions,
    }
}

/// Diffs a current xray artifact against a committed baseline artifact.
///
/// # Errors
///
/// I/O errors reading either file; malformed content surfaces as
/// [`io::ErrorKind::InvalidData`] naming the offending file.
pub fn run_xray_gate(current: &Path, baseline: &Path) -> io::Result<XrayGateReport> {
    let label =
        |path: &Path, e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
    let cur_text = std::fs::read_to_string(current).map_err(|e| label(current, e))?;
    let cur = parse_xray_report(&cur_text).map_err(|e| label(current, e))?;
    let base_text = std::fs::read_to_string(baseline).map_err(|e| label(baseline, e))?;
    let base = parse_xray_report(&base_text).map_err(|e| label(baseline, e))?;
    Ok(diff_xray(base, cur))
}

/// True when the bottleneck shape regressed; the CLI exits 1.
pub fn has_xray_regressions(report: &XrayGateReport) -> bool {
    !report.regressions.is_empty()
}

/// Renders the gate verdict: the share table, the bound movement, and
/// every regression statement.
pub fn render_xray_markdown(report: &XrayGateReport) -> String {
    let mut out = String::from("# augur-doctor xray gate\n\n");
    let name = |h: &Option<String>| h.clone().unwrap_or_else(|| "(none)".to_string());
    let _ = writeln!(
        out,
        "scenario `{}`: head `{}` (baseline `{}`), speedup bound {:.2}x (baseline {:.2}x)\n",
        report.current.scenario,
        name(&report.current.head),
        name(&report.baseline.head),
        report.current.bound,
        report.baseline.bound,
    );
    out.push_str("| stage | baseline share | current share | delta |\n|---|---|---|---|\n");
    let mut stages: Vec<&String> = report
        .baseline
        .shares
        .keys()
        .chain(report.current.shares.keys())
        .collect();
    stages.sort();
    stages.dedup();
    for stage in stages {
        let base = report.baseline.shares.get(stage).copied().unwrap_or(0.0);
        let cur = report.current.shares.get(stage).copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "| `{stage}` | {:.1}% | {:.1}% | {:+.1} pts |",
            base * 100.0,
            cur * 100.0,
            (cur - base) * 100.0,
        );
    }
    if report.regressions.is_empty() {
        out.push_str("\nNo xray regressions: bottleneck shape matches the baseline.\n");
    } else {
        let _ = writeln!(
            out,
            "\n**XRAY REGRESSIONS**: {} finding(s)\n",
            report.regressions.len()
        );
        for r in &report.regressions {
            let _ = writeln!(out, "- {r}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(head: &str, head_share: f64, other_share: f64, bound: f64) -> String {
        format!(
            "{{\"xray\":\"t\",\"truncated\":false,\"events\":{{\"total\":4,\"dropped\":0}},\
             \"roots\":1,\"makespan_us\":100,\"work_us\":100,\"span_us\":100,\
             \"speedup\":{{\"work_span_bound\":1,\"stage_bound\":{bound},\
             \"parallel_speedup_bound\":{bound}}},\"head\":\"{head}\",\
             \"critical_path\":[{{\"name\":\"{head}\",\"self_us\":60,\"count\":1,\
             \"share\":{head_share}}},{{\"name\":\"other\",\"self_us\":40,\"count\":1,\
             \"share\":{other_share}}}],\"stages\":[],\"queues\":[]}}"
        )
    }

    fn parse(text: &str) -> XraySummary {
        parse_xray_report(text).unwrap_or_else(|e| unreachable!("{e}"))
    }

    #[test]
    fn identical_reports_pass() {
        let a = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let report = diff_xray(a.clone(), a);
        assert!(!has_xray_regressions(&report));
        assert!(render_xray_markdown(&report).contains("No xray regressions"));
    }

    #[test]
    fn head_change_is_named() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&artifact("window", 0.6, 0.4, 2.0));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        let md = render_xray_markdown(&report);
        assert!(
            md.contains("the bottleneck is now window"),
            "the new head must be named: {md}"
        );
    }

    #[test]
    fn share_growth_past_tolerance_fails() {
        let base = parse(&artifact("transform", 0.60, 0.40, 2.0));
        let cur = parse(&artifact("transform", 0.66, 0.34, 2.0));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("`transform`"));
        // Growth inside tolerance passes.
        let base = parse(&artifact("transform", 0.60, 0.40, 2.0));
        let cur = parse(&artifact("transform", 0.64, 0.36, 2.0));
        assert!(!has_xray_regressions(&diff_xray(base, cur)));
    }

    #[test]
    fn bound_drop_past_tolerance_fails() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&artifact("transform", 0.6, 0.4, 1.7));
        let report = diff_xray(base, cur);
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("speedup bound dropped"));
        // A 5% dip stays inside the 10% tolerance.
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let cur = parse(&artifact("transform", 0.6, 0.4, 1.9));
        assert!(!has_xray_regressions(&diff_xray(base, cur)));
    }

    #[test]
    fn truncated_current_fails_loudly() {
        let base = parse(&artifact("transform", 0.6, 0.4, 2.0));
        let text = artifact("transform", 0.6, 0.4, 2.0)
            .replace("\"truncated\":false", "\"truncated\":true");
        let report = diff_xray(base, parse(&text));
        assert!(has_xray_regressions(&report));
        assert!(report.regressions[0].contains("truncated"));
    }

    #[test]
    fn malformed_artifact_is_invalid_data() {
        let err = parse_xray_report("{\"xray\":\"t\"}")
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = parse_xray_report("not json")
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
