//! `augur-doctor` CLI: the perf-regression gate.
//!
//! ```text
//! augur-doctor --baseline results/baseline --current results [--json results/doctor.json]
//! ```
//!
//! Compares every bench snapshot present in BOTH directories (the
//! intersection rule: wall-clock benches without a committed baseline
//! never flake the gate), prints a markdown verdict, optionally writes a
//! JSON verdict, and exits 0 when clean, 1 on any regression, 2 on
//! usage or I/O errors.

use std::path::PathBuf;

use augur_doctor::{has_regressions, render_json, render_markdown, run_gate, Tolerances};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    json_out: Option<PathBuf>,
}

const USAGE: &str = "usage: augur-doctor --baseline <dir> --current <dir> [--json <path>]";

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut json_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(take("--baseline")?)),
            "--current" => current = Some(PathBuf::from(take("--current")?)),
            "--json" => json_out = Some(PathBuf::from(take("--json")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or_else(|| format!("--baseline is required\n{USAGE}"))?,
        current: current.ok_or_else(|| format!("--current is required\n{USAGE}"))?,
        json_out,
    })
}

fn run() -> i32 {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let comps = match run_gate(&args.baseline, &args.current, &Tolerances::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "augur-doctor: failed reading {} / {}: {e}",
                args.baseline.display(),
                args.current.display()
            );
            return 2;
        }
    };
    print!("{}", render_markdown(&comps));
    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, render_json(&comps)) {
            eprintln!("augur-doctor: failed writing {}: {e}", path.display());
            return 2;
        }
        println!("\nverdict JSON: {}", path.display());
    }
    if has_regressions(&comps) {
        1
    } else {
        0
    }
}

fn main() {
    std::process::exit(run());
}
