//! `augur-doctor` CLI: the perf-regression gate.
//!
//! ```text
//! augur-doctor --baseline results/baseline --current results [--json results/doctor.json]
//! augur-doctor --trend results/baseline/history
//! augur-doctor --profile-diff baseline.folded current.folded
//! augur-doctor --logs current.jsonl results/baseline/log_fingerprints.json
//! ```
//!
//! Pairwise mode compares every bench snapshot present in BOTH
//! directories (the intersection rule: wall-clock benches without a
//! committed baseline never flake the gate), prints a markdown verdict,
//! optionally writes a JSON verdict, and exits 0 when clean, 1 on any
//! regression, 2 on usage or I/O errors.
//!
//! Trend mode (`--trend`, exclusive with the pairwise flags) fits every
//! snapshot history under one directory — files ordered by name, grouped
//! by bench — and exits 1 on **sustained drift**: a metric whose fitted
//! worsening across the whole history exceeds its class tolerance, even
//! when every individual step was inside tolerance.
//!
//! Profile-diff mode (`--profile-diff <baseline.folded>
//! <current.folded>`, exclusive with the others) localizes a
//! regression: it ranks every stack frame by exclusive self-time delta
//! between the two folded profiles (the artifacts `--profile` runs
//! write) and exits 1 — naming the frame — when the worst growth
//! exceeds the latency tolerance.
//!
//! Log-gate mode (`--logs <current.jsonl> <baseline.json>`, exclusive
//! with the others) diffs the WARN/ERROR pattern fingerprints of a
//! JSONL event log against a committed baseline and exits 1 on any
//! novel pattern. `--json <path>` here writes the current fingerprint
//! set in baseline format — the way to refresh the committed file.
//!
//! Xray-gate mode (`--xray <current.xray.json> <baseline.xray.json>`,
//! exclusive with the others) diffs two bottleneck reports and exits 1
//! when the critical-path head moved (naming the new head), any
//! stage's critical-path share grew past tolerance, the parallel
//! speedup bound dropped, or the current report is truncated.

use std::path::PathBuf;

use augur_doctor::logs::{
    extract_fingerprints, has_novel_patterns, render_baseline_json, render_log_gate_markdown,
    run_log_gate,
};
use augur_doctor::profile_diff::{
    has_profile_regressions, render_profile_diff_markdown, run_profile_diff,
};
use augur_doctor::trend::{has_drift, render_trend_markdown, run_trend};
use augur_doctor::xray::{has_xray_regressions, render_xray_markdown, run_xray_gate};
use augur_doctor::{has_regressions, render_json, render_markdown, run_gate, Tolerances};

enum Mode {
    Pairwise {
        baseline: PathBuf,
        current: PathBuf,
        json_out: Option<PathBuf>,
    },
    Trend {
        history: PathBuf,
    },
    ProfileDiff {
        baseline: PathBuf,
        current: PathBuf,
    },
    Logs {
        current: PathBuf,
        baseline: PathBuf,
        json_out: Option<PathBuf>,
    },
    Xray {
        current: PathBuf,
        baseline: PathBuf,
    },
}

const USAGE: &str = "usage: augur-doctor --baseline <dir> --current <dir> [--json <path>]\n\
       augur-doctor --trend <dir>\n\
       augur-doctor --profile-diff <baseline.folded> <current.folded>\n\
       augur-doctor --logs <current.jsonl> <baseline.json> [--json <path>]\n\
       augur-doctor --xray <current.xray.json> <baseline.xray.json>";

fn parse_args() -> Result<Mode, String> {
    let mut baseline = None;
    let mut current = None;
    let mut json_out = None;
    let mut trend = None;
    let mut profile_diff = None;
    let mut logs = None;
    let mut xray = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(take("--baseline")?)),
            "--current" => current = Some(PathBuf::from(take("--current")?)),
            "--json" => json_out = Some(PathBuf::from(take("--json")?)),
            "--trend" => trend = Some(PathBuf::from(take("--trend")?)),
            "--profile-diff" => {
                let base = PathBuf::from(take("--profile-diff")?);
                let cur = PathBuf::from(take("--profile-diff")?);
                profile_diff = Some((base, cur));
            }
            "--logs" => {
                let cur = PathBuf::from(take("--logs")?);
                let base = PathBuf::from(take("--logs")?);
                logs = Some((cur, base));
            }
            "--xray" => {
                let cur = PathBuf::from(take("--xray")?);
                let base = PathBuf::from(take("--xray")?);
                xray = Some((cur, base));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if let Some((cur, base)) = xray {
        if baseline.is_some()
            || current.is_some()
            || json_out.is_some()
            || trend.is_some()
            || profile_diff.is_some()
            || logs.is_some()
        {
            return Err(format!("--xray is exclusive with other modes\n{USAGE}"));
        }
        return Ok(Mode::Xray {
            current: cur,
            baseline: base,
        });
    }
    if let Some((cur, base)) = logs {
        if baseline.is_some() || current.is_some() || trend.is_some() || profile_diff.is_some() {
            return Err(format!("--logs is exclusive with other modes\n{USAGE}"));
        }
        return Ok(Mode::Logs {
            current: cur,
            baseline: base,
            json_out,
        });
    }
    if let Some((base, cur)) = profile_diff {
        if baseline.is_some() || current.is_some() || json_out.is_some() || trend.is_some() {
            return Err(format!(
                "--profile-diff is exclusive with other modes\n{USAGE}"
            ));
        }
        return Ok(Mode::ProfileDiff {
            baseline: base,
            current: cur,
        });
    }
    if let Some(history) = trend {
        if baseline.is_some() || current.is_some() || json_out.is_some() {
            return Err(format!(
                "--trend is exclusive with --baseline/--current/--json\n{USAGE}"
            ));
        }
        return Ok(Mode::Trend { history });
    }
    Ok(Mode::Pairwise {
        baseline: baseline.ok_or_else(|| format!("--baseline is required\n{USAGE}"))?,
        current: current.ok_or_else(|| format!("--current is required\n{USAGE}"))?,
        json_out,
    })
}

fn run() -> i32 {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    match mode {
        Mode::Xray { current, baseline } => {
            let report = match run_xray_gate(&current, &baseline) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("augur-doctor: xray gate failed: {e}");
                    return 2;
                }
            };
            print!("{}", render_xray_markdown(&report));
            if has_xray_regressions(&report) {
                1
            } else {
                0
            }
        }
        Mode::Logs {
            current,
            baseline,
            json_out,
        } => {
            let report = match run_log_gate(&current, &baseline) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("augur-doctor: log gate failed: {e}");
                    return 2;
                }
            };
            print!("{}", render_log_gate_markdown(&report));
            if let Some(path) = &json_out {
                // Re-extract from the log so the written file is the
                // exact baseline a clean future run will match.
                let result = std::fs::read_to_string(&current)
                    .and_then(|text| extract_fingerprints(&text))
                    .and_then(|(fps, _)| std::fs::write(path, render_baseline_json(&fps)));
                if let Err(e) = result {
                    eprintln!("augur-doctor: failed writing {}: {e}", path.display());
                    return 2;
                }
                println!("\nfingerprint baseline JSON: {}", path.display());
            }
            if has_novel_patterns(&report) {
                1
            } else {
                0
            }
        }
        Mode::ProfileDiff { baseline, current } => {
            let report = match run_profile_diff(&baseline, &current, &Tolerances::default()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "augur-doctor: failed diffing {} / {}: {e}",
                        baseline.display(),
                        current.display()
                    );
                    return 2;
                }
            };
            print!("{}", render_profile_diff_markdown(&report));
            if has_profile_regressions(&report) {
                1
            } else {
                0
            }
        }
        Mode::Trend { history } => {
            let reports = match run_trend(&history, &Tolerances::default()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("augur-doctor: failed reading {}: {e}", history.display());
                    return 2;
                }
            };
            print!("{}", render_trend_markdown(&reports));
            if has_drift(&reports) {
                1
            } else {
                0
            }
        }
        Mode::Pairwise {
            baseline,
            current,
            json_out,
        } => {
            let comps = match run_gate(&baseline, &current, &Tolerances::default()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!(
                        "augur-doctor: failed reading {} / {}: {e}",
                        baseline.display(),
                        current.display()
                    );
                    return 2;
                }
            };
            print!("{}", render_markdown(&comps));
            if let Some(path) = &json_out {
                if let Err(e) = std::fs::write(path, render_json(&comps)) {
                    eprintln!("augur-doctor: failed writing {}: {e}", path.display());
                    return 2;
                }
                println!("\nverdict JSON: {}", path.display());
            }
            if has_regressions(&comps) {
                1
            } else {
                0
            }
        }
    }
}

fn main() {
    std::process::exit(run());
}
