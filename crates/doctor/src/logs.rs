//! Log-fingerprint mode (`--logs`): novel-error-pattern detection.
//!
//! The pairwise gate watches *metrics*; this mode watches the
//! *narrative*. It reduces a JSONL event log (the artifact `run_logged`
//! scenarios and the watch `/logs` tail emit) to a set of WARN/ERROR
//! **pattern fingerprints** — `(level, message with digit runs
//! collapsed to '#')` — and diffs that set against a committed
//! baseline. A pattern the baseline has never seen fails the gate:
//! because same-seed runs produce byte-identical logs, a novel WARN or
//! ERROR line is a behaviour change, not noise. Patterns the baseline
//! expects but the run no longer produces are reported as stale so the
//! baseline can be re-tightened, but they never fail CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use augur_semantic::json::JsonValue;

/// One WARN/ERROR message pattern with its occurrence count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogFingerprint {
    /// Lowercase level string (`warn`, `error`).
    pub level: String,
    /// Message with every digit run collapsed to `#`.
    pub pattern: String,
    /// Occurrences in the scanned log (informational — counts drift
    /// with workload shape and never gate).
    pub count: u64,
}

/// Outcome of diffing a log's fingerprints against the baseline.
#[derive(Debug, Clone)]
pub struct LogGateReport {
    /// Patterns in the current log the baseline has never seen — each
    /// one fails the gate.
    pub novel: Vec<LogFingerprint>,
    /// Baseline patterns the current log no longer produces —
    /// informational, a prompt to tighten the baseline.
    pub stale: Vec<LogFingerprint>,
    /// Patterns present on both sides, with current counts.
    pub matched: Vec<LogFingerprint>,
    /// Total records scanned (all levels, gate-relevant or not).
    pub scanned: u64,
}

/// Collapses every run of ASCII digits in `msg` to a single `#`, so
/// messages that interpolate ids or counts fold into one pattern.
pub fn normalize_pattern(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    let mut in_digits = false;
    for c in msg.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
            }
            in_digits = true;
        } else {
            out.push(c);
            in_digits = false;
        }
    }
    out
}

/// Whether a record at this level participates in the gate. Unknown
/// level strings are treated as gate-relevant: a malformed or novel
/// severity should trip the diff, not slip past it.
fn gate_relevant(level: &str) -> bool {
    !matches!(level, "trace" | "debug" | "info")
}

/// Fingerprint counts keyed by `(level, normalized pattern)`.
pub type FingerprintCounts = BTreeMap<(String, String), u64>;

/// Reduces a JSONL log to `(level, pattern) -> count` fingerprints,
/// also returning the total record count scanned.
///
/// # Errors
///
/// A line that is not a JSON object with string `level` and `msg`
/// fields surfaces as [`io::ErrorKind::InvalidData`] with its line
/// number — a corrupt log artifact must not silently pass the gate.
pub fn extract_fingerprints(jsonl: &str) -> io::Result<(FingerprintCounts, u64)> {
    let mut fingerprints = BTreeMap::new();
    let mut scanned = 0u64;
    for (idx, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}", idx + 1),
            )
        };
        let value = JsonValue::parse(line).map_err(|e| bad(&format!("invalid JSON ({e})")))?;
        let level = value
            .field("level")
            .and_then(|v| v.as_str())
            .map_err(|e| bad(&format!("missing level ({e})")))?
            .to_ascii_lowercase();
        let msg = value
            .field("msg")
            .and_then(|v| v.as_str())
            .map_err(|e| bad(&format!("missing msg ({e})")))?;
        scanned += 1;
        if gate_relevant(&level) {
            *fingerprints
                .entry((level, normalize_pattern(msg)))
                .or_insert(0) += 1;
        }
    }
    Ok((fingerprints, scanned))
}

/// Parses a baseline fingerprint file (the JSON `render_baseline_json`
/// writes) back into the fingerprint map.
///
/// # Errors
///
/// Shape mismatches surface as [`io::ErrorKind::InvalidData`].
pub fn parse_baseline_json(text: &str) -> io::Result<FingerprintCounts> {
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let doc = JsonValue::parse(text).map_err(|e| bad(format!("invalid JSON ({e})")))?;
    let entries = doc
        .field("fingerprints")
        .and_then(|v| v.as_array())
        .map_err(|e| bad(format!("missing fingerprints array ({e})")))?;
    let mut out = BTreeMap::new();
    for entry in entries {
        let level = entry
            .field("level")
            .and_then(|v| v.as_str())
            .map_err(|e| bad(format!("fingerprint missing level ({e})")))?;
        let pattern = entry
            .field("pattern")
            .and_then(|v| v.as_str())
            .map_err(|e| bad(format!("fingerprint missing pattern ({e})")))?;
        let count = entry.field("count").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        out.insert((level.to_string(), pattern.to_string()), count);
    }
    Ok(out)
}

/// Renders a fingerprint map in the committed-baseline format (sorted,
/// one fingerprint per line — diff-friendly under version control).
pub fn render_baseline_json(fingerprints: &FingerprintCounts) -> String {
    let mut out = String::from("{\n  \"fingerprints\": [\n");
    for (i, ((level, pattern), count)) in fingerprints.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"level\": \"{}\", \"pattern\": \"{}\", \"count\": {count}}}",
            escape(level),
            escape(pattern)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Diffs the WARN/ERROR fingerprints of `current` (a JSONL log) against
/// `baseline` (a committed fingerprint JSON).
///
/// # Errors
///
/// I/O errors reading either file; malformed content surfaces as
/// [`io::ErrorKind::InvalidData`] naming the offending file.
pub fn run_log_gate(current: &Path, baseline: &Path) -> io::Result<LogGateReport> {
    let label =
        |path: &Path, e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
    let jsonl = std::fs::read_to_string(current).map_err(|e| label(current, e))?;
    let (cur, scanned) = extract_fingerprints(&jsonl).map_err(|e| label(current, e))?;
    let base_text = std::fs::read_to_string(baseline).map_err(|e| label(baseline, e))?;
    let base = parse_baseline_json(&base_text).map_err(|e| label(baseline, e))?;
    let fp = |(level, pattern): &(String, String), count: u64| LogFingerprint {
        level: level.clone(),
        pattern: pattern.clone(),
        count,
    };
    let mut report = LogGateReport {
        novel: Vec::new(),
        stale: Vec::new(),
        matched: Vec::new(),
        scanned,
    };
    for (key, &count) in &cur {
        if base.contains_key(key) {
            report.matched.push(fp(key, count));
        } else {
            report.novel.push(fp(key, count));
        }
    }
    for (key, &count) in &base {
        if !cur.contains_key(key) {
            report.stale.push(fp(key, count));
        }
    }
    // Errors outrank warnings within each section; ties sort by pattern
    // (BTreeMap iteration already gave pattern order within a level).
    let rank = |f: &LogFingerprint| (if f.level == "error" { 0 } else { 1 }, f.pattern.clone());
    report.novel.sort_by_key(rank);
    report.stale.sort_by_key(rank);
    Ok(report)
}

/// True when any current pattern is absent from the baseline.
pub fn has_novel_patterns(report: &LogGateReport) -> bool {
    !report.novel.is_empty()
}

/// Renders the gate verdict: novel patterns (failures) first, then
/// stale baseline entries and the matched summary.
pub fn render_log_gate_markdown(report: &LogGateReport) -> String {
    let mut out = String::from("# augur-doctor log gate\n\n");
    let _ = writeln!(
        out,
        "{} record(s) scanned; {} pattern(s) matched the baseline.\n",
        report.scanned,
        report.matched.len()
    );
    if report.novel.is_empty() {
        out.push_str("No novel WARN/ERROR patterns.\n");
    } else {
        out.push_str("| level | novel pattern | count |\n|---|---|---|\n");
        for f in &report.novel {
            let _ = writeln!(out, "| {} | `{}` | {} |", f.level, f.pattern, f.count);
        }
        let _ = writeln!(
            out,
            "\n**NOVEL PATTERNS**: {} WARN/ERROR pattern(s) absent from the baseline",
            report.novel.len()
        );
    }
    if !report.stale.is_empty() {
        out.push_str("\nStale baseline entries (no longer produced — consider removing):\n");
        for f in &report.stale {
            let _ = writeln!(out, "- {} `{}`", f.level, f.pattern);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("augur-doctor-log-gate-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| unreachable!("{e}"));
        path
    }

    fn line(level: &str, msg: &str) -> String {
        format!(
            "{{\"ts_us\":1,\"level\":\"{level}\",\"msg\":\"{msg}\",\
             \"trace_id\":\"0000000000000001\",\"span_id\":\"0000000000000002\",\"fields\":{{}}}}\n"
        )
    }

    #[test]
    fn digit_runs_collapse_to_one_pattern() {
        assert_eq!(
            normalize_pattern("shard 17 stalled 250ms"),
            "shard # stalled #ms"
        );
        assert_eq!(normalize_pattern("no digits"), "no digits");
        let jsonl = format!(
            "{}{}{}",
            line("warn", "shard 3 stalled"),
            line("warn", "shard 12 stalled"),
            line("info", "shard 12 ok")
        );
        let (fps, scanned) = extract_fingerprints(&jsonl).unwrap_or_else(|e| unreachable!("{e}"));
        assert_eq!(scanned, 3, "info records scan but do not fingerprint");
        assert_eq!(
            fps.get(&("warn".to_string(), "shard # stalled".to_string())),
            Some(&2)
        );
        assert_eq!(fps.len(), 1);
    }

    #[test]
    fn novel_error_pattern_fails_and_stale_is_reported() {
        let baseline_fps = BTreeMap::from([
            (
                ("warn".to_string(), "tourism/declutter_drop".to_string()),
                4,
            ),
            (("warn".to_string(), "gone/forever".to_string()), 1),
        ]);
        let baseline = write_tmp("base.json", &render_baseline_json(&baseline_fps));
        let current = write_tmp(
            "cur.jsonl",
            &format!(
                "{}{}",
                line("warn", "tourism/declutter_drop"),
                line("error", "store/corrupt_segment 9")
            ),
        );
        let report = run_log_gate(&current, &baseline).unwrap_or_else(|e| unreachable!("{e}"));
        assert!(has_novel_patterns(&report));
        assert_eq!(report.novel.len(), 1);
        assert_eq!(report.novel[0].level, "error");
        assert_eq!(report.novel[0].pattern, "store/corrupt_segment #");
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].pattern, "gone/forever");
        assert_eq!(report.matched.len(), 1);
        let md = render_log_gate_markdown(&report);
        assert!(md.contains("store/corrupt_segment #"), "{md}");
        assert!(md.contains("NOVEL PATTERNS"), "{md}");
        assert!(md.contains("gone/forever"), "{md}");
    }

    #[test]
    fn clean_log_against_its_own_baseline_passes() {
        let jsonl = format!(
            "{}{}",
            line("warn", "pipeline/late_drop"),
            line("info", "tourism/summary")
        );
        let (fps, _) = extract_fingerprints(&jsonl).unwrap_or_else(|e| unreachable!("{e}"));
        let baseline = write_tmp("self.json", &render_baseline_json(&fps));
        let current = write_tmp("self.jsonl", &jsonl);
        let report = run_log_gate(&current, &baseline).unwrap_or_else(|e| unreachable!("{e}"));
        assert!(!has_novel_patterns(&report));
        assert!(report.stale.is_empty());
        assert!(render_log_gate_markdown(&report).contains("No novel WARN/ERROR patterns."));
    }

    #[test]
    fn baseline_json_round_trips() {
        let fps = BTreeMap::from([
            (("error".to_string(), "x \"quoted\"".to_string()), 7),
            (("warn".to_string(), "y".to_string()), 1),
        ]);
        let text = render_baseline_json(&fps);
        let parsed = parse_baseline_json(&text).unwrap_or_else(|e| unreachable!("{e}"));
        assert_eq!(parsed, fps);
    }

    #[test]
    fn malformed_inputs_are_invalid_data() {
        let bad_log = write_tmp("bad.jsonl", "not json\n");
        let ok_base = write_tmp("ok.json", "{\"fingerprints\": []}\n");
        let err = run_log_gate(&bad_log, &ok_base)
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let ok_log = write_tmp("ok.jsonl", &line("warn", "w"));
        let bad_base = write_tmp("bad.json", "{\"nope\": []}\n");
        let err = run_log_gate(&ok_log, &bad_base)
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A record missing its msg is corrupt, not ignorable.
        let no_msg = write_tmp("nomsg.jsonl", "{\"level\":\"warn\"}\n");
        let err = run_log_gate(&no_msg, &ok_base)
            .err()
            .unwrap_or_else(|| unreachable!());
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
