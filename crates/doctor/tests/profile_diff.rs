//! Acceptance test for regression localization (ISSUE 5): record a
//! modeled three-stage pipeline twice — once healthy, once with a
//! slowdown injected into exactly one stage — fold both runs into
//! `.folded` profiles, and require `augur-doctor --profile-diff` to
//! (a) exit nonzero and (b) rank the slowed stage's frame first.
#![allow(clippy::expect_used)]

use std::path::PathBuf;
use std::process::Command;

use augur_profile::Profile;
use augur_telemetry::{FlightRecorder, ManualTime, TimeSource, TraceContext};

/// Runs a modeled ingest → transform → emit pipeline, with
/// `transform_slowdown_us` of extra modeled work injected into the
/// transform stage, and returns the folded profile.
fn folded_pipeline(transform_slowdown_us: u64) -> String {
    let rec = FlightRecorder::new(1024);
    let clock = ManualTime::shared();
    let run_name = rec.intern("pipeline");
    let stages = [
        ("pipeline/ingest", rec.intern("pipeline/ingest"), 200u64),
        (
            "pipeline/transform",
            rec.intern("pipeline/transform"),
            300 + transform_slowdown_us,
        ),
        ("pipeline/emit", rec.intern("pipeline/emit"), 250u64),
    ];
    let root = TraceContext::root(11, 0xF00D);
    let t0 = clock.now_micros();
    for _cycle in 0..8 {
        for (name, id, work_us) in &stages {
            let start = clock.now_micros();
            clock.advance_micros(*work_us);
            rec.record_span(root.child_named(name), *id, start, *work_us);
        }
    }
    rec.record_span(root, run_name, t0, clock.now_micros() - t0);
    Profile::from_events(&rec.drain()).render_folded()
}

fn write_tmp(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("augur-doctor-profile-diff-accept");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write profile");
    path
}

#[test]
fn profile_diff_ranks_the_slowed_stage_first() {
    let baseline = write_tmp("baseline.folded", &folded_pipeline(0));
    let current = write_tmp("current.folded", &folded_pipeline(400));
    let output = Command::new(env!("CARGO_BIN_EXE_augur-doctor"))
        .args(["--profile-diff"])
        .arg(&baseline)
        .arg(&current)
        .output()
        .expect("doctor runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        output.status.code(),
        Some(1),
        "injected slowdown must fail the gate:\n{stdout}"
    );
    assert!(
        stdout.contains("worst: `pipeline/transform`"),
        "verdict must name the slowed stage:\n{stdout}"
    );
    // The ranked table lists the slowed stage on its first data row.
    let first_row = stdout
        .lines()
        .find(|l| l.starts_with("| `"))
        .expect("ranked table present");
    assert!(
        first_row.contains("`pipeline/transform`"),
        "worst frame first: {first_row}"
    );
    // 8 cycles x 400us injected = +3200us on that stage alone.
    assert!(first_row.contains("+3200"), "{first_row}");
}

#[test]
fn profile_diff_of_identical_profiles_is_clean() {
    let baseline = write_tmp("same-a.folded", &folded_pipeline(0));
    let current = write_tmp("same-b.folded", &folded_pipeline(0));
    let output = Command::new(env!("CARGO_BIN_EXE_augur-doctor"))
        .args(["--profile-diff"])
        .arg(&baseline)
        .arg(&current)
        .output()
        .expect("doctor runs");
    assert_eq!(output.status.code(), Some(0));
    // Determinism end to end: the two same-seed folded renderings are
    // byte-identical files.
    let a = std::fs::read(&baseline).expect("read");
    let b = std::fs::read(&current).expect("read");
    assert_eq!(a, b);
}

#[test]
fn profile_diff_usage_errors_exit_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_augur-doctor"))
        .args(["--profile-diff", "/nonexistent/a.folded"])
        .output()
        .expect("doctor runs");
    assert_eq!(output.status.code(), Some(2), "missing second operand");
    let output = Command::new(env!("CARGO_BIN_EXE_augur-doctor"))
        .args([
            "--profile-diff",
            "/nonexistent/a.folded",
            "/nonexistent/b.folded",
        ])
        .output()
        .expect("doctor runs");
    assert_eq!(output.status.code(), Some(2), "unreadable inputs");
}
