//! Scope/symbol pass: recovers `fn` boundaries, statement structure, and
//! receiver chains from scrubbed, test-stripped source.
//!
//! The cross-file concurrency rules ([`crate::concurrency`]) need more than
//! token matching: a lock acquisition matters only *while its guard lives*,
//! a call site matters only *inside the function that makes it*, and an
//! atomic-ordering finding needs the receiver it loads or stores. This pass
//! recovers exactly that much structure — function spans by brace matching,
//! statement kinds by scanning back to the statement head, guard lifetimes
//! by Rust's temporary-scope rules (a `let`-bound guard lives to the end of
//! the enclosing block; an `if let`/`while let`/`match` scrutinee temporary
//! lives to the end of the control statement; a plain expression temporary
//! dies at its `;`) — without ever needing a full parser. Like the lexer,
//! it over-approximates conservatively: any imprecision widens a guard's
//! assumed lifetime, which can only *add* order edges, never hide one.

/// A function item recovered from scrubbed source: its name and the char
/// span of its body (`{` .. matching `}`).
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The identifier after `fn`.
    pub name: String,
    /// Char index of the `fn` keyword.
    pub sig_pos: usize,
    /// Char index of the body's opening `{`.
    pub body_start: usize,
    /// Char index of the body's closing `}` (inclusive).
    pub body_end: usize,
}

/// A file decomposed into chars plus every `fn` item found in it
/// (including nested functions; methods in `impl` blocks are plain `fn`s).
#[derive(Debug)]
pub struct ScopedFile {
    /// Scrubbed, test-stripped source as chars (newlines preserved).
    pub text: Vec<char>,
    /// Every function item, in declaration order.
    pub fns: Vec<FnScope>,
}

/// How the statement containing a temporary decides the temporary's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// `let g = ...;` — a bound guard lives to the end of the enclosing
    /// block.
    Let,
    /// `if` / `while` / `match` / `for` / `else` — a scrutinee temporary
    /// lives to the end of the control statement's block(s).
    Control,
    /// Anything else — the temporary dies at the statement's `;` (or the
    /// end of the block for a tail expression).
    Expr,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `word` occurs at `pos` bounded by non-identifier chars.
pub fn word_at(text: &[char], pos: usize, word: &str) -> bool {
    let w: Vec<char> = word.chars().collect();
    if pos + w.len() > text.len() || text[pos..pos + w.len()] != w[..] {
        return false;
    }
    let before_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    let after_ok = text
        .get(pos + w.len())
        .is_none_or(|c: &char| !is_ident_char(*c));
    before_ok && after_ok
}

/// All positions where `pat` occurs with a non-identifier char before its
/// first char (path separators `:` and dots are *allowed* before, unlike
/// the stricter boundary used by the token rules).
pub fn find_pattern(text: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    let mut hits = Vec::new();
    if p.is_empty() || text.len() < p.len() {
        return hits;
    }
    for i in 0..=(text.len() - p.len()) {
        if text[i..i + p.len()] == p[..] && (i == 0 || !is_ident_char(text[i - 1])) {
            hits.push(i);
        }
    }
    hits
}

/// All positions where `pat` occurs, with a word boundary required only
/// when the pattern *starts* with an identifier char. Method patterns like
/// `.lock()` match anywhere (the receiver chain precedes the dot).
pub fn find_pattern_any(text: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    let mut hits = Vec::new();
    if p.is_empty() || text.len() < p.len() {
        return hits;
    }
    let need_boundary = is_ident_char(p[0]);
    for i in 0..=(text.len() - p.len()) {
        if text[i..i + p.len()] == p[..]
            && (!need_boundary || i == 0 || !is_ident_char(text[i - 1]))
        {
            hits.push(i);
        }
    }
    hits
}

/// 1-based line number of a char position.
pub fn line_of(text: &[char], pos: usize) -> usize {
    1 + text
        .iter()
        .take(pos.min(text.len()))
        .filter(|&&c| c == '\n')
        .count()
}

/// Index of the `}` matching the `{` at `open` (or the last char if the
/// source is unbalanced — scrubbing guarantees balance for valid Rust).
pub fn match_brace(text: &[char], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len().saturating_sub(1)
}

/// Recovers every `fn` item in scrubbed, test-stripped source.
pub fn scope_file(lib_code: &str) -> ScopedFile {
    let text: Vec<char> = lib_code.chars().collect();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < text.len() {
        if !word_at(&text, i, "fn") {
            i += 1;
            continue;
        }
        let sig_pos = i;
        let mut j = i + 2;
        while j < text.len() && text[j].is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < text.len() && is_ident_char(text[j]) {
            j += 1;
        }
        if j == name_start {
            // `fn(` — a function-pointer type, not an item.
            i += 2;
            continue;
        }
        let name: String = text[name_start..j].iter().collect();
        // Scan the signature for the body `{` (or `;` for a bodyless trait
        // method), tracking paren/bracket depth so argument lists and
        // where-clauses cannot fool the scan.
        let mut k = j;
        let mut depth = 0isize;
        let mut body = None;
        while k < text.len() {
            match text[k] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => {
                    body = Some(k);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(body_start) = body {
            let body_end = match_brace(&text, body_start);
            fns.push(FnScope {
                name,
                sig_pos,
                body_start,
                body_end,
            });
            // Descend into the body so nested `fn` items are found too.
            i = body_start + 1;
        } else {
            i = k + 1;
        }
    }
    ScopedFile { text, fns }
}

impl ScopedFile {
    /// The innermost function containing `pos`, if any.
    pub fn enclosing_fn(&self, pos: usize) -> Option<&FnScope> {
        self.fns
            .iter()
            .filter(|f| f.sig_pos <= pos && pos <= f.body_end)
            .max_by_key(|f| f.sig_pos)
    }
}

/// Classifies the statement containing `pos` by scanning back to the
/// statement head (the char after the previous `;`, `{`, or `}`).
pub fn statement_kind(text: &[char], pos: usize, lower_bound: usize) -> StmtKind {
    let mut i = pos;
    while i > lower_bound {
        i -= 1;
        if matches!(text[i], ';' | '{' | '}') {
            i += 1;
            break;
        }
    }
    while i < pos && text[i].is_whitespace() {
        i += 1;
    }
    for kw in ["if", "while", "match", "for", "else"] {
        if word_at(text, i, kw) {
            return StmtKind::Control;
        }
    }
    if word_at(text, i, "let") {
        return StmtKind::Let;
    }
    StmtKind::Expr
}

/// How long a temporary created at `pos` is (conservatively) live, by the
/// statement kind: returns the char index past which it is surely dead.
/// Bounded by `body_end` (the enclosing function's closing brace).
pub fn held_until(text: &[char], pos: usize, body_end: usize, kind: StmtKind) -> usize {
    match kind {
        StmtKind::Let => {
            // To the end of the enclosing block: the first `}` that closes
            // a brace we did not see opened.
            let mut depth = 0isize;
            let mut i = pos;
            while i <= body_end && i < text.len() {
                match text[i] {
                    '{' => depth += 1,
                    '}' => {
                        if depth == 0 {
                            return i;
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
                i += 1;
            }
            body_end
        }
        StmtKind::Control => {
            // To the end of the control statement: the matching `}` of its
            // first block, continuing through `else` chains.
            let mut i = pos;
            loop {
                while i <= body_end && i < text.len() && text[i] != '{' {
                    if text[i] == ';' {
                        return i; // bodyless control (e.g. `while x();`)
                    }
                    i += 1;
                }
                if i > body_end || i >= text.len() {
                    return body_end;
                }
                let close = match_brace(text, i);
                // Skip whitespace after the block; an `else` continues the
                // statement (and may hold the scrutinee temporary).
                let mut j = close + 1;
                while j <= body_end && j < text.len() && text[j].is_whitespace() {
                    j += 1;
                }
                if j <= body_end && word_at(text, j, "else") {
                    i = j + 4;
                    continue;
                }
                return close.min(body_end);
            }
        }
        StmtKind::Expr => {
            // To the statement's `;` at the current brace depth, or the
            // end of the enclosing block for a tail expression.
            let mut depth = 0isize;
            let mut i = pos;
            while i <= body_end && i < text.len() {
                match text[i] {
                    '{' => depth += 1,
                    '}' => {
                        if depth == 0 {
                            return i;
                        }
                        depth -= 1;
                    }
                    ';' if depth == 0 => return i,
                    _ => {}
                }
                i += 1;
            }
            body_end
        }
    }
}

/// The last receiver-chain component before position `end` (exclusive),
/// e.g. `partitions` for `t.partitions[pid as usize]` with `end` at the
/// trailing `.`. Skips `?`, whitespace, and bracket/paren groups.
pub fn receiver_component(text: &[char], end: usize) -> Option<String> {
    let mut i = end;
    // Skip trailing `?`, whitespace, and one bracket/paren group.
    loop {
        while i > 0 && (text[i - 1].is_whitespace() || text[i - 1] == '?') {
            i -= 1;
        }
        if i > 0 && (text[i - 1] == ']' || text[i - 1] == ')') {
            let close = text[i - 1];
            let open = if close == ']' { '[' } else { '(' };
            let mut depth = 0isize;
            while i > 0 {
                i -= 1;
                if text[i] == close {
                    depth += 1;
                } else if text[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        break;
    }
    let ident_end = i;
    while i > 0 && is_ident_char(text[i - 1]) {
        i -= 1;
    }
    if i == ident_end {
        return None;
    }
    Some(text[i..ident_end].iter().collect())
}

/// Every call site in `[start, end]`: the char index of the `(` plus the
/// callee identifier (handles `name(`, `path::name(`, `.method(`, and
/// turbofish `name::<T>(`). Keywords and macro invocations are excluded.
pub fn call_sites(text: &[char], start: usize, end: usize) -> Vec<(usize, String)> {
    const KEYWORDS: [&str; 12] = [
        "if", "while", "for", "match", "return", "fn", "loop", "move", "in", "as", "else", "impl",
    ];
    let mut out = Vec::new();
    let mut i = start;
    while i <= end && i < text.len() {
        if text[i] != '(' {
            i += 1;
            continue;
        }
        let mut j = i;
        while j > 0 && text[j - 1].is_whitespace() {
            j -= 1;
        }
        // Turbofish: `name::<...>(` — hop back over the generic args.
        if j > 0 && text[j - 1] == '>' {
            let mut depth = 0isize;
            let mut k = j;
            while k > 0 {
                k -= 1;
                if text[k] == '>' {
                    depth += 1;
                } else if text[k] == '<' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if k >= 2 && text[k - 1] == ':' && text[k - 2] == ':' {
                j = k - 2;
            } else {
                i += 1;
                continue;
            }
        }
        let ident_end = j;
        while j > 0 && is_ident_char(text[j - 1]) {
            j -= 1;
        }
        if j == ident_end {
            i += 1;
            continue;
        }
        let name: String = text[j..ident_end].iter().collect();
        if KEYWORDS.contains(&name.as_str()) || name.chars().next().is_some_and(char::is_numeric) {
            i += 1;
            continue;
        }
        out.push((i, name));
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn finds_fn_items_and_bodies() {
        let src = "pub fn outer(a: u32) -> u32 {\n  fn inner() {}\n  a\n}\nfn plain() {}";
        let sf = scope_file(src);
        let names: Vec<&str> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "plain"]);
        let outer = &sf.fns[0];
        assert_eq!(sf.text[outer.body_start], '{');
        assert_eq!(sf.text[outer.body_end], '}');
        // Innermost attribution: a position inside `inner` maps to it.
        let inner = &sf.fns[1];
        let got = sf.enclosing_fn(inner.body_start + 1).map(|f| &f.name);
        assert_eq!(got.map(String::as_str), Some("inner"));
    }

    #[test]
    fn skips_fn_pointer_types_and_trait_sigs() {
        let src = "type F = fn(u32) -> u32;\ntrait T { fn m(&self); }\nfn real() {}";
        let sf = scope_file(src);
        let names: Vec<&str> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn statement_kinds() {
        let src = "fn f() { let g = a.lock(); if b.lock().x { } c.lock(); }";
        let t = chars(src);
        let first = src.find("a.lock").map(|i| i + 1).unwrap_or(0);
        let second = src.find("b.lock").map(|i| i + 1).unwrap_or(0);
        let third = src.find("c.lock").map(|i| i + 1).unwrap_or(0);
        assert_eq!(statement_kind(&t, first, 0), StmtKind::Let);
        assert_eq!(statement_kind(&t, second, 0), StmtKind::Control);
        assert_eq!(statement_kind(&t, third, 0), StmtKind::Expr);
    }

    #[test]
    fn held_ranges_respect_temporaries() {
        // A statement-temporary guard dies at its `;` — the second lock is
        // NOT nested under it.
        let src = "fn f(s: &S) { *s.a.lock() = 1; s.b.lock(); }";
        let t = chars(src);
        let a = src.find("a.lock").unwrap_or(0) + 1;
        let b = src.find("b.lock").unwrap_or(0) + 1;
        let end = held_until(&t, a, t.len() - 1, StmtKind::Expr);
        assert!(end < b, "expr temp must end before the second acquisition");

        // A let-bound guard lives to the end of the block.
        let src2 = "fn f(s: &S) { let g = s.a.lock(); s.b.lock(); }";
        let t2 = chars(src2);
        let a2 = src2.find("a.lock").unwrap_or(0) + 1;
        let b2 = src2.find("b.lock").unwrap_or(0) + 1;
        let end2 = held_until(&t2, a2, t2.len() - 1, StmtKind::Let);
        assert!(end2 > b2, "let guard must cover the second acquisition");

        // An if-let scrutinee temporary dies with the if statement.
        let src3 = "fn f(s: &S) { if let Some(x) = s.a.lock().get() { use_it(x); } s.b.lock(); }";
        let t3 = chars(src3);
        let a3 = src3.find("a.lock").unwrap_or(0) + 1;
        let b3 = src3.find("b.lock").unwrap_or(0) + 1;
        let end3 = held_until(&t3, a3, t3.len() - 1, StmtKind::Control);
        assert!(end3 < b3, "if-let temp must end before the trailing lock");
        let inside = src3.find("use_it").unwrap_or(0);
        assert!(end3 > inside, "if-let temp must cover the if body");
    }

    #[test]
    fn receiver_components() {
        let t = chars("t.partitions[pid as usize].write()");
        let dot = 26; // the `.` before write
        assert_eq!(t[dot], '.');
        assert_eq!(receiver_component(&t, dot).as_deref(), Some("partitions"));

        let t2 = chars("self.inner.read()");
        let dot2 = 10;
        assert_eq!(t2[dot2], '.');
        assert_eq!(receiver_component(&t2, dot2).as_deref(), Some("inner"));

        let t3 = chars("shard.read()");
        assert_eq!(receiver_component(&t3, 5).as_deref(), Some("shard"));
    }

    #[test]
    fn call_site_extraction() {
        let t = chars("fn f() { helper(1); path::other(); x.method(); chan::bounded::<u32>(CAP); if cond { } m!(arg) }");
        let calls: Vec<String> = call_sites(&t, 0, t.len() - 1)
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&"other".to_string()));
        assert!(calls.contains(&"method".to_string()));
        assert!(calls.contains(&"bounded".to_string()), "{calls:?}");
        assert!(!calls.contains(&"if".to_string()));
        assert!(!calls.contains(&"m".to_string()), "macros are not calls");
    }
}
