//! A small hand-rolled Rust lexer sufficient for invariant scanning.
//!
//! The scanner never needs a full parse: every rule operates on *scrubbed*
//! source, where the contents of comments and string/char literals are
//! replaced with spaces (newlines preserved, so line numbers survive). Token
//! patterns found in scrubbed text are therefore guaranteed to be real code,
//! not documentation or literal data. A second pass blanks items guarded by
//! `#[cfg(test)]`, so test-only code is exempt from library invariants.

/// Replaces comment bodies and string/char literal contents with spaces.
///
/// Handles line comments, nested block comments, string literals with escape
/// sequences, raw strings with arbitrary `#` fences (including byte-string
/// `b`/`br` prefixes), char literals, and distinguishes lifetimes (`'a`) from
/// char literals (`'a'`). Newlines inside comments and literals are preserved
/// so diagnostics can report accurate line numbers.
pub fn scrub(src: &str) -> String {
    let bytes: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(bytes.len());
    let mut i = 0usize;

    // Pushes a blank for `c`: newlines survive, everything else is a space.
    fn blank(out: &mut Vec<char>, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    fn is_ident(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        let prev_ident = i > 0 && is_ident(bytes[i - 1]);

        // Line comment.
        if c == '/' && next == Some('/') {
            while i < bytes.len() && bytes[i] != '\n' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }

        // Block comment (nested).
        if c == '/' && next == Some('*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }

        // Raw (byte) string: r"...", r#"..."#, br##"..."## — only when the
        // prefix is not the tail of a longer identifier.
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if bytes[j] == 'b' && bytes.get(j + 1) == Some(&'r') {
                j += 2;
            } else if bytes[j] == 'r' {
                j += 1;
            } else if bytes[j] == 'b' && bytes.get(j + 1) == Some(&'"') {
                // b"..." plain byte string: keep the prefix, scrub as string.
                out.push('b');
                i += 1;
                scrub_plain_string(&bytes, &mut i, &mut out);
                continue;
            } else {
                out.push(c);
                i += 1;
                continue;
            }
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&'"') {
                // Emit prefix tokens as-is, blank the body.
                for &p in &bytes[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                // Scan for closing quote followed by `hashes` hashes.
                while i < bytes.len() {
                    if bytes[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            out.push('"');
                            out.extend(std::iter::repeat_n('#', hashes));
                            i += 1 + hashes;
                            break;
                        }
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                continue;
            }
            // Not actually a raw string (e.g. the identifier `r` or `b`).
            out.push(c);
            i += 1;
            continue;
        }

        // Plain string literal.
        if c == '"' {
            scrub_plain_string(&bytes, &mut i, &mut out);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char literal: '\n', '\u{...}', '\\' ...
                out.push('\'');
                i += 1;
                while i < bytes.len() && bytes[i] != '\'' {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
                if i < bytes.len() {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if let Some(n) = next {
                if bytes.get(i + 2) == Some(&'\'') && n != '\'' {
                    // Simple one-char literal 'x'.
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    i += 3;
                    continue;
                }
            }
            // Lifetime or label: keep as-is.
            out.push('\'');
            i += 1;
            continue;
        }

        out.push(c);
        i += 1;
    }

    out.into_iter().collect()
}

/// Scrubs a `"..."` literal starting at `bytes[*i] == '"'`.
fn scrub_plain_string(bytes: &[char], i: &mut usize, out: &mut Vec<char>) {
    out.push('"');
    *i += 1;
    while *i < bytes.len() {
        match bytes[*i] {
            '\\' => {
                // Blank the escape and whatever it escapes.
                out.push(' ');
                *i += 1;
                if *i < bytes.len() {
                    out.push(if bytes[*i] == '\n' { '\n' } else { ' ' });
                    *i += 1;
                }
            }
            '"' => {
                out.push('"');
                *i += 1;
                return;
            }
            c => {
                out.push(if c == '\n' { '\n' } else { ' ' });
                *i += 1;
            }
        }
    }
}

/// Blanks every item guarded by a `#[cfg(test)]`-style attribute.
///
/// Finds attributes of the form `#[cfg(...)]` whose argument list contains the
/// standalone token `test`, then blanks from the attribute through the end of
/// the item it guards (the matching `}` of the first brace block, or the first
/// `;` for bodyless items). Must run on scrubbed text.
pub fn strip_test_items(scrubbed: &str) -> String {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut masked: Vec<char> = chars.clone();
    let mut i = 0usize;

    while i < chars.len() {
        if chars[i] == '#' && matches!(chars.get(i + 1), Some('[')) {
            if let Some(close) = find_attr_end(&chars, i + 1) {
                let attr: String = chars[i..=close].iter().collect();
                if is_test_cfg(&attr) {
                    let end = find_item_end(&chars, close + 1);
                    for (k, slot) in masked.iter_mut().enumerate().take(end + 1).skip(i) {
                        if chars[k] != '\n' {
                            *slot = ' ';
                        }
                    }
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }

    masked.into_iter().collect()
}

/// Returns the index of the `]` closing an attribute whose `[` is at `open`.
fn find_attr_end(chars: &[char], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (k, &c) in chars.iter().enumerate().skip(open) {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether an attribute string is a cfg gate mentioning the `test` predicate.
fn is_test_cfg(attr: &str) -> bool {
    let squashed: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    if !squashed.starts_with("#[cfg(") && !squashed.starts_with("#[cfg_attr(") {
        return false;
    }
    // Token-level containment: `test` bounded by non-identifier chars, so
    // `feature="testing"` (already scrubbed to spaces anyway) or `test_util`
    // cfg names do not match.
    let b: Vec<char> = squashed.chars().collect();
    for w in 0..b.len().saturating_sub(3) {
        if b[w..w + 4] == ['t', 'e', 's', 't'] {
            let before_ok = w == 0 || !(b[w - 1].is_alphanumeric() || b[w - 1] == '_');
            let after_ok = match b.get(w + 4) {
                Some(c) => !(c.is_alphanumeric() || *c == '_'),
                None => true,
            };
            if before_ok && after_ok {
                return true;
            }
        }
    }
    false
}

/// Returns the index of the last char of the item starting after an attribute.
///
/// Scans forward to the first `{` or `;` at nesting depth zero (skipping
/// further attributes), then — for brace blocks — to the matching `}`.
fn find_item_end(chars: &[char], start: usize) -> usize {
    let mut i = start;
    // Skip any further attributes on the same item.
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i < chars.len() && chars[i] == '#' && matches!(chars.get(i + 1), Some('[')) {
            match find_attr_end(chars, i + 1) {
                Some(close) => i = close + 1,
                None => return chars.len().saturating_sub(1),
            }
        } else {
            break;
        }
    }
    // Find the first `{` or terminating `;`, tracking parens for fn args with
    // default-expression-free signatures (braces cannot appear before the body
    // outside of a const-generic default, which the workspace does not use).
    while i < chars.len() {
        match chars[i] {
            ';' => return i,
            '{' => {
                let mut depth = 0isize;
                while i < chars.len() {
                    match chars[i] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return chars.len().saturating_sub(1);
            }
            _ => i += 1,
        }
    }
    chars.len().saturating_sub(1)
}

/// Line number (1-based) of a byte-ish offset into `text` (char index).
pub fn line_of(text: &str, char_idx: usize) -> usize {
    1 + text.chars().take(char_idx).filter(|&c| c == '\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_strings_and_comments() {
        let src = r#"let x = "a.unwrap()"; // .expect(
/* panic!("no") */ let y = 1;"#;
        let s = scrub(src);
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert!(!s.contains("panic!"));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let src =
            r##"let s = r#"inner.unwrap() "quoted""#; let c = '"'; let l: &'static str = "x";"##;
        let s = scrub(src);
        assert!(!s.contains("inner.unwrap()"));
        assert!(s.contains("&'static str"));
    }

    #[test]
    fn scrub_preserves_line_numbers() {
        let src = "line1\n\"multi\nline\nstring\"\nlast";
        let s = scrub(src);
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn strip_removes_cfg_test_items() {
        let src = "fn keep() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\nfn also_keep() {}";
        let masked = strip_test_items(&scrub(src));
        assert!(masked.contains("keep"));
        assert!(masked.contains("also_keep"));
        assert!(!masked.contains("mod tests"));
        // Exactly the library-path unwrap survives.
        assert_eq!(masked.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn strip_ignores_non_test_cfgs() {
        let src = "#[cfg(feature = \"extra\")]\nfn f() {}\n#[cfg(test)] fn g() {}";
        let masked = strip_test_items(&scrub(src));
        assert!(masked.contains("fn f"));
        assert!(!masked.contains("fn g"));
    }
}
