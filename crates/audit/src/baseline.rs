//! Baseline (suppression) file and `Ordering::Relaxed` allowlist.
//!
//! New rules land strict: pre-existing findings are not grandfathered
//! silently but recorded in a committed `audit.baseline.json`, each entry
//! naming the file, the rule, the exact number of expected findings, and
//! the burn-down rationale. The audit subtracts baseline entries from the
//! deny set; an entry that matches *fewer* findings than its count is
//! **stale** and fails the run — fixing a finding forces the suppression
//! to be pruned in the same change, so the baseline only ever shrinks.
//!
//! The `audit.allow` file is the reviewed-exception list for the
//! `atomics-ordering` rule: one line per `<file> <symbol> <reason...>`,
//! e.g. a seqlock sequence cell whose `Relaxed` ticket read is made
//! correct by later acquire/release fences. The reason is mandatory: an
//! allowlist line *is* the review record.
//!
//! The baseline is JSON (so CI and editors can manipulate it) parsed by a
//! minimal hand-rolled reader — the audit crate stays dependency-free.

use std::fs;
use std::path::Path;

use crate::rules::{Severity, Violation};

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects/arrays/strings/numbers/bools/null).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `{...}` with insertion-ordered keys.
    Object(Vec<(String, Json)>),
    /// `[...]`.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// A number (f64 is enough for counts and versions).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document, returning a readable error on malformed input.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let t: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let v = parse_value(&t, &mut i)?;
    skip_ws(&t, &mut i);
    if i != t.len() {
        return Err(format!("trailing content at offset {i}"));
    }
    Ok(v)
}

fn skip_ws(t: &[char], i: &mut usize) {
    while t.get(*i).is_some_and(|c| c.is_whitespace()) {
        *i += 1;
    }
}

fn parse_value(t: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(t, i);
    match t.get(*i) {
        Some('{') => parse_object(t, i),
        Some('[') => parse_array(t, i),
        Some('"') => parse_string(t, i).map(Json::Str),
        Some('t') => parse_lit(t, i, "true", Json::Bool(true)),
        Some('f') => parse_lit(t, i, "false", Json::Bool(false)),
        Some('n') => parse_lit(t, i, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(t, i),
        Some(c) => Err(format!("unexpected `{c}` at offset {i}")),
        None => Err(String::from("unexpected end of input")),
    }
}

fn parse_lit(t: &[char], i: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    let l: Vec<char> = lit.chars().collect();
    if t.len() >= *i + l.len() && t[*i..*i + l.len()] == l[..] {
        *i += l.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at offset {i}"))
    }
}

fn parse_number(t: &[char], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if t.get(*i) == Some(&'-') {
        *i += 1;
    }
    while t
        .get(*i)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        *i += 1;
    }
    let s: String = t.get(start..*i).unwrap_or(&[]).iter().collect();
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at offset {start}"))
}

fn parse_string(t: &[char], i: &mut usize) -> Result<String, String> {
    if t.get(*i) != Some(&'"') {
        return Err(format!("expected string at offset {i}"));
    }
    *i += 1;
    let mut s = String::new();
    loop {
        match t.get(*i) {
            None => return Err(String::from("unterminated string")),
            Some('"') => {
                *i += 1;
                return Ok(s);
            }
            Some('\\') => {
                *i += 1;
                match t.get(*i) {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let hex: String = t.get(*i + 1..*i + 5).unwrap_or(&[]).iter().collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape at offset {i}"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at offset {i}")),
                }
                *i += 1;
            }
            Some(c) => {
                s.push(*c);
                *i += 1;
            }
        }
    }
}

fn parse_array(t: &[char], i: &mut usize) -> Result<Json, String> {
    *i += 1; // '['
    let mut items = Vec::new();
    skip_ws(t, i);
    if t.get(*i) == Some(&']') {
        *i += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(t, i)?);
        skip_ws(t, i);
        match t.get(*i) {
            Some(',') => *i += 1,
            Some(']') => {
                *i += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {i}")),
        }
    }
}

fn parse_object(t: &[char], i: &mut usize) -> Result<Json, String> {
    *i += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(t, i);
    if t.get(*i) == Some(&'}') {
        *i += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(t, i);
        let key = parse_string(t, i)?;
        skip_ws(t, i);
        if t.get(*i) != Some(&':') {
            return Err(format!("expected `:` at offset {i}"));
        }
        *i += 1;
        let value = parse_value(t, i)?;
        pairs.push((key, value));
        skip_ws(t, i);
        match t.get(*i) {
            Some(',') => *i += 1,
            Some('}') => {
                *i += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {i}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline.
// ---------------------------------------------------------------------------

/// One suppression: up to `count` deny findings of `rule` in `file`.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Workspace-relative path the suppression applies to.
    pub file: String,
    /// Rule identifier, e.g. `no-blocking-hot-path`.
    pub rule: String,
    /// Exact number of findings this entry must match (stale otherwise).
    pub count: usize,
    /// Burn-down rationale (required — the entry is the review record).
    pub reason: String,
}

/// A committed suppression set ([`BaselineEntry`] list).
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// The empty baseline (suppresses nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses `audit.baseline.json` content.
    pub fn parse(input: &str) -> Result<Self, String> {
        let doc = parse_json(input)?;
        let entries_json = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| String::from("baseline: missing `entries` array"))?;
        let mut entries = Vec::new();
        for (n, e) in entries_json.iter().enumerate() {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {n}: missing string `{k}`"))
            };
            let count = e.get("count").and_then(Json::as_num).unwrap_or(1.0);
            if count < 1.0 || count.fract() != 0.0 {
                return Err(format!(
                    "baseline entry {n}: `count` must be a positive integer"
                ));
            }
            entries.push(BaselineEntry {
                file: field("file")?,
                rule: field("rule")?,
                count: count as usize,
                reason: field("reason")?,
            });
        }
        Ok(Self { entries })
    }

    /// Loads and parses a baseline file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Splits findings into kept and suppressed, and reports stale entries.
    ///
    /// Deny findings are matched against entries in order; an entry whose
    /// matched total differs from its declared `count` is stale (the
    /// mismatch direction is named in the message). Advice findings are
    /// never suppressed.
    pub fn apply(
        &self,
        violations: Vec<Violation>,
    ) -> (Vec<Violation>, Vec<Violation>, Vec<String>) {
        let mut matched = vec![0usize; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for v in violations {
            if v.severity != Severity::Deny {
                kept.push(v);
                continue;
            }
            let slot = self.entries.iter().enumerate().find(|(n, e)| {
                e.file == v.file && e.rule == v.rule && matched.get(*n).copied() < Some(e.count)
            });
            match slot {
                Some((n, _)) => {
                    if let Some(m) = matched.get_mut(n) {
                        *m += 1;
                    }
                    suppressed.push(v);
                }
                None => kept.push(v),
            }
        }
        let mut stale = Vec::new();
        for (n, e) in self.entries.iter().enumerate() {
            let got = matched.get(n).copied().unwrap_or(0);
            if got < e.count {
                stale.push(format!(
                    "{} {}: baseline expects {} finding(s), matched {} — prune the entry \
                     (the finding was fixed)",
                    e.file, e.rule, e.count, got
                ));
            }
        }
        (kept, suppressed, stale)
    }
}

// ---------------------------------------------------------------------------
// Allowlist.
// ---------------------------------------------------------------------------

/// One reviewed `Ordering::Relaxed` exception.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path.
    pub file: String,
    /// Atomic receiver symbol (`*` matches any symbol in the file).
    pub symbol: String,
    /// Review rationale (mandatory).
    pub reason: String,
}

/// The parsed `audit.allow` file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// The empty allowlist (permits nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses `audit.allow` content: one `<file> <symbol> <reason...>` per
    /// line; `#` comments and blank lines are skipped.
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.splitn(3, char::is_whitespace);
            let file = parts.next().unwrap_or("").to_string();
            let symbol = parts.next().unwrap_or("").to_string();
            let reason = parts.next().unwrap_or("").trim().to_string();
            if file.is_empty() || symbol.is_empty() || reason.is_empty() {
                return Err(format!(
                    "audit.allow line {}: expected `<file> <symbol> <reason...>` \
                     (the reason is the review record and is mandatory)",
                    lineno + 1
                ));
            }
            entries.push(AllowEntry {
                file,
                symbol,
                reason,
            });
        }
        Ok(Self { entries })
    }

    /// Loads and parses an allowlist file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Whether a `Relaxed` use of `symbol` in `file` is reviewed-allowed.
    pub fn permits(&self, file: &str, symbol: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.file == file && (e.symbol == "*" || e.symbol == symbol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vio(file: &str, rule: &'static str) -> Violation {
        Violation {
            file: file.to_string(),
            line: 1,
            rule,
            severity: Severity::Deny,
            message: String::from("m"),
        }
    }

    #[test]
    fn json_round_trip_basics() {
        let doc = parse_json(
            "{\"version\": 1, \"entries\": [{\"file\": \"a.rs\", \"count\": 2, \
             \"ok\": true, \"note\": null, \"msg\": \"a \\\"q\\\" \\u0041\"}]}",
        );
        let doc = match doc {
            Ok(d) => d,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(doc.get("version").and_then(Json::as_num), Some(1.0));
        let entry = doc
            .get("entries")
            .and_then(Json::as_array)
            .and_then(<[Json]>::first);
        let msg = entry.and_then(|e| e.get("msg")).and_then(Json::as_str);
        assert_eq!(msg, Some("a \"q\" A"));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn baseline_suppresses_exact_counts() {
        let b = Baseline::parse(
            "{\"entries\": [{\"file\": \"f.rs\", \"rule\": \"no-unwrap\", \
             \"count\": 2, \"reason\": \"burn down\"}]}",
        )
        .unwrap_or_default();
        assert_eq!(b.entries.len(), 1);
        let (kept, suppressed, stale) =
            b.apply(vec![vio("f.rs", "no-unwrap"), vio("f.rs", "no-unwrap")]);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 2);
        assert!(stale.is_empty());
        // A third finding of the same shape is NOT suppressed.
        let (kept, suppressed, _) = b.apply(vec![
            vio("f.rs", "no-unwrap"),
            vio("f.rs", "no-unwrap"),
            vio("f.rs", "no-unwrap"),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn baseline_reports_stale_entries() {
        let b = Baseline::parse(
            "{\"entries\": [{\"file\": \"gone.rs\", \"rule\": \"no-panic\", \
             \"reason\": \"was fixed\"}]}",
        )
        .unwrap_or_default();
        let (kept, suppressed, stale) = b.apply(vec![vio("other.rs", "no-panic")]);
        assert_eq!(kept.len(), 1);
        assert!(suppressed.is_empty());
        assert_eq!(stale.len(), 1);
        assert!(stale.first().is_some_and(|s| s.contains("gone.rs")));
    }

    #[test]
    fn baseline_rejects_malformed_input() {
        assert!(Baseline::parse("{}").is_err(), "missing entries");
        assert!(
            Baseline::parse("{\"entries\": [{\"file\": \"f.rs\"}]}").is_err(),
            "missing rule/reason"
        );
        assert!(
            Baseline::parse(
                "{\"entries\": [{\"file\": \"f\", \"rule\": \"r\", \
                 \"reason\": \"x\", \"count\": 0}]}"
            )
            .is_err(),
            "zero count"
        );
    }

    #[test]
    fn allowlist_matching() {
        let a = Allowlist::parse(
            "# reviewed exceptions\n\
             crates/t/src/f.rs write ticket counter, published by Release stores\n\
             crates/t/src/g.rs * whole file reviewed\n",
        )
        .unwrap_or_default();
        assert!(a.permits("crates/t/src/f.rs", "write"));
        assert!(!a.permits("crates/t/src/f.rs", "other"));
        assert!(a.permits("crates/t/src/g.rs", "anything"));
        assert!(!a.permits("crates/t/src/h.rs", "write"));
        assert!(Allowlist::parse("f.rs sym\n").is_err(), "reason required");
    }
}
