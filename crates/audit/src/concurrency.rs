//! Cross-file concurrency & determinism rules over the scope pass.
//!
//! The ROADMAP's keystone refactor (the parallel sharded dataflow engine)
//! turns the paper's availability story (§4: degrade gracefully, never
//! stall mid-frame) into *concurrency* invariants. This module enforces
//! five of them mechanically, on top of [`crate::scope`]:
//!
//! 1. **`lock-order-cycle`** — every `parking_lot` acquisition is recorded
//!    with its guard lifetime; nested acquisitions (and, one level deep,
//!    acquisitions made by functions *called* while a guard is held) become
//!    edges in a workspace-wide lock-order graph. Any cycle is a potential
//!    deadlock and is reported on every edge that closes it.
//! 2. **`no-blocking-hot-path`** — blocking operations (`recv()`, blocking
//!    `send()`, `thread::sleep`, file I/O) are denied in per-record crates
//!    ([`crate::scan::PER_RECORD_CRATES`]), directly and one call-index hop
//!    away: per-record code calling a helper that blocks is flagged at the
//!    call site.
//! 3. **`bounded-channels-only`** — unbounded channels are denied
//!    workspace-wide (backpressure is load-bearing for ROADMAP item 1),
//!    and `bounded()` call sites must carry a *named* capacity, not a bare
//!    numeric literal.
//! 4. **`spawn-confined`** — `thread::spawn` / `thread::Builder` are
//!    allowed only in the sanctioned worker-pool modules
//!    ([`crate::scan::SPAWN_EXEMPT`]), bins, and tests, so the sharded
//!    engine keeps a single auditable spawn surface.
//! 5. **`atomics-ordering`** — `Ordering::Relaxed` is permitted only in
//!    the sanctioned counter modules ([`crate::scan::ATOMICS_EXEMPT`]) or
//!    under a reviewed entry in the `audit.allow` file; flag and seqlock
//!    sites must use acquire/release.
//! 6. **`spawn-lane-registered`** — inside the sanctioned worker-pool
//!    modules ([`crate::scan::LANE_REQUIRED`]), every `thread::spawn`
//!    must sit in a function that references a `Lane*` symbol
//!    (`Lanes::register`, `LaneIo`, ...): a worker thread without a
//!    lane is invisible to the per-lane flight rings and corrupts the
//!    measured parallel-efficiency denominator.

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Allowlist;
use crate::lexer;
use crate::rules::{FilePolicy, Severity, Violation};
use crate::scope;

/// A `parking_lot` guard acquisition with its conservative lifetime.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Normalized lock identity within the file's crate (the receiver's
    /// last component, e.g. `partitions` for `t.partitions[i].write()`).
    pub ident: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Char position of the acquisition (the `.` of `.lock()`).
    pub pos: usize,
    /// Char position past which the guard is surely dead.
    pub held_until: usize,
}

/// A `thread::spawn` / `thread::Builder` site with its lane evidence.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 1-based line of the spawn.
    pub line: usize,
    /// Whether the enclosing function (or the file, for module-level
    /// sites) references a `Lane*` symbol — the textual evidence that
    /// the spawned thread is registered as a worker lane.
    pub lane_registered: bool,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee's last path segment.
    pub callee: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Char position of the call's `(`.
    pub pos: usize,
}

/// One function's concurrency-relevant sites.
#[derive(Debug, Default, Clone)]
pub struct FnConc {
    /// Function name (empty for sites outside any `fn`).
    pub name: String,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockSite>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Direct blocking operations: `(pattern, line)`.
    pub blocking: Vec<(String, usize)>,
}

/// Per-file analysis input for the workspace pass. Built by [`collect`];
/// consumed by [`check_workspace`].
#[derive(Debug)]
pub struct FileConc {
    /// Workspace-relative path.
    pub rel: String,
    /// Owning crate name (empty for the facade's `src/`).
    pub crate_name: String,
    /// Functions with their sites.
    pub fns: Vec<FnConc>,
    /// `Ordering::Relaxed` sites: `(receiver symbol, line)`.
    pub relaxed: Vec<(String, usize)>,
    /// `thread::spawn` / `thread::Builder` sites.
    pub spawns: Vec<SpawnSite>,
    /// Unbounded-channel construction lines.
    pub unbounded: Vec<usize>,
    /// `bounded(...)` call lines whose capacity is a bare numeric literal.
    pub literal_bounded: Vec<usize>,
    /// Policy bits carried from [`crate::scan::policy_for`].
    pub policy: FilePolicy,
}

/// Blocking primitives denied on the per-record path. `try_send` /
/// `try_recv` are fine (non-blocking); `.send(` matches only the blocking
/// channel form because the `.` excludes `try_send(`.
const BLOCKING: [&str; 8] = [
    "thread::sleep",
    ".recv()",
    ".recv_timeout(",
    ".send(",
    "std::fs::",
    "File::open(",
    "File::create(",
    "OpenOptions::new",
];

/// Lock-acquisition method patterns (empty argument lists distinguish
/// `parking_lot` guards from `io::Write::write(buf)` and friends).
const LOCK_METHODS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Spawn-site patterns (direct and via `thread::Builder`).
const SPAWNS: [&str; 2] = ["thread::spawn", "thread::Builder"];

/// Unbounded-channel constructors (crossbeam and std mpsc).
const UNBOUNDED: [&str; 2] = ["unbounded", "mpsc::channel"];

/// Extracts every concurrency-relevant site from one file. Pure and
/// order-independent: the result depends only on `(rel, src, policy)`.
pub fn collect(rel: &str, src: &str, policy: FilePolicy) -> FileConc {
    let scrubbed = lexer::scrub(src);
    let lib_code = lexer::strip_test_items(&scrubbed);
    let sf = scope::scope_file(&lib_code);
    let text = &sf.text;

    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();

    // Group sites by innermost enclosing fn (index into sf.fns, or None).
    let mut per_fn: BTreeMap<Option<usize>, FnConc> = BTreeMap::new();
    let fn_index_of = |pos: usize| -> Option<usize> {
        sf.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.sig_pos <= pos && pos <= f.body_end)
            .max_by_key(|(_, f)| f.sig_pos)
            .map(|(i, _)| i)
    };

    for pat in LOCK_METHODS {
        for pos in scope::find_pattern_any(text, pat) {
            let Some(ident) = scope::receiver_component(text, pos) else {
                continue;
            };
            if ident == "self" || ident.is_empty() {
                continue;
            }
            let key = fn_index_of(pos);
            let body_end = key
                .and_then(|i| sf.fns.get(i))
                .map_or(text.len().saturating_sub(1), |f| f.body_end);
            let lower = key.and_then(|i| sf.fns.get(i)).map_or(0, |f| f.body_start);
            let kind = scope::statement_kind(text, pos, lower);
            let held = scope::held_until(text, pos, body_end, kind);
            per_fn.entry(key).or_default().locks.push(LockSite {
                ident,
                line: scope::line_of(text, pos),
                pos,
                held_until: held,
            });
        }
    }

    for f in sf.fns.iter() {
        let key = fn_index_of(f.body_start + 1);
        for (pos, callee) in scope::call_sites(text, f.body_start, f.body_end) {
            // Attribute to the innermost fn only (nested fns re-scan).
            if fn_index_of(pos) != key {
                continue;
            }
            per_fn.entry(key).or_default().calls.push(CallSite {
                callee,
                line: scope::line_of(text, pos),
                pos,
            });
        }
    }

    for pat in BLOCKING {
        for pos in scope::find_pattern_any(text, pat) {
            let key = fn_index_of(pos);
            per_fn
                .entry(key)
                .or_default()
                .blocking
                .push((pat.to_string(), scope::line_of(text, pos)));
        }
    }

    let mut fns: Vec<FnConc> = Vec::new();
    for (key, mut fc) in per_fn {
        fc.name = key
            .and_then(|i| sf.fns.get(i))
            .map_or(String::new(), |f| f.name.clone());
        fns.push(fc);
    }
    fns.sort_by(|a, b| a.name.cmp(&b.name));

    // Relaxed-ordering sites with their receiver symbol.
    let mut relaxed = Vec::new();
    for pos in scope::find_pattern(text, "Ordering::Relaxed") {
        let symbol = atomic_receiver(text, pos).unwrap_or_else(|| String::from("?"));
        relaxed.push((symbol, scope::line_of(text, pos)));
    }

    // Lane evidence per spawn: any `Lane*` reference (Lanes, LaneIo,
    // LaneId, ...) within the spawning fn's signature-to-body range, or
    // anywhere in the file for module-level sites.
    let lane_refs = scope::find_pattern(text, "Lane");
    let mut spawns = Vec::new();
    for pat in SPAWNS {
        for pos in scope::find_pattern(text, pat) {
            let (lo, hi) = fn_index_of(pos)
                .and_then(|i| sf.fns.get(i))
                .map_or((0, text.len()), |f| (f.sig_pos, f.body_end));
            let lane_registered = lane_refs.iter().any(|&p| p >= lo && p <= hi);
            spawns.push(SpawnSite {
                line: scope::line_of(text, pos),
                lane_registered,
            });
        }
    }
    spawns.sort_unstable_by_key(|s| s.line);

    let mut unbounded = Vec::new();
    for pat in UNBOUNDED {
        for pos in scope::find_pattern(text, pat) {
            // Must be a construction: `unbounded(`, `unbounded::<T>(`.
            let after = pos + pat.chars().count();
            if next_is_call(text, after) {
                unbounded.push(scope::line_of(text, pos));
            }
        }
    }
    unbounded.sort_unstable();

    let mut literal_bounded = Vec::new();
    for pos in scope::find_pattern(text, "bounded") {
        let after = pos + "bounded".chars().count();
        if let Some(open) = call_paren(text, after) {
            let close = match_paren(text, open);
            let arg: String = text.get(open + 1..close).unwrap_or(&[]).iter().collect();
            if !arg.trim().is_empty() && !arg.chars().any(|c| c.is_alphabetic()) {
                literal_bounded.push(scope::line_of(text, pos));
            }
        }
    }
    literal_bounded.sort_unstable();

    FileConc {
        rel: rel.to_string(),
        crate_name,
        fns,
        relaxed,
        spawns,
        unbounded,
        literal_bounded,
        policy,
    }
}

/// Whether a call's argument list opens right after `after` (allowing
/// whitespace and a turbofish `::<...>`).
fn next_is_call(text: &[char], after: usize) -> bool {
    call_paren(text, after).is_some()
}

/// Char index of the `(` opening a call whose callee ends at `after`,
/// skipping whitespace and a turbofish.
fn call_paren(text: &[char], after: usize) -> Option<usize> {
    let mut i = after;
    while i < text.len() && text[i].is_whitespace() {
        i += 1;
    }
    if text.get(i) == Some(&':') && text.get(i + 1) == Some(&':') && text.get(i + 2) == Some(&'<') {
        let mut depth = 0isize;
        let mut j = i + 2;
        while j < text.len() {
            match text[j] {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
        while i < text.len() && text[i].is_whitespace() {
            i += 1;
        }
    }
    (text.get(i) == Some(&'(')).then_some(i)
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(text: &[char], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len().saturating_sub(1)
}

/// The receiver symbol of the atomic call containing an
/// `Ordering::Relaxed` argument at `pos`: walks out to the opening `(`
/// of the enclosing call, then back over the method name to the receiver.
fn atomic_receiver(text: &[char], pos: usize) -> Option<String> {
    let mut depth = 0isize;
    let mut i = pos;
    let open = loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match text[i] {
            ')' => depth += 1,
            '(' => {
                if depth == 0 {
                    break i;
                }
                depth -= 1;
            }
            ';' | '{' | '}' if depth == 0 => return None,
            _ => {}
        }
    };
    // Method name just before the `(` (possibly with a turbofish).
    let mut j = open;
    while j > 0 && text[j - 1].is_whitespace() {
        j -= 1;
    }
    let method_end = j;
    while j > 0 && (text[j - 1].is_alphanumeric() || text[j - 1] == '_') {
        j -= 1;
    }
    if j == method_end {
        return None;
    }
    if j == 0 || text[j - 1] != '.' {
        return None;
    }
    scope::receiver_component(text, j - 1)
}

/// A lock-order edge: acquiring `to` while holding `from`.
type Edge = (String, String);

/// Runs the workspace-level rules over all collected files, appending
/// findings to `out`. Deterministic: results depend only on the *set* of
/// files, not their order.
pub fn check_workspace(files: &[FileConc], allow: &Allowlist, out: &mut Vec<Violation>) {
    // ---- Per-file rules (spawn confinement, channels, atomics). ----
    for f in files {
        if f.policy.require_lane_registration {
            for s in &f.spawns {
                if s.lane_registered {
                    continue;
                }
                out.push(violation(
                    &f.rel,
                    s.line,
                    "spawn-lane-registered",
                    "worker-pool `thread::spawn` without a registered trace lane: the \
                     spawning function must register a `LaneId` (`Lanes::register` / \
                     `LaneIo`) so the thread lands on a per-lane flight ring with \
                     busy/blocked accounting — an unregistered worker corrupts xray's \
                     measured parallel efficiency"
                        .to_string(),
                ));
            }
        }
        if f.policy.deny_unsanctioned_spawn {
            for s in &f.spawns {
                out.push(violation(
                    &f.rel,
                    s.line,
                    "spawn-confined",
                    "`thread::spawn` outside the sanctioned worker-pool modules: threads are \
                     confined to stream/src/pipeline.rs, stream/src/broker.rs, \
                     watch/src/serve.rs, bins, and tests so the sharded engine keeps a single \
                     auditable spawn surface"
                        .to_string(),
                ));
            }
        }
        if f.policy.deny_unbounded_channel {
            for &line in &f.unbounded {
                out.push(violation(
                    &f.rel,
                    line,
                    "bounded-channels-only",
                    "unbounded channel: every queue needs backpressure (ROADMAP item 1); use \
                     `crossbeam::channel::bounded` with a named capacity constant"
                        .to_string(),
                ));
            }
            for &line in &f.literal_bounded {
                out.push(violation(
                    &f.rel,
                    line,
                    "bounded-channels-only",
                    "`bounded()` with a bare numeric capacity: name the constant (or thread a \
                     config field) so every backpressure limit is auditable and tunable"
                        .to_string(),
                ));
            }
        }
        if !f.policy.relaxed_exempt {
            for (sym, line) in &f.relaxed {
                if allow.permits(&f.rel, sym) {
                    continue;
                }
                out.push(violation(
                    &f.rel,
                    *line,
                    "atomics-ordering",
                    format!(
                        "`Ordering::Relaxed` on `{sym}` outside the sanctioned counter modules: \
                         flags and seqlock cells need acquire/release; counters belong in \
                         telemetry/profile or under a reviewed `audit.allow` entry"
                    ),
                ));
            }
        }
    }

    // ---- Call index: fn name -> definitions (for one-hop propagation). ----
    let mut defs: BTreeMap<&str, Vec<(&FileConc, &FnConc)>> = BTreeMap::new();
    for f in files {
        if f.policy.is_entry {
            continue; // bins are not per-record callees
        }
        for fc in &f.fns {
            if fc.name.is_empty() || fc.name == "main" {
                continue;
            }
            defs.entry(fc.name.as_str()).or_default().push((f, fc));
        }
    }
    // Resolution: same-crate definitions win; otherwise a unique global one.
    let resolve = |crate_name: &str, callee: &str| -> Vec<(&FileConc, &FnConc)> {
        let Some(cands) = defs.get(callee) else {
            return Vec::new();
        };
        let same: Vec<_> = cands
            .iter()
            .filter(|(f, _)| f.crate_name == crate_name)
            .copied()
            .collect();
        if !same.is_empty() {
            return same;
        }
        if cands.len() == 1 {
            return cands.clone();
        }
        Vec::new()
    };

    // ---- Blocking-call reachability. ----
    for f in files {
        if !f.policy.deny_blocking_hot_path {
            continue;
        }
        for fc in &f.fns {
            for (pat, line) in &fc.blocking {
                out.push(violation(
                    &f.rel,
                    *line,
                    "no-blocking-hot-path",
                    format!(
                        "blocking `{pat}` on the per-record hot path: an operator must never \
                         stall a frame (paper §4); hand blocking work to the pump/exchange \
                         layer or use the try_ variants"
                    ),
                ));
            }
            for call in &fc.calls {
                if matches!(call.callee.as_str(), "lock" | "read" | "write") {
                    continue;
                }
                for (df, dfn) in resolve(&f.crate_name, &call.callee) {
                    if df.policy.deny_blocking_hot_path {
                        continue; // the callee is flagged directly
                    }
                    if let Some((pat, bl)) = dfn.blocking.first() {
                        out.push(violation(
                            &f.rel,
                            call.line,
                            "no-blocking-hot-path",
                            format!(
                                "per-record code reaches a blocking operation: `{}` calls \
                                 `{}` which blocks (`{pat}` at {}:{bl})",
                                fc.name, call.callee, df.rel
                            ),
                        ));
                    }
                }
            }
        }
    }

    // ---- Lock-order graph. ----
    // Edge sites: (from, to) -> earliest (file, line) closing that edge.
    let mut edges: BTreeMap<Edge, BTreeSet<(String, usize)>> = BTreeMap::new();
    for f in files {
        for fc in &f.fns {
            for a in &fc.locks {
                let from = format!("{}/{}", f.crate_name, a.ident);
                // Nested acquisitions inside a's guard lifetime.
                for b in &fc.locks {
                    if b.pos > a.pos && b.pos <= a.held_until {
                        let to = format!("{}/{}", f.crate_name, b.ident);
                        edges
                            .entry((from.clone(), to))
                            .or_default()
                            .insert((f.rel.clone(), b.line));
                    }
                }
                // One-hop propagation: calls made while a's guard is held
                // pull in the callee's own acquisitions.
                for call in &fc.calls {
                    if call.pos <= a.pos || call.pos > a.held_until {
                        continue;
                    }
                    if matches!(call.callee.as_str(), "lock" | "read" | "write") {
                        continue;
                    }
                    for (df, dfn) in resolve(&f.crate_name, &call.callee) {
                        for b in &dfn.locks {
                            let to = format!("{}/{}", df.crate_name, b.ident);
                            if to == from {
                                continue; // self-call noise, not evidence
                            }
                            edges
                                .entry((from.clone(), to.clone()))
                                .or_default()
                                .insert((f.rel.clone(), call.line));
                        }
                    }
                }
            }
        }
    }

    // Adjacency for cycle checks.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    let reachable = |start: &str, goal: &str| -> Option<Vec<String>> {
        // BFS path start -> goal over sorted adjacency (deterministic).
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: Vec<&str> = vec![start];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(start);
        while let Some(u) = queue.first().copied() {
            queue.remove(0);
            if u == goal {
                let mut path = vec![goal.to_string()];
                let mut cur = goal;
                while cur != start {
                    let Some(&p) = prev.get(cur) else { break };
                    path.push(p.to_string());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if let Some(nexts) = adj.get(u) {
                for &v in nexts {
                    if seen.insert(v) {
                        prev.insert(v, u);
                        queue.push(v);
                    }
                }
            }
        }
        None
    };

    for ((from, to), sites) in &edges {
        // The edge from->to closes a cycle iff `from` is reachable from
        // `to` (including the self-loop case from == to).
        let back = if from == to {
            Some(vec![from.clone()])
        } else {
            reachable(to, from)
        };
        let Some(path) = back else { continue };
        let Some((file, line)) = sites.iter().next() else {
            continue;
        };
        // `path` runs to -> ... -> from inclusive, so prepending `from`
        // yields the closed cycle from -> to -> ... -> from.
        let mut cycle = vec![from.clone()];
        cycle.extend(path);
        out.push(violation(
            file,
            *line,
            "lock-order-cycle",
            format!(
                "lock-order cycle ({}): acquiring `{to}` while holding `{from}` closes the \
                 cycle — potential deadlock once workers multiply; acquire locks in one \
                 global order or merge them",
                cycle.join(" -> ")
            ),
        ));
    }
}

fn violation(file: &str, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule,
        severity: Severity::Deny,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::policy_for;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let collected: Vec<FileConc> = files
            .iter()
            .map(|(rel, src)| collect(rel, src, policy_for(rel)))
            .collect();
        let mut out = Vec::new();
        check_workspace(&collected, &Allowlist::empty(), &mut out);
        out
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn detects_cross_file_lock_order_cycle() {
        let v = run(&[
            (
                "crates/stream/src/a.rs",
                "fn a(s: &S) { let g = s.alpha.lock(); let h = s.beta.lock(); g; h; }",
            ),
            (
                "crates/stream/src/b.rs",
                "fn b(s: &S) { let g = s.beta.lock(); let h = s.alpha.lock(); g; h; }",
            ),
        ]);
        let cyc: Vec<_> = v.iter().filter(|x| x.rule == "lock-order-cycle").collect();
        assert_eq!(cyc.len(), 2, "one finding per closing edge: {v:?}");
        let files: Vec<&str> = cyc.iter().map(|x| x.file.as_str()).collect();
        assert!(files.contains(&"crates/stream/src/a.rs"));
        assert!(files.contains(&"crates/stream/src/b.rs"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let v = run(&[
            (
                "crates/stream/src/a.rs",
                "fn a(s: &S) { let g = s.alpha.lock(); let h = s.beta.lock(); g; h; }",
            ),
            (
                "crates/stream/src/b.rs",
                "fn b(s: &S) { let g = s.alpha.lock(); let h = s.beta.lock(); g; h; }",
            ),
        ]);
        assert!(
            !rules_of(&v).contains(&"lock-order-cycle"),
            "consistent order must not report: {v:?}"
        );
    }

    #[test]
    fn statement_temporaries_do_not_create_edges() {
        // Two guards that each die at their own `;` never overlap.
        let v = run(&[(
            "crates/stream/src/a.rs",
            "fn a(s: &S) { *s.alpha.lock() = 1; *s.beta.lock() = 2; }\n\
             fn b(s: &S) { *s.beta.lock() = 1; *s.alpha.lock() = 2; }",
        )]);
        assert!(
            !rules_of(&v).contains(&"lock-order-cycle"),
            "statement temps must not nest: {v:?}"
        );
    }

    #[test]
    fn propagates_lock_order_one_call_hop() {
        let v = run(&[
            (
                "crates/stream/src/a.rs",
                "fn outer(s: &S) { let g = s.alpha.lock(); helper(s); g; }\n\
                 fn helper(s: &S) { let h = s.beta.lock(); h; }",
            ),
            (
                "crates/stream/src/b.rs",
                "fn other(s: &S) { let g = s.beta.lock(); let h = s.alpha.lock(); g; h; }",
            ),
        ]);
        assert!(
            rules_of(&v).contains(&"lock-order-cycle"),
            "call-hop edge alpha->beta plus direct beta->alpha must cycle: {v:?}"
        );
    }

    #[test]
    fn flags_blocking_in_per_record_crate_only() {
        let blocked = "fn op() { std::thread::sleep(std::time::Duration::from_millis(1)); }";
        let v = run(&[("crates/stream/src/op.rs", blocked)]);
        assert_eq!(rules_of(&v), vec!["no-blocking-hot-path"]);
        let v = run(&[("crates/render/src/op.rs", blocked)]);
        assert!(v.is_empty(), "render is not per-record: {v:?}");
    }

    #[test]
    fn blocking_reachability_crosses_files() {
        let v = run(&[
            (
                "crates/stream/src/caller.rs",
                "fn per_record(x: u32) -> u32 { wait_for_io(); x }",
            ),
            (
                "crates/semantic/src/helper.rs",
                "pub fn wait_for_io() { std::thread::sleep(std::time::Duration::from_millis(1)); }",
            ),
        ]);
        let hits: Vec<_> = v
            .iter()
            .filter(|x| x.rule == "no-blocking-hot-path")
            .collect();
        assert_eq!(hits.len(), 1, "{v:?}");
        assert_eq!(hits[0].file, "crates/stream/src/caller.rs");
    }

    #[test]
    fn channel_discipline() {
        let v = run(&[(
            "crates/render/src/chan.rs",
            "fn f() { let a = crossbeam::channel::unbounded::<u32>(); \
             let b = crossbeam::channel::bounded::<u32>(4096); \
             let c = crossbeam::channel::bounded::<u32>(self.cap); a; b; c; }",
        )]);
        let hits = rules_of(&v);
        assert_eq!(
            hits.iter()
                .filter(|r| **r == "bounded-channels-only")
                .count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn spawn_confinement() {
        let bad = "fn f() { std::thread::spawn(|| {}); }";
        let v = run(&[("crates/store/src/bg.rs", bad)]);
        assert_eq!(rules_of(&v), vec!["spawn-confined"]);
        // Sanctioned module: no spawn-confined finding (the lane rule
        // is separate and covered below).
        let v = run(&[("crates/stream/src/pipeline.rs", bad)]);
        assert!(
            !rules_of(&v).contains(&"spawn-confined"),
            "sanctioned module: {v:?}"
        );
        let v = run(&[("crates/bench/src/bin/e99.rs", bad)]);
        assert!(v.is_empty(), "bins may spawn: {v:?}");
    }

    #[test]
    fn lane_registration_in_worker_pool_modules() {
        let bare = "fn f() { std::thread::spawn(|| {}); }";
        let v = run(&[("crates/stream/src/pipeline.rs", bare)]);
        assert_eq!(rules_of(&v), vec!["spawn-lane-registered"], "{v:?}");
        // A Lane reference anywhere in the spawning fn is the evidence.
        let laned = "fn f(lanes: &Lanes) { let lane = lanes.register(\"w\"); \
                     let _ = lane.id(); std::thread::spawn(|| {}); }";
        let v = run(&[("crates/stream/src/broker.rs", laned)]);
        assert!(v.is_empty(), "registered worker must pass: {v:?}");
        // The watch listener is control-plane: sanctioned to spawn, not
        // required to register a lane.
        let v = run(&[("crates/watch/src/serve.rs", bare)]);
        assert!(v.is_empty(), "control-plane listener is exempt: {v:?}");
    }

    #[test]
    fn atomics_ordering_with_allowlist() {
        let bad = "use std::sync::atomic::{AtomicBool, Ordering};\n\
                   fn f(b: &AtomicBool) { b.store(true, Ordering::Relaxed); }";
        let v = run(&[("crates/geo/src/flag.rs", bad)]);
        assert_eq!(rules_of(&v), vec!["atomics-ordering"]);
        assert!(v[0].message.contains("`b`"), "{}", v[0].message);
        // Sanctioned counter module.
        let v = run(&[("crates/telemetry/src/metric.rs", bad)]);
        assert!(v.is_empty(), "{v:?}");
        // Reviewed allowlist entry.
        let collected = vec![collect(
            "crates/geo/src/flag.rs",
            bad,
            policy_for("crates/geo/src/flag.rs"),
        )];
        let allow = Allowlist::parse("crates/geo/src/flag.rs b reviewed: test fixture\n")
            .unwrap_or_else(|_| Allowlist::empty());
        let mut out = Vec::new();
        check_workspace(&collected, &allow, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
