//! `augur-audit`: in-repo static analysis enforcing workspace invariants.
//!
//! The platform's availability story (paper §4: an AR overlay must degrade
//! gracefully, never abort mid-frame) and its reproducibility story (ExpAR:
//! controlled, repeatable experimentation) are both *mechanical* properties —
//! so this crate checks them mechanically, with a small hand-rolled lexer
//! that needs no network or external parser. Invariants:
//!
//! 1. **Panic-freedom** — no `unwrap()` / `expect()` / `panic!`-family macros
//!    in non-test library code of the hot-path crates ([`scan::HOT_CRATES`]).
//! 2. **Lock discipline** — no `std::sync::{Mutex, RwLock}`; the workspace
//!    standard is `parking_lot` (non-poisoning).
//! 3. **Determinism** — no `SystemTime::now()` in library code, no
//!    entropy-seeded RNG anywhere, no `Instant::now()` in simulation paths
//!    ([`scan::SIM_PATHS`]).
//! 4. **Time-source discipline** — telemetry-instrumented crates
//!    ([`scan::TELEMETRY_CRATES`]) never call raw `Instant::now()`; time is
//!    read through `augur_telemetry::TimeSource`, so instrumentation runs
//!    deterministically under `ManualTime` and against the monotonic clock
//!    in benches. The single sanctioned wall-clock read is
//!    [`scan::TIME_SOURCE_EXEMPT`].
//! 5. **Documented exports** — every `pub` item in a crate root (`lib.rs`)
//!    carries a doc comment.
//!
//! Run it three ways: `cargo run -p augur-audit` (CLI), the tier-1
//! integration test `tests/static_audit.rs` (keeps `cargo test` enforcing the
//! invariants forever), and `cargo run -p augur-audit -- --self-test` (the
//! analyzer checks itself against seeded violations).

/// Source scrubbing: comments, literals, `#[cfg(test)]` stripping.
pub mod lexer;
/// The audit rules and the per-file policy they run under.
pub mod rules;
/// Workspace traversal and report assembly.
pub mod scan;
/// Seeded-violation self-test fixtures.
pub mod selftest;

/// Rule types re-exported from [`rules`].
pub use rules::{FilePolicy, Severity, Violation};
/// Scanning entry points re-exported from [`scan`].
pub use scan::{audit_workspace, Report};
