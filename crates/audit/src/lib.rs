//! `augur-audit`: in-repo static analysis enforcing workspace invariants.
//!
//! The platform's availability story (paper §4: an AR overlay must degrade
//! gracefully, never abort mid-frame) and its reproducibility story (ExpAR:
//! controlled, repeatable experimentation) are both *mechanical* properties —
//! so this crate checks them mechanically, with a small hand-rolled lexer
//! that needs no network or external parser. Invariants:
//!
//! 1. **Panic-freedom** — no `unwrap()` / `expect()` / `panic!`-family macros
//!    in non-test library code of the hot-path crates ([`scan::HOT_CRATES`]).
//! 2. **Lock discipline** — no `std::sync::{Mutex, RwLock}`; the workspace
//!    standard is `parking_lot` (non-poisoning).
//! 3. **Determinism** — no `SystemTime::now()` in library code, no
//!    entropy-seeded RNG anywhere, no `Instant::now()` in simulation paths
//!    ([`scan::SIM_PATHS`]).
//! 4. **Time-source discipline** — telemetry-instrumented crates
//!    ([`scan::TELEMETRY_CRATES`]) never call raw `Instant::now()`; time is
//!    read through `augur_telemetry::TimeSource`, so instrumentation runs
//!    deterministically under `ManualTime` and against the monotonic clock
//!    in benches. The single sanctioned wall-clock read is
//!    [`scan::TIME_SOURCE_EXEMPT`].
//! 5. **Documented exports** — every `pub` item in a crate root (`lib.rs`)
//!    carries a doc comment.
//!
//! On top of the per-file token rules sits a cross-file concurrency pass
//! (the [`scope`] symbol layer feeding [`concurrency`]) enforcing five
//! more invariants for the sharded dataflow engine (ROADMAP item 1):
//!
//! 6. **Deadlock freedom** — the workspace-wide lock-order graph
//!    (guard lifetimes + one call-index hop) must be acyclic
//!    (`lock-order-cycle`).
//! 7. **Non-blocking hot path** — no blocking calls in per-record crates,
//!    directly or one hop away (`no-blocking-hot-path`).
//! 8. **Channel discipline** — bounded channels only, with named
//!    capacities (`bounded-channels-only`).
//! 9. **Spawn confinement** — threads only in the sanctioned worker-pool
//!    modules (`spawn-confined`).
//! 10. **Atomics-ordering discipline** — `Ordering::Relaxed` only for
//!     counters in sanctioned modules or reviewed [`baseline::Allowlist`]
//!     entries (`atomics-ordering`).
//!
//! New rules land strict: pre-existing findings live in the committed
//! `audit.baseline.json` ([`baseline::Baseline`]) with exact counts, so a
//! fixed finding forces its suppression to be pruned (stale entries fail
//! the run). Reports export as SARIF 2.1.0 ([`sarif`]) for CI ingestion,
//! and every rule code is documented via `--explain` ([`explain`]).
//!
//! Run it three ways: `cargo run -p augur-audit` (CLI), the tier-1
//! integration test `tests/static_audit.rs` (keeps `cargo test` enforcing the
//! invariants forever), and `cargo run -p augur-audit -- --self-test` (the
//! analyzer checks itself against seeded violations).

/// Baseline (suppression) and allowlist files, plus a minimal JSON reader.
pub mod baseline;
/// Cross-file concurrency rules over the scope pass.
pub mod concurrency;
/// `--explain` documentation for every rule code.
pub mod explain;
/// Source scrubbing: comments, literals, `#[cfg(test)]` stripping.
pub mod lexer;
/// The audit rules and the per-file policy they run under.
pub mod rules;
/// SARIF 2.1.0 export.
pub mod sarif;
/// Workspace traversal and report assembly.
pub mod scan;
/// Scope/symbol pass: `fn` spans, guard lifetimes, call sites.
pub mod scope;
/// Seeded-violation self-test fixtures.
pub mod selftest;

/// Baseline types re-exported from [`baseline`].
pub use baseline::{Allowlist, Baseline};
/// Rule types re-exported from [`rules`].
pub use rules::{FilePolicy, Severity, Violation};
/// Scanning entry points re-exported from [`scan`].
pub use scan::{analyze_files, audit_workspace, audit_workspace_with, AuditOptions, Report};
