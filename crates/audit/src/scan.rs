//! Workspace walker: maps each library source file to its rule policy and
//! collects findings.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{self, FilePolicy, Severity, Violation};

/// Crates whose library code must be panic-free (the AR hot path: a panic
/// here aborts a frame mid-flight).
pub const HOT_CRATES: [&str; 11] = [
    "stream",
    "geo",
    "store",
    "semantic",
    "cloud",
    "core",
    "audit",
    "telemetry",
    "doctor",
    "watch",
    "profile",
];

/// Path fragments identifying simulation code, where wall-clock reads are
/// denied so experiment runs stay reproducible (ExpAR-style determinism).
pub const SIM_PATHS: [&str; 2] = ["crates/sensor/src", "crates/core/src/scenario"];

/// Telemetry-instrumented crates: library code must read time through
/// `augur_telemetry::TimeSource` rather than raw `Instant::now()`, so the
/// same instrumentation runs deterministically under `ManualTime` in
/// simulations and against the monotonic clock in benches.
pub const TELEMETRY_CRATES: [&str; 7] = [
    "stream",
    "store",
    "cloud",
    "core",
    "telemetry",
    "watch",
    "profile",
];

/// The one sanctioned wall-clock read: `MonotonicTime` in the telemetry
/// crate's time-source module.
pub const TIME_SOURCE_EXEMPT: &str = "crates/telemetry/src/time.rs";

/// The one sanctioned `std::net` site: the watch crate's live endpoint.
/// Confining sockets to a single module keeps the workspace's network
/// surface auditable at a glance (and trivially greppable).
pub const NET_EXEMPT: &str = "crates/watch/src/serve.rs";

/// The one sanctioned global-allocator site: the profile crate's counting
/// allocator. Everything else opts in through the `global-alloc` cargo
/// feature (bins/tests only), so allocation accounting has exactly one
/// implementation to audit.
pub const ALLOC_EXEMPT: &str = "crates/profile/src/alloc.rs";

/// Result of auditing a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, deny and advice alike.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the audit.
    pub fn denials(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
    }

    /// Whether the audit passes.
    pub fn clean(&self) -> bool {
        self.denials().next().is_none()
    }
}

/// Audits a workspace rooted at `root` (the directory holding `crates/`).
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            audit_tree(root, &src, &mut report)?;
        }
    }
    // The facade crate's root lives at <root>/src.
    let facade = root.join("src");
    if facade.is_dir() {
        audit_tree(root, &facade, &mut report)?;
    }
    Ok(report)
}

/// Recursively audits every `.rs` file under `dir`.
pub fn audit_tree(root: &Path, dir: &Path, report: &mut Report) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for path in entries {
        if path.is_dir() {
            audit_tree(root, &path, report)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path)?;
            let policy = policy_for(&rel);
            rules::check_source(&rel, &source, policy, &mut report.violations);
            report.files_scanned += 1;
        }
    }
    Ok(())
}

/// Derives the rule policy for a workspace-relative file path.
pub fn policy_for(rel: &str) -> FilePolicy {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let hot = HOT_CRATES.contains(&crate_name);
    let sim = SIM_PATHS.iter().any(|p| rel.starts_with(p));
    let instrumented = TELEMETRY_CRATES.contains(&crate_name);
    // Experiment driver binaries (crates/bench/src/bin) are CLIs, not library
    // code; only the workspace-wide determinism and lock rules apply there.
    let is_bin = rel.contains("/src/bin/");
    let is_crate_root = rel.ends_with("src/lib.rs");
    FilePolicy {
        deny_panics: hot && !is_bin,
        deny_wall_clock: sim,
        deny_raw_instant: instrumented && !is_bin && rel != TIME_SOURCE_EXEMPT,
        // The process-global registry is an examples/bin convenience;
        // library code must thread a `&Registry` so metrics are scoped to
        // the caller's run. Experiment driver binaries are exempt.
        deny_global_registry: !is_bin,
        // Sockets are confined workspace-wide — bins included: demo and
        // experiment binaries serve state through `WatchSession::serve`.
        deny_raw_net: rel != NET_EXEMPT,
        // Global allocators are confined workspace-wide — bins included:
        // they enable the counting allocator via the `global-alloc`
        // feature rather than declaring their own.
        deny_global_alloc: rel != ALLOC_EXEMPT,
        advise_indexing: hot && !is_bin,
        require_docs: is_crate_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_mapping() {
        assert!(policy_for("crates/stream/src/broker.rs").deny_panics);
        assert!(policy_for("crates/geo/src/geohash.rs").deny_panics);
        assert!(!policy_for("crates/render/src/layout.rs").deny_panics);
        assert!(!policy_for("crates/bench/src/bin/a1_watermark.rs").deny_panics);
        assert!(policy_for("crates/sensor/src/imu.rs").deny_wall_clock);
        assert!(policy_for("crates/core/src/scenario/retail.rs").deny_wall_clock);
        assert!(!policy_for("crates/stream/src/broker.rs").deny_wall_clock);
        assert!(policy_for("crates/semantic/src/lib.rs").require_docs);
        assert!(!policy_for("crates/semantic/src/json.rs").require_docs);
    }

    #[test]
    fn global_registry_policy_mapping() {
        assert!(policy_for("crates/telemetry/src/metric.rs").deny_global_registry);
        assert!(policy_for("crates/render/src/layout.rs").deny_global_registry);
        assert!(policy_for("crates/doctor/src/lib.rs").deny_global_registry);
        assert!(!policy_for("crates/bench/src/bin/e3_offload.rs").deny_global_registry);
        // Doctor is hot-path tooling: its verdicts gate CI, so panics are
        // denied like the rest of the hot set.
        assert!(policy_for("crates/doctor/src/lib.rs").deny_panics);
        assert!(policy_for("crates/doctor/src/main.rs").deny_panics);
    }

    #[test]
    fn time_source_policy_mapping() {
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_raw_instant);
        assert!(policy_for("crates/store/src/lsm.rs").deny_raw_instant);
        assert!(policy_for("crates/cloud/src/offload.rs").deny_raw_instant);
        assert!(policy_for("crates/telemetry/src/registry.rs").deny_raw_instant);
        // The sanctioned monotonic source and non-instrumented crates.
        assert!(!policy_for("crates/telemetry/src/time.rs").deny_raw_instant);
        assert!(!policy_for("crates/render/src/frame.rs").deny_raw_instant);
        assert!(!policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_raw_instant);
        // Telemetry is hot-path code: panic discipline applies.
        assert!(policy_for("crates/telemetry/src/metric.rs").deny_panics);
    }

    #[test]
    fn net_confinement_policy_mapping() {
        // The endpoint module is the sole sanctioned socket site.
        assert!(!policy_for("crates/watch/src/serve.rs").deny_raw_net);
        assert!(policy_for("crates/watch/src/rollup.rs").deny_raw_net);
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_raw_net);
        // Unlike the panic rules, bins are NOT exempt: they serve state
        // through `WatchSession::serve` rather than opening sockets.
        assert!(policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_raw_net);
        // Watch joined the hot + instrumented sets.
        assert!(policy_for("crates/watch/src/slo.rs").deny_panics);
        assert!(policy_for("crates/watch/src/rollup.rs").deny_raw_instant);
    }

    #[test]
    fn alloc_confinement_policy_mapping() {
        // The counting allocator is the sole sanctioned declaration site.
        assert!(!policy_for("crates/profile/src/alloc.rs").deny_global_alloc);
        assert!(policy_for("crates/profile/src/fold.rs").deny_global_alloc);
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_global_alloc);
        // Bins are NOT exempt: they opt in via the cargo feature.
        assert!(policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_global_alloc);
        // Profile joined the hot + instrumented sets.
        assert!(policy_for("crates/profile/src/fold.rs").deny_panics);
        assert!(policy_for("crates/profile/src/diff.rs").deny_raw_instant);
        assert!(policy_for("crates/profile/src/lib.rs").require_docs);
    }
}
