//! Workspace walker: maps each library source file to its rule policy,
//! runs the per-file token rules and the cross-file concurrency pass, and
//! applies the committed baseline/allowlist.
//!
//! The analysis is deliberately two-phase so results are a pure function
//! of the *set* of files: phase one collects per-file facts (token
//! findings plus the concurrency sites from [`crate::scope`]); phase two
//! ([`crate::concurrency::check_workspace`]) runs the workspace-level
//! rules over all files at once. [`analyze_files`] sorts its input and
//! every workspace structure is a BTree map/set, so a shuffled file list
//! produces a byte-identical report (property-tested).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::{Allowlist, Baseline};
use crate::concurrency;
use crate::rules::{self, FilePolicy, Severity, Violation};

/// Crates whose library code must be panic-free (the AR hot path: a panic
/// here aborts a frame mid-flight).
pub const HOT_CRATES: [&str; 12] = [
    "stream",
    "geo",
    "store",
    "semantic",
    "cloud",
    "core",
    "audit",
    "telemetry",
    "doctor",
    "watch",
    "profile",
    "xray",
];

/// Path fragments identifying simulation code, where wall-clock reads are
/// denied so experiment runs stay reproducible (ExpAR-style determinism).
pub const SIM_PATHS: [&str; 2] = ["crates/sensor/src", "crates/core/src/scenario"];

/// Telemetry-instrumented crates: library code must read time through
/// `augur_telemetry::TimeSource` rather than raw `Instant::now()`, so the
/// same instrumentation runs deterministically under `ManualTime` in
/// simulations and against the monotonic clock in benches.
pub const TELEMETRY_CRATES: [&str; 7] = [
    "stream",
    "store",
    "cloud",
    "core",
    "telemetry",
    "watch",
    "profile",
];

/// The one sanctioned wall-clock read: `MonotonicTime` in the telemetry
/// crate's time-source module.
pub const TIME_SOURCE_EXEMPT: &str = "crates/telemetry/src/time.rs";

/// The one sanctioned `std::net` site: the watch crate's live endpoint.
/// Confining sockets to a single module keeps the workspace's network
/// surface auditable at a glance (and trivially greppable).
pub const NET_EXEMPT: &str = "crates/watch/src/serve.rs";

/// The one sanctioned global-allocator site: the profile crate's counting
/// allocator. Everything else opts in through the `global-alloc` cargo
/// feature (bins/tests only), so allocation accounting has exactly one
/// implementation to audit.
pub const ALLOC_EXEMPT: &str = "crates/profile/src/alloc.rs";

/// The one sanctioned console-print site: the log crate's writer module.
/// Library code that genuinely needs a console line routes it through
/// `augur_log`'s writer; everything else emits structured events. Bins,
/// CLIs, and tests stay exempt and may print directly.
pub const PRINT_EXEMPT: &str = "crates/log/src/writer.rs";

/// Sanctioned `thread::spawn` sites: the sharded engine's worker pool and
/// the watch endpoint's listener thread. Keeping one spawn surface gives
/// thread budgets, shutdown, and panic handling a single owner.
pub const SPAWN_EXEMPT: [&str; 3] = [
    "crates/stream/src/pipeline.rs",
    "crates/stream/src/broker.rs",
    "crates/watch/src/serve.rs",
];

/// Sanctioned spawn sites whose threads are *worker* threads and must
/// therefore register a `LaneId` (reference a `Lane*` symbol in the
/// spawning function) so every worker lands on a per-lane flight ring
/// with busy/blocked accounting. `watch/src/serve.rs` stays off this
/// list: its listener thread is control-plane, not a worker.
pub const LANE_REQUIRED: [&str; 2] = [
    "crates/stream/src/pipeline.rs",
    "crates/stream/src/broker.rs",
];

/// Sanctioned `Ordering::Relaxed` modules: monotonic counters that are
/// only ever summed. Everything else needs acquire/release or a reviewed
/// `audit.allow` entry.
pub const ATOMICS_EXEMPT: [&str; 4] = [
    "crates/telemetry/src/metric.rs",
    "crates/telemetry/src/time.rs",
    "crates/telemetry/src/lane.rs",
    "crates/profile/src/alloc.rs",
];

/// Crates on the per-record hot path, where blocking operations are
/// denied directly and one call-index hop away (paper §4: never stall a
/// frame).
pub const PER_RECORD_CRATES: [&str; 1] = ["stream"];

/// Result of auditing a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that were not suppressed, deny and advice alike.
    pub violations: Vec<Violation>,
    /// Deny findings suppressed by the committed baseline (the burn-down
    /// backlog — still exported to SARIF, never silently dropped).
    pub suppressed: Vec<Violation>,
    /// Baseline entries that matched fewer findings than they declare:
    /// the finding was fixed, so the suppression must be pruned.
    pub stale_suppressions: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Unsuppressed findings that fail the audit.
    pub fn denials(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Deny)
    }

    /// Whether no unsuppressed deny findings remain.
    pub fn clean(&self) -> bool {
        self.denials().next().is_none()
    }

    /// Whether the audit passes overall: clean *and* no stale baseline
    /// entries (a stale suppression fails the run so the baseline only
    /// ever shrinks).
    pub fn pass(&self) -> bool {
        self.clean() && self.stale_suppressions.is_empty()
    }

    /// Renders the report as deterministic plain text. With `verbose`,
    /// advisories and baseline-suppressed findings are included.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for v in self.denials() {
            out.push_str(&format!(
                "deny  {:<22} {}:{} {}\n",
                v.rule, v.file, v.line, v.message
            ));
        }
        for s in &self.stale_suppressions {
            out.push_str(&format!("stale baseline entry: {s}\n"));
        }
        if verbose {
            for v in &self.violations {
                if v.severity == Severity::Advice {
                    out.push_str(&format!(
                        "advice {:<21} {}:{} {}\n",
                        v.rule, v.file, v.line, v.message
                    ));
                }
            }
            for v in &self.suppressed {
                out.push_str(&format!(
                    "baselined {:<18} {}:{} {}\n",
                    v.rule, v.file, v.line, v.message
                ));
            }
        }
        out.push_str(&format!(
            "{} files scanned, {} deny, {} advice, {} baselined, {} stale\n",
            self.files_scanned,
            self.denials().count(),
            self.violations
                .iter()
                .filter(|v| v.severity == Severity::Advice)
                .count(),
            self.suppressed.len(),
            self.stale_suppressions.len()
        ));
        out
    }
}

/// Baseline and allowlist inputs for a run.
#[derive(Debug, Default)]
pub struct AuditOptions {
    /// Committed suppressions (`audit.baseline.json`).
    pub baseline: Baseline,
    /// Reviewed `Ordering::Relaxed` exceptions (`audit.allow`).
    pub allow: Allowlist,
}

impl AuditOptions {
    /// Discovers `audit.baseline.json` and `audit.allow` under `root`.
    /// Missing files mean empty inputs; malformed files are an error
    /// (mapped to [`io::ErrorKind::InvalidData`] so the CLI exits 3).
    pub fn discover(root: &Path) -> io::Result<Self> {
        let mut opts = Self::default();
        let baseline_path = root.join("audit.baseline.json");
        if baseline_path.is_file() {
            opts.baseline = Baseline::load(&baseline_path)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        }
        let allow_path = root.join("audit.allow");
        if allow_path.is_file() {
            opts.allow = Allowlist::load(&allow_path)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        }
        Ok(opts)
    }
}

/// Audits a workspace rooted at `root` (the directory holding `crates/`),
/// discovering the committed baseline and allowlist next to it.
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let opts = AuditOptions::discover(root)?;
    audit_workspace_with(root, &opts)
}

/// Audits a workspace with explicit baseline/allowlist inputs.
pub fn audit_workspace_with(root: &Path, opts: &AuditOptions) -> io::Result<Report> {
    let files = collect_files(root)?;
    Ok(analyze_files(&files, &opts.baseline, &opts.allow))
}

/// Reads every library source file under `root`: `crates/*/src` plus the
/// facade crate's `src/`. Returns `(workspace-relative path, contents)`
/// pairs.
pub fn collect_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_tree(root, &src, &mut files)?;
        }
    }
    // The facade crate's root lives at <root>/src.
    let facade = root.join("src");
    if facade.is_dir() {
        collect_tree(root, &facade, &mut files)?;
    }
    Ok(files)
}

fn collect_tree(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_tree(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Runs both analysis phases over an in-memory file set and applies the
/// baseline. Pure and order-independent: the input is sorted (and
/// deduplicated by path) first, and every workspace-level structure is
/// ordered, so any permutation of `files` yields an identical [`Report`].
pub fn analyze_files(files: &[(String, String)], baseline: &Baseline, allow: &Allowlist) -> Report {
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    sorted.dedup_by(|a, b| a.0 == b.0);

    let mut violations = Vec::new();
    let mut concs = Vec::new();
    for (rel, src) in &sorted {
        let policy = policy_for(rel);
        rules::check_source(rel, src, policy, &mut violations);
        concs.push(concurrency::collect(rel, src, policy));
    }
    concurrency::check_workspace(&concs, allow, &mut violations);

    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    violations.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });

    let (kept, suppressed, stale) = baseline.apply(violations);
    Report {
        violations: kept,
        suppressed,
        stale_suppressions: stale,
        files_scanned: sorted.len(),
    }
}

/// Derives the rule policy for a workspace-relative file path.
pub fn policy_for(rel: &str) -> FilePolicy {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let hot = HOT_CRATES.contains(&crate_name);
    let sim = SIM_PATHS.iter().any(|p| rel.starts_with(p));
    let instrumented = TELEMETRY_CRATES.contains(&crate_name);
    // Experiment driver binaries (crates/bench/src/bin) are CLIs, not library
    // code; only the workspace-wide determinism and lock rules apply there.
    let is_bin = rel.contains("/src/bin/");
    let is_entry = is_bin || rel.ends_with("src/main.rs");
    let is_crate_root = rel.ends_with("src/lib.rs");
    FilePolicy {
        deny_panics: hot && !is_bin,
        deny_wall_clock: sim,
        deny_raw_instant: instrumented && !is_bin && rel != TIME_SOURCE_EXEMPT,
        // The process-global registry is an examples/bin convenience;
        // library code must thread a `&Registry` so metrics are scoped to
        // the caller's run. Experiment driver binaries are exempt.
        deny_global_registry: !is_bin,
        // Sockets are confined workspace-wide — bins included: demo and
        // experiment binaries serve state through `WatchSession::serve`.
        deny_raw_net: rel != NET_EXEMPT,
        // Global allocators are confined workspace-wide — bins included:
        // they enable the counting allocator via the `global-alloc`
        // feature rather than declaring their own.
        deny_global_alloc: rel != ALLOC_EXEMPT,
        // Library code logs through augur-log; only the sanctioned writer
        // and process entry points (bins, CLIs) touch stdio directly.
        deny_prints: !is_entry && rel != PRINT_EXEMPT,
        advise_indexing: hot && !is_bin,
        require_docs: is_crate_root,
        // Threads are confined to the sanctioned worker-pool modules;
        // binary entry points own their process and may spawn.
        deny_unsanctioned_spawn: !is_entry && !SPAWN_EXEMPT.contains(&rel),
        // Worker-pool spawns must register a trace lane; the watch
        // listener is control-plane and exempt.
        require_lane_registration: LANE_REQUIRED.contains(&rel),
        // Backpressure is workspace-wide — bins included: an unbounded
        // queue in a driver binary still masks overload.
        deny_unbounded_channel: true,
        deny_blocking_hot_path: PER_RECORD_CRATES.contains(&crate_name) && !is_entry,
        relaxed_exempt: ATOMICS_EXEMPT.contains(&rel),
        is_entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_mapping() {
        assert!(policy_for("crates/stream/src/broker.rs").deny_panics);
        assert!(policy_for("crates/geo/src/geohash.rs").deny_panics);
        assert!(!policy_for("crates/render/src/layout.rs").deny_panics);
        assert!(!policy_for("crates/bench/src/bin/a1_watermark.rs").deny_panics);
        assert!(policy_for("crates/sensor/src/imu.rs").deny_wall_clock);
        assert!(policy_for("crates/core/src/scenario/retail.rs").deny_wall_clock);
        assert!(!policy_for("crates/stream/src/broker.rs").deny_wall_clock);
        assert!(policy_for("crates/semantic/src/lib.rs").require_docs);
        assert!(!policy_for("crates/semantic/src/json.rs").require_docs);
    }

    #[test]
    fn global_registry_policy_mapping() {
        assert!(policy_for("crates/telemetry/src/metric.rs").deny_global_registry);
        assert!(policy_for("crates/render/src/layout.rs").deny_global_registry);
        assert!(policy_for("crates/doctor/src/lib.rs").deny_global_registry);
        assert!(!policy_for("crates/bench/src/bin/e3_offload.rs").deny_global_registry);
        // Doctor is hot-path tooling: its verdicts gate CI, so panics are
        // denied like the rest of the hot set.
        assert!(policy_for("crates/doctor/src/lib.rs").deny_panics);
        assert!(policy_for("crates/doctor/src/main.rs").deny_panics);
    }

    #[test]
    fn time_source_policy_mapping() {
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_raw_instant);
        assert!(policy_for("crates/store/src/lsm.rs").deny_raw_instant);
        assert!(policy_for("crates/cloud/src/offload.rs").deny_raw_instant);
        assert!(policy_for("crates/telemetry/src/registry.rs").deny_raw_instant);
        // The sanctioned monotonic source and non-instrumented crates.
        assert!(!policy_for("crates/telemetry/src/time.rs").deny_raw_instant);
        assert!(!policy_for("crates/render/src/frame.rs").deny_raw_instant);
        assert!(!policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_raw_instant);
        // Telemetry is hot-path code: panic discipline applies.
        assert!(policy_for("crates/telemetry/src/metric.rs").deny_panics);
    }

    #[test]
    fn net_confinement_policy_mapping() {
        // The endpoint module is the sole sanctioned socket site.
        assert!(!policy_for("crates/watch/src/serve.rs").deny_raw_net);
        assert!(policy_for("crates/watch/src/rollup.rs").deny_raw_net);
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_raw_net);
        // Unlike the panic rules, bins are NOT exempt: they serve state
        // through `WatchSession::serve` rather than opening sockets.
        assert!(policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_raw_net);
        // Watch joined the hot + instrumented sets.
        assert!(policy_for("crates/watch/src/slo.rs").deny_panics);
        assert!(policy_for("crates/watch/src/rollup.rs").deny_raw_instant);
    }

    #[test]
    fn alloc_confinement_policy_mapping() {
        // The counting allocator is the sole sanctioned declaration site.
        assert!(!policy_for("crates/profile/src/alloc.rs").deny_global_alloc);
        assert!(policy_for("crates/profile/src/fold.rs").deny_global_alloc);
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_global_alloc);
        // Bins are NOT exempt: they opt in via the cargo feature.
        assert!(policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_global_alloc);
        // Profile joined the hot + instrumented sets.
        assert!(policy_for("crates/profile/src/fold.rs").deny_panics);
        assert!(policy_for("crates/profile/src/diff.rs").deny_raw_instant);
        assert!(policy_for("crates/profile/src/lib.rs").require_docs);
    }

    #[test]
    fn print_confinement_policy_mapping() {
        // The log writer is the sole sanctioned library print site.
        assert!(!policy_for("crates/log/src/writer.rs").deny_prints);
        assert!(policy_for("crates/log/src/export.rs").deny_prints);
        assert!(policy_for("crates/bench/src/lib.rs").deny_prints);
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_prints);
        // Bins and CLI entry points own their stdout.
        assert!(!policy_for("crates/bench/src/bin/e2_timeliness.rs").deny_prints);
        assert!(!policy_for("crates/doctor/src/main.rs").deny_prints);
    }

    #[test]
    fn concurrency_policy_mapping() {
        // Spawn confinement: sanctioned modules, bins, and main.rs only.
        assert!(!policy_for("crates/stream/src/pipeline.rs").deny_unsanctioned_spawn);
        assert!(!policy_for("crates/stream/src/broker.rs").deny_unsanctioned_spawn);
        assert!(!policy_for("crates/watch/src/serve.rs").deny_unsanctioned_spawn);
        assert!(!policy_for("crates/bench/src/bin/e1_ingest.rs").deny_unsanctioned_spawn);
        assert!(!policy_for("crates/doctor/src/main.rs").deny_unsanctioned_spawn);
        assert!(policy_for("crates/store/src/lsm.rs").deny_unsanctioned_spawn);
        assert!(policy_for("crates/watch/src/rollup.rs").deny_unsanctioned_spawn);
        // Channels: workspace-wide, bins included.
        assert!(policy_for("crates/bench/src/bin/e1_ingest.rs").deny_unbounded_channel);
        assert!(policy_for("crates/render/src/layout.rs").deny_unbounded_channel);
        // Blocking: per-record crates only; entries exempt.
        assert!(policy_for("crates/stream/src/pipeline.rs").deny_blocking_hot_path);
        assert!(!policy_for("crates/store/src/lsm.rs").deny_blocking_hot_path);
        assert!(!policy_for("crates/watch/src/main.rs").deny_blocking_hot_path);
        // Atomics: the three counter modules are exempt.
        assert!(policy_for("crates/telemetry/src/metric.rs").relaxed_exempt);
        assert!(policy_for("crates/telemetry/src/time.rs").relaxed_exempt);
        assert!(policy_for("crates/profile/src/alloc.rs").relaxed_exempt);
        assert!(!policy_for("crates/telemetry/src/flight.rs").relaxed_exempt);
        assert!(!policy_for("crates/stream/src/pipeline.rs").relaxed_exempt);
    }

    #[test]
    fn analyze_is_order_independent() {
        let files = vec![
            (
                String::from("crates/stream/src/z.rs"),
                String::from(
                    "fn z(s: &S) { let g = s.beta.lock(); let h = s.alpha.lock(); g; h; }",
                ),
            ),
            (
                String::from("crates/stream/src/a.rs"),
                String::from(
                    "fn a(s: &S) { let g = s.alpha.lock(); let h = s.beta.lock(); g; h; }",
                ),
            ),
        ];
        let mut reversed = files.clone();
        reversed.reverse();
        let b = Baseline::empty();
        let al = Allowlist::empty();
        let r1 = analyze_files(&files, &b, &al);
        let r2 = analyze_files(&reversed, &b, &al);
        assert_eq!(r1.render_text(true), r2.render_text(true));
        assert!(!r1.clean(), "the cycle must be found");
    }
}
