//! Invariant rules evaluated over scrubbed, test-stripped source.
//!
//! See `DESIGN.md` § "Correctness tooling" for the rationale behind each
//! invariant. Severities: a [`Severity::Deny`] finding fails the audit (and
//! the tier-1 test suite); [`Severity::Advice`] findings are informational and
//! printed only in verbose mode.

use crate::lexer;

/// How a finding affects the audit exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit.
    Deny,
    /// Reported in verbose mode; never fails the audit.
    Advice,
}

/// A single rule finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// Effect on exit status.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

/// Per-file rule configuration, derived from the file's crate and path.
#[derive(Debug, Clone, Copy)]
pub struct FilePolicy {
    /// Panic-family calls (`unwrap`/`expect`/`panic!`/...) are denied.
    pub deny_panics: bool,
    /// Wall-clock and entropy sources are denied (simulation determinism).
    pub deny_wall_clock: bool,
    /// Raw `Instant::now()` is denied: telemetry-instrumented crates must
    /// read time through `augur_telemetry::TimeSource`.
    pub deny_raw_instant: bool,
    /// `Registry::global()` is denied: library code must take a
    /// `&Registry` (or a `Tracer`) from the caller so metrics land in the
    /// caller's snapshot; the process-global registry is an
    /// examples/bin-only convenience.
    pub deny_global_registry: bool,
    /// Raw `std::net` socket use is denied: the live health endpoint in
    /// `crates/watch/src/serve.rs` is the sole sanctioned network site, so
    /// every listener the workspace opens is inventoried in one place.
    pub deny_raw_net: bool,
    /// Declaring or implementing a global allocator is denied: the counting
    /// allocator in `crates/profile/src/alloc.rs` is the sole sanctioned
    /// site (bins/tests opt in via the `global-alloc` cargo feature, never
    /// by declaring their own).
    pub deny_global_alloc: bool,
    /// `println!`/`eprintln!`/`dbg!` are denied: library code emits
    /// structured events through `augur-log`, or routes a genuine console
    /// line through the sanctioned writer
    /// ([`crate::scan::PRINT_EXEMPT`]). Bins, CLIs, and tests are exempt.
    pub deny_prints: bool,
    /// Slice-indexing advisories are collected.
    pub advise_indexing: bool,
    /// The file is a crate root whose public items must be documented.
    pub require_docs: bool,
    /// `thread::spawn` / `thread::Builder` are denied: threads are confined
    /// to the sanctioned worker-pool modules ([`crate::scan::SPAWN_EXEMPT`]),
    /// bins, and tests.
    pub deny_unsanctioned_spawn: bool,
    /// Every `thread::spawn` in this file must register a worker lane:
    /// the enclosing function must reference a `Lane*` symbol
    /// (`Lanes::register`, `LaneIo`, ...). True for the sanctioned
    /// worker-pool modules ([`crate::scan::LANE_REQUIRED`]), so no
    /// worker thread escapes the per-lane flight rings and the
    /// busy/blocked accounting that xray's measured parallel efficiency
    /// is built on.
    pub require_lane_registration: bool,
    /// Unbounded channels (and bare-literal `bounded()` capacities) are
    /// denied: every queue needs named, auditable backpressure.
    pub deny_unbounded_channel: bool,
    /// Blocking operations are denied, directly and one call hop away: the
    /// file is on the per-record hot path and must never stall a frame.
    pub deny_blocking_hot_path: bool,
    /// `Ordering::Relaxed` is permitted without an allowlist entry: the
    /// file is a sanctioned counter module
    /// ([`crate::scan::ATOMICS_EXEMPT`]).
    pub relaxed_exempt: bool,
    /// The file is a binary entry point (`src/bin/` or `src/main.rs`):
    /// exempt from spawn confinement and excluded from the call index.
    pub is_entry: bool,
}

/// Panic-family patterns: method calls checked with exact substrings, macros
/// checked with a word boundary before the name.
const PANIC_METHODS: [(&str, &str); 3] = [
    (".unwrap()", "no-unwrap"),
    (".expect(", "no-expect"),
    (".unwrap_unchecked(", "no-unwrap"),
];

const PANIC_MACROS: [(&str, &str); 4] = [
    ("panic!", "no-panic"),
    ("unreachable!", "no-panic"),
    ("todo!", "no-panic"),
    ("unimplemented!", "no-panic"),
];

/// Lock-discipline patterns denied everywhere in library code: the workspace
/// standard is `parking_lot` (non-poisoning; see vendor/parking_lot).
const STD_LOCKS: [&str; 2] = ["std::sync::Mutex", "std::sync::RwLock"];

/// Determinism patterns denied everywhere: entropy-based RNG construction.
const ENTROPY: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];

/// Network-socket patterns confined to the sanctioned endpoint module.
const RAW_NET: [&str; 4] = ["std::net::", "TcpListener", "TcpStream", "UdpSocket"];

/// Global-allocator patterns confined to the sanctioned accounting module.
const GLOBAL_ALLOC: [&str; 2] = ["global_allocator", "GlobalAlloc"];

/// Console-print macros confined to the sanctioned writer module. Matched at
/// word boundaries, so `println!` inside `eprintln!` reports once.
const PRINT_MACROS: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];

/// Checks one file's source, appending findings to `out`.
pub fn check_source(file: &str, src: &str, policy: FilePolicy, out: &mut Vec<Violation>) {
    let scrubbed = lexer::scrub(src);
    let lib_code = lexer::strip_test_items(&scrubbed);

    if policy.deny_panics {
        for (pat, rule) in PANIC_METHODS {
            for idx in find_all(&lib_code, pat) {
                push(
                    out,
                    file,
                    &lib_code,
                    idx,
                    rule,
                    Severity::Deny,
                    format!(
                        "`{pat}` in library code: propagate through the crate error enum instead"
                    ),
                );
            }
        }
        for (pat, rule) in PANIC_MACROS {
            for idx in find_all(&lib_code, pat) {
                if is_word_start(&lib_code, idx) {
                    push(
                        out,
                        file,
                        &lib_code,
                        idx,
                        rule,
                        Severity::Deny,
                        format!(
                        "`{pat}` in library code: return an error instead of aborting the frame"
                    ),
                    );
                }
            }
        }
    }

    for pat in STD_LOCKS {
        for idx in find_all(&lib_code, pat) {
            push(
                out,
                file,
                &lib_code,
                idx,
                "parking-lot-standard",
                Severity::Deny,
                format!("`{pat}`: the workspace lock standard is parking_lot (non-poisoning)"),
            );
        }
    }
    // `use std::sync::{.., Mutex, ..}` grouped imports dodge the substring
    // match above; check import lines mentioning the tokens.
    for (lineno, line) in lib_code.lines().enumerate() {
        let t = line.trim_start();
        if t.starts_with("use std::sync::")
            && (contains_word(t, "Mutex") || contains_word(t, "RwLock"))
        {
            out.push(Violation {
                file: file.to_string(),
                line: lineno + 1,
                rule: "parking-lot-standard",
                severity: Severity::Deny,
                message: "std::sync lock import: the workspace lock standard is parking_lot"
                    .to_string(),
            });
        }
    }

    for idx in find_all(&lib_code, "SystemTime::now(") {
        push(out, file, &lib_code, idx, "no-wall-clock", Severity::Deny, String::from(
            "`SystemTime::now()` in library code: take timestamps as inputs (sensor clock / event time)"
        ));
    }

    for pat in ENTROPY {
        for idx in find_all(&lib_code, pat) {
            if is_word_start(&lib_code, idx) {
                push(
                    out,
                    file,
                    &lib_code,
                    idx,
                    "seeded-rng-only",
                    Severity::Deny,
                    format!(
                    "`{pat}`: all randomness must come from a seeded StdRng for reproducible runs"
                ),
                );
            }
        }
    }

    // One `Instant::now` scan serves both flags; the stricter simulation
    // rule wins when a path is covered by both so a site is reported once.
    if policy.deny_wall_clock || policy.deny_raw_instant {
        let (rule, message) = if policy.deny_wall_clock {
            (
                "no-wall-clock",
                "`Instant::now()` in simulation code: derive time from the simulated clock",
            )
        } else {
            (
                "time-source-only",
                "raw `Instant::now()` in a telemetry-instrumented crate: read time through \
                 `augur_telemetry::TimeSource` (ManualTime in simulations, MonotonicTime in benches)",
            )
        };
        for idx in find_all(&lib_code, "Instant::now(") {
            push(
                out,
                file,
                &lib_code,
                idx,
                rule,
                Severity::Deny,
                String::from(message),
            );
        }
    }

    if policy.deny_global_registry {
        for idx in find_all(&lib_code, "Registry::global(") {
            push(
                out,
                file,
                &lib_code,
                idx,
                "no-global-registry",
                Severity::Deny,
                String::from(
                    "`Registry::global()` in library code: accept a `&Registry` (or `Tracer`) \
                     from the caller so metrics land in the caller's snapshot; the global \
                     registry is for examples and binaries only",
                ),
            );
        }
    }

    if policy.deny_raw_net {
        for pat in RAW_NET {
            for idx in find_all(&lib_code, pat) {
                if is_word_start(&lib_code, idx) {
                    push(
                        out,
                        file,
                        &lib_code,
                        idx,
                        "net-confined",
                        Severity::Deny,
                        format!(
                            "`{pat}`: raw std::net sockets are confined to the watch \
                             endpoint (crates/watch/src/serve.rs); expose state through \
                             `augur_watch::WatchSession::serve` instead"
                        ),
                    );
                }
            }
        }
    }

    if policy.deny_global_alloc {
        for pat in GLOBAL_ALLOC {
            for idx in find_all(&lib_code, pat) {
                if is_word_start(&lib_code, idx) {
                    push(
                        out,
                        file,
                        &lib_code,
                        idx,
                        "alloc-confined",
                        Severity::Deny,
                        format!(
                            "`{pat}`: global allocators are confined to the counting \
                             allocator (crates/profile/src/alloc.rs); enable the \
                             `global-alloc` feature of augur-profile instead of \
                             declaring one"
                        ),
                    );
                }
            }
        }
    }

    if policy.deny_prints {
        for pat in PRINT_MACROS {
            for idx in find_all(&lib_code, pat) {
                if is_word_start(&lib_code, idx) {
                    push(
                        out,
                        file,
                        &lib_code,
                        idx,
                        "print-confined",
                        Severity::Deny,
                        format!(
                            "`{pat}` in library code: emit a structured event through \
                             `augur-log`, or route a genuine console line through the \
                             sanctioned writer (crates/log/src/writer.rs); ad-hoc prints \
                             bypass levels, rate limits, and the deterministic exporters"
                        ),
                    );
                }
            }
        }
    }

    if policy.advise_indexing {
        for idx in indexing_sites(&lib_code) {
            push(
                out,
                file,
                &lib_code,
                idx,
                "indexing",
                Severity::Advice,
                String::from("slice indexing can panic; prefer `.get()` on untrusted indices"),
            );
        }
    }

    if policy.require_docs {
        check_lib_docs(file, src, &scrubbed, out);
    }
}

/// Requires a doc comment on every `pub` item declared at the top level of a
/// crate root (`lib.rs`) — including `pub use` re-exports and `pub mod`s.
fn check_lib_docs(file: &str, raw: &str, scrubbed: &str, out: &mut Vec<Violation>) {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut depth = 0isize;
    for (lineno, sline) in scrubbed.lines().enumerate() {
        let at_top = depth == 0;
        for c in sline.chars() {
            match c {
                '{' | '(' | '[' => depth += 1,
                '}' | ')' | ']' => depth -= 1,
                _ => {}
            }
        }
        if !at_top {
            continue;
        }
        let trimmed = sline.trim_start();
        if !(trimmed.starts_with("pub ") || trimmed.starts_with("pub(")) {
            continue;
        }
        // Walk upward over attributes to the nearest doc line.
        let mut k = lineno;
        let mut documented = false;
        while k > 0 {
            k -= 1;
            let above = raw_lines.get(k).map(|l| l.trim_start()).unwrap_or("");
            if above.starts_with("#[") || above.starts_with("#![") {
                continue;
            }
            documented = above.starts_with("///") || above.starts_with("#[doc");
            break;
        }
        if !documented {
            out.push(Violation {
                file: file.to_string(),
                line: lineno + 1,
                rule: "documented-exports",
                severity: Severity::Deny,
                message: format!(
                    "undocumented public item in crate root: `{}`",
                    raw_lines.get(lineno).map(|l| l.trim()).unwrap_or("<line>")
                ),
            });
        }
    }
}

/// All char indices at which `pat` occurs in `text`.
fn find_all(text: &str, pat: &str) -> Vec<usize> {
    let tv: Vec<char> = text.chars().collect();
    let pv: Vec<char> = pat.chars().collect();
    let mut hits = Vec::new();
    if pv.is_empty() || tv.len() < pv.len() {
        return hits;
    }
    for i in 0..=(tv.len() - pv.len()) {
        if tv[i..i + pv.len()] == pv[..] {
            hits.push(i);
        }
    }
    hits
}

/// Whether the char before `idx` is not part of an identifier (word boundary).
fn is_word_start(text: &str, idx: usize) -> bool {
    if idx == 0 {
        return true;
    }
    match text.chars().nth(idx - 1) {
        Some(c) => !(c.is_alphanumeric() || c == '_' || c == ':' || c == '.'),
        None => true,
    }
}

/// Whether `word` occurs in `text` bounded by non-identifier characters.
fn contains_word(text: &str, word: &str) -> bool {
    let tv: Vec<char> = text.chars().collect();
    let wv: Vec<char> = word.chars().collect();
    if wv.is_empty() || tv.len() < wv.len() {
        return false;
    }
    for i in 0..=(tv.len() - wv.len()) {
        if tv[i..i + wv.len()] == wv[..] {
            let before_ok = i == 0 || !(tv[i - 1].is_alphanumeric() || tv[i - 1] == '_');
            let after_ok = match tv.get(i + wv.len()) {
                Some(c) => !(c.is_alphanumeric() || *c == '_'),
                None => true,
            };
            if before_ok && after_ok {
                return true;
            }
        }
    }
    false
}

/// Heuristic slice-indexing detector: `ident[`, `)[`, `][` where the bracket
/// is not an attribute (`#[`) and not a type position we can cheaply exclude.
fn indexing_sites(text: &str) -> Vec<usize> {
    let tv: Vec<char> = text.chars().collect();
    let mut hits = Vec::new();
    for (i, &c) in tv.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        // Previous non-space char decides the context.
        let mut p = i;
        let mut prev = None;
        while p > 0 {
            p -= 1;
            if !tv[p].is_whitespace() {
                prev = Some(tv[p]);
                break;
            }
        }
        let indexing =
            matches!(prev, Some(pc) if pc.is_alphanumeric() || pc == '_' || pc == ')' || pc == ']');
        if !indexing {
            continue;
        }
        // Exclude empty-or-range-only brackets (`a[..]` clones a slice view).
        hits.push(i);
    }
    hits
}

fn push(
    out: &mut Vec<Violation>,
    file: &str,
    text: &str,
    idx: usize,
    rule: &'static str,
    severity: Severity,
    message: String,
) {
    out.push(Violation {
        file: file.to_string(),
        line: lexer::line_of(text, idx),
        rule,
        severity,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRICT: FilePolicy = FilePolicy {
        deny_panics: true,
        deny_wall_clock: true,
        deny_raw_instant: false,
        deny_global_registry: true,
        deny_raw_net: true,
        deny_global_alloc: true,
        deny_prints: true,
        advise_indexing: true,
        require_docs: false,
        deny_unsanctioned_spawn: true,
        require_lane_registration: false,
        deny_unbounded_channel: true,
        deny_blocking_hot_path: false,
        relaxed_exempt: false,
        is_entry: false,
    };

    fn deny_rules(src: &str) -> Vec<&'static str> {
        let mut v = Vec::new();
        check_source("t.rs", src, STRICT, &mut v);
        v.into_iter()
            .filter(|x| x.severity == Severity::Deny)
            .map(|x| x.rule)
            .collect()
    }

    #[test]
    fn flags_panic_family() {
        assert_eq!(deny_rules("fn f() { x.unwrap(); }"), vec!["no-unwrap"]);
        assert_eq!(deny_rules("fn f() { x.expect(\"m\"); }"), vec!["no-expect"]);
        assert_eq!(deny_rules("fn f() { panic!(\"m\"); }"), vec!["no-panic"]);
        assert_eq!(deny_rules("fn f() { todo!(); }"), vec!["no-panic"]);
    }

    #[test]
    fn ignores_test_code_and_literals() {
        assert!(deny_rules("#[cfg(test)] mod t { fn f() { x.unwrap(); } }").is_empty());
        assert!(deny_rules("fn f() { let s = \"x.unwrap()\"; }").is_empty());
        assert!(deny_rules("// x.unwrap()\nfn f() {}").is_empty());
    }

    #[test]
    fn no_false_positive_on_related_names() {
        assert!(deny_rules("fn f() { x.unwrap_or(0); }").is_empty());
        assert!(deny_rules("fn f() { x.unwrap_or_else(|| 0); }").is_empty());
        assert!(deny_rules("fn f() { x.expect_err(\"m\"); }").is_empty());
        assert!(deny_rules("fn f() { debug_assert!(true); }").is_empty());
    }

    #[test]
    fn flags_std_locks_and_clock() {
        assert_eq!(
            deny_rules("use std::sync::Mutex;"),
            vec!["parking-lot-standard", "parking-lot-standard"]
        );
        assert_eq!(
            deny_rules("use std::sync::{Arc, Mutex};"),
            vec!["parking-lot-standard"]
        );
        assert!(deny_rules("use std::sync::Arc;").is_empty());
        assert_eq!(
            deny_rules("fn f() { let t = std::time::SystemTime::now(); }"),
            vec!["no-wall-clock"]
        );
        assert_eq!(
            deny_rules("fn f() { let r = thread_rng(); }"),
            vec!["seeded-rng-only"]
        );
    }

    #[test]
    fn doc_rule_applies_to_lib_root() {
        let policy = FilePolicy {
            deny_panics: false,
            deny_wall_clock: false,
            deny_raw_instant: false,
            deny_global_registry: false,
            deny_raw_net: false,
            deny_global_alloc: false,
            deny_prints: false,
            advise_indexing: false,
            require_docs: true,
            deny_unsanctioned_spawn: false,
            require_lane_registration: false,
            deny_unbounded_channel: false,
            deny_blocking_hot_path: false,
            relaxed_exempt: false,
            is_entry: false,
        };
        let mut v = Vec::new();
        check_source(
            "lib.rs",
            "/// Documented.\npub mod a;\npub use a::Thing;\n",
            policy,
            &mut v,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "documented-exports");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn raw_instant_rule_and_precedence() {
        let instrumented = FilePolicy {
            deny_wall_clock: false,
            deny_raw_instant: true,
            ..STRICT
        };
        let mut v = Vec::new();
        check_source(
            "t.rs",
            "fn f() { let t = std::time::Instant::now(); }",
            instrumented,
            &mut v,
        );
        let rules: Vec<_> = v
            .iter()
            .filter(|x| x.severity == Severity::Deny)
            .map(|x| x.rule)
            .collect();
        assert_eq!(rules, vec!["time-source-only"]);

        // When a path is both simulation and instrumented, the site is
        // reported once, under the simulation rule.
        let both = FilePolicy {
            deny_raw_instant: true,
            ..STRICT
        };
        let mut v = Vec::new();
        check_source("t.rs", "fn f() { Instant::now(); }", both, &mut v);
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["no-wall-clock"]);

        // Elapsed reads on an existing Instant are fine; only `now` is the
        // sanctioned-clock bypass.
        let mut v = Vec::new();
        check_source(
            "t.rs",
            "fn f(t: std::time::Instant) -> u128 { t.elapsed().as_nanos() }",
            instrumented,
            &mut v,
        );
        assert!(v.iter().all(|x| x.severity != Severity::Deny));
    }

    #[test]
    fn flags_global_registry_in_library_code() {
        assert_eq!(
            deny_rules("fn f() { let c = Registry::global().counter(\"x\"); }"),
            vec!["no-global-registry"]
        );
        assert_eq!(
            deny_rules("fn f() { augur_telemetry::Registry::global().gauge(\"g\").set(1.0); }"),
            vec!["no-global-registry"]
        );
        // Test code, comments, and passing a registry are all fine.
        assert!(deny_rules("#[cfg(test)] mod t { fn f() { Registry::global(); } }").is_empty());
        assert!(deny_rules("// call Registry::global() from bins only\nfn f() {}").is_empty());
        assert!(deny_rules("fn f(r: &Registry) { r.counter(\"x\").inc(); }").is_empty());
        // Exempt policy (bins): no finding.
        let bin_policy = FilePolicy {
            deny_global_registry: false,
            ..STRICT
        };
        let mut v = Vec::new();
        check_source("b.rs", "fn f() { Registry::global(); }", bin_policy, &mut v);
        assert!(v.iter().all(|x| x.rule != "no-global-registry"));
    }

    #[test]
    fn flags_raw_net_outside_the_endpoint() {
        // The path form is reported once at the `std::net::` site (the
        // type name after `::` is not at a word boundary), and bare type
        // names are caught wherever the import was split from the use.
        assert_eq!(
            deny_rules("fn f() { let l = std::net::TcpListener::bind(\"a\"); }"),
            vec!["net-confined"]
        );
        assert_eq!(
            deny_rules("fn f() { let s = TcpStream::connect(\"a\"); }"),
            vec!["net-confined"]
        );
        assert_eq!(
            deny_rules("fn f() { let u = UdpSocket::bind(\"a\"); }"),
            vec!["net-confined"]
        );
        // Comments, strings, and test code never trip the rule.
        assert!(deny_rules("// std::net::TcpStream is confined\nfn f() {}").is_empty());
        assert!(
            deny_rules("#[cfg(test)] mod t { fn f() { TcpListener::bind(\"a\"); } }").is_empty()
        );
        // The sanctioned endpoint policy is exempt.
        let endpoint = FilePolicy {
            deny_raw_net: false,
            ..STRICT
        };
        let mut v = Vec::new();
        check_source(
            "serve.rs",
            "fn f() { let l = std::net::TcpListener::bind(\"a\"); }",
            endpoint,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "net-confined"));
    }

    #[test]
    fn flags_global_allocator_outside_the_sanctioned_site() {
        assert_eq!(
            deny_rules("#[global_allocator]\nstatic A: std::alloc::System = std::alloc::System;\n"),
            vec!["alloc-confined"]
        );
        assert_eq!(
            deny_rules("unsafe impl GlobalAlloc for MyAlloc {}\n"),
            vec!["alloc-confined"]
        );
        // Comments, strings, and test code never trip the rule.
        assert!(deny_rules("// a #[global_allocator] would be denied\nfn f() {}").is_empty());
        assert!(deny_rules("#[cfg(test)] mod t { unsafe impl GlobalAlloc for T {} }").is_empty());
        // The sanctioned accounting-module policy is exempt.
        let sanctioned = FilePolicy {
            deny_global_alloc: false,
            ..STRICT
        };
        let mut v = Vec::new();
        check_source(
            "alloc.rs",
            "#[global_allocator]\nstatic G: C = C;\n",
            sanctioned,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "alloc-confined"));
    }

    #[test]
    fn flags_prints_outside_the_sanctioned_writer() {
        assert_eq!(
            deny_rules("fn f() { println!(\"progress {}\", 1); }"),
            vec!["print-confined"]
        );
        // `println!` inside `eprintln!` is not a second word-boundary
        // match: the site reports exactly once.
        assert_eq!(
            deny_rules("fn f() { eprintln!(\"oops\"); }"),
            vec!["print-confined"]
        );
        assert_eq!(
            deny_rules("fn f(x: u32) { dbg!(x); }"),
            vec!["print-confined"]
        );
        assert_eq!(
            deny_rules("fn f() { print!(\"a\"); eprint!(\"b\"); }"),
            vec!["print-confined", "print-confined"]
        );
        // Comments, strings, test code, and lookalike names never trip it.
        assert!(deny_rules("// println!(\"doc\") is denied here\nfn f() {}").is_empty());
        assert!(deny_rules("fn f() { let s = \"println!(no)\"; }").is_empty());
        assert!(deny_rules("#[cfg(test)] mod t { fn f() { println!(\"ok\"); } }").is_empty());
        assert!(deny_rules("fn f(w: &mut String) { my_println!(w); }").is_empty());
        // The sanctioned writer policy is exempt.
        let writer = FilePolicy {
            deny_prints: false,
            ..STRICT
        };
        let mut v = Vec::new();
        check_source(
            "writer.rs",
            "pub fn out_line(line: &str) { println!(\"{line}\"); }",
            writer,
            &mut v,
        );
        assert!(v.iter().all(|x| x.rule != "print-confined"));
    }

    #[test]
    fn indexing_is_advice_only() {
        let mut v = Vec::new();
        check_source("t.rs", "fn f(a: &[u8]) -> u8 { a[0] }", STRICT, &mut v);
        assert!(v.iter().all(|x| x.severity == Severity::Advice));
        assert!(v.iter().any(|x| x.rule == "indexing"));
    }
}
