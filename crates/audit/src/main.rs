//! CLI for the workspace static audit.
//!
//! Exit codes: `0` clean (no unsuppressed denials, no stale baseline
//! entries), `1` violations / stale suppressions / failed self-test,
//! `2` usage error, `3` internal error (I/O, malformed baseline or
//! allowlist). The 1-vs-3 split matters in CI: a red `1` means the tree
//! regressed; a red `3` means the audit itself could not run.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use augur_audit::{explain, sarif, scan, selftest};

const USAGE: &str = "augur-audit — workspace static analysis\n\n\
USAGE: augur-audit [OPTIONS]\n\n\
OPTIONS:\n\
  --root <dir>       workspace root (default: the build workspace)\n\
  --format <fmt>     output format: text (default) or sarif\n\
  --output <path>    write the report to a file instead of stdout\n\
  --baseline <path>  suppression file (default: <root>/audit.baseline.json)\n\
  --allow <path>     Relaxed-ordering allowlist (default: <root>/audit.allow)\n\
  --explain <rule>   print one rule's documentation (or `all`) and exit\n\
  --verbose, -v      also print advisories and baseline-suppressed findings\n\
  --self-test        run the analyzer against seeded violation fixtures\n\
  --help, -h         this text\n\n\
EXIT CODES: 0 clean, 1 violations or stale baseline entries, 2 usage,\n\
3 internal error (I/O or malformed baseline/allowlist).";

struct Cli {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    allow: Option<PathBuf>,
    output: Option<PathBuf>,
    format: String,
    verbose: bool,
    self_test: bool,
}

enum Parsed {
    Run(Cli),
    Done(ExitCode),
}

fn parse_args() -> Parsed {
    let mut cli = Cli {
        root: None,
        baseline: None,
        allow: None,
        output: None,
        format: String::from("text"),
        verbose: false,
        self_test: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-test" => cli.self_test = true,
            "--verbose" | "-v" => cli.verbose = true,
            "--root" | "--baseline" | "--allow" | "--output" | "--format" => {
                let Some(value) = args.next() else {
                    eprintln!("error: {arg} requires a value");
                    return Parsed::Done(ExitCode::from(2));
                };
                match arg.as_str() {
                    "--root" => cli.root = Some(PathBuf::from(value)),
                    "--baseline" => cli.baseline = Some(PathBuf::from(value)),
                    "--allow" => cli.allow = Some(PathBuf::from(value)),
                    "--output" => cli.output = Some(PathBuf::from(value)),
                    _ => {
                        if value != "text" && value != "sarif" {
                            eprintln!("error: --format must be `text` or `sarif`");
                            return Parsed::Done(ExitCode::from(2));
                        }
                        cli.format = value;
                    }
                }
            }
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("error: --explain requires a rule code (or `all`)");
                    return Parsed::Done(ExitCode::from(2));
                };
                if code == "all" {
                    print!("{}", explain::index());
                    return Parsed::Done(ExitCode::SUCCESS);
                }
                return match explain::explain(&code) {
                    Some(text) => {
                        print!("{text}");
                        Parsed::Done(ExitCode::SUCCESS)
                    }
                    None => {
                        eprintln!("error: unknown rule `{code}`; try --explain all");
                        Parsed::Done(ExitCode::from(2))
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Parsed::Done(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return Parsed::Done(ExitCode::from(2));
            }
        }
    }
    Parsed::Run(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Parsed::Run(cli) => cli,
        Parsed::Done(code) => return code,
    };

    if cli.self_test {
        return match selftest::run() {
            Ok(()) => {
                println!("audit self-test: ok (all seeded violations detected)");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("audit self-test: FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    // Default root: the workspace this binary was built from.
    let root = cli
        .root
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    // Explicit baseline/allow paths must exist and parse (exit 3 if not);
    // the default discovery treats missing files as empty inputs.
    let mut opts = match scan::AuditOptions::discover(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(3);
        }
    };
    if let Some(path) = &cli.baseline {
        opts.baseline = match augur_audit::Baseline::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        };
    }
    if let Some(path) = &cli.allow {
        opts.allow = match augur_audit::Allowlist::load(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(3);
            }
        };
    }

    let report = match scan::audit_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: audit scan failed under {}: {e}", root.display());
            return ExitCode::from(3);
        }
    };

    let rendered = if cli.format == "sarif" {
        sarif::render(&report)
    } else {
        report.render_text(cli.verbose)
    };
    match &cli.output {
        Some(path) => {
            if let Err(e) = fs::write(path, &rendered) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::from(3);
            }
        }
        None => print!("{rendered}"),
    }

    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
