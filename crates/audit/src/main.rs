//! CLI for the workspace static audit.
//!
//! Exit codes: `0` clean, `1` deny-level violations (or failed self-test),
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use augur_audit::{scan, selftest, Severity};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut self_test = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-test" => self_test = true,
            "--verbose" | "-v" => verbose = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "augur-audit — workspace static analysis\n\n\
                     USAGE: augur-audit [--root <dir>] [--verbose] [--self-test]\n\n\
                     Checks panic-freedom (hot crates), parking_lot lock discipline,\n\
                     determinism (no wall clock / unseeded RNG in simulation code), and\n\
                     documented crate-root exports. Exit 0 = clean, 1 = violations."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if self_test {
        return match selftest::run() {
            Ok(()) => {
                println!("audit self-test: ok (all seeded violations detected)");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("audit self-test: FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match scan::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: audit scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut denials = 0usize;
    let mut advice = 0usize;
    for v in &report.violations {
        match v.severity {
            Severity::Deny => {
                denials += 1;
                eprintln!("deny  {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
            }
            Severity::Advice => {
                advice += 1;
                if verbose {
                    eprintln!("note  {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
                }
            }
        }
    }

    println!(
        "audit: {} files scanned, {} deny, {} advisory{}",
        report.files_scanned,
        denials,
        advice,
        if advice > 0 && !verbose {
            " (re-run with --verbose to list advisories)"
        } else {
            ""
        }
    );

    if denials > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
