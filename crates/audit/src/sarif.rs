//! SARIF 2.1.0 export.
//!
//! Emits the audit report in the Static Analysis Results Interchange
//! Format so CI systems and editors can ingest findings natively. The
//! document carries one run: the tool descriptor lists every rule with
//! its `--explain` summary; each finding becomes a `result` with a
//! physical location; baseline-suppressed findings are included with an
//! `external` suppression record so the burn-down backlog stays visible
//! in SARIF viewers instead of vanishing.

use crate::explain;
use crate::rules::{Severity, Violation};
use crate::scan::Report;

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn result_json(v: &Violation, suppressed: bool) -> String {
    let level = match v.severity {
        Severity::Deny => "error",
        Severity::Advice => "note",
    };
    let suppressions = if suppressed {
        ",\"suppressions\":[{\"kind\":\"external\"}]"
    } else {
        ""
    };
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\",\
         \"uriBaseId\":\"SRCROOT\"}},\"region\":{{\"startLine\":{}}}}}}}]{suppressions}}}",
        esc(v.rule),
        esc(&v.message),
        esc(&v.file),
        v.line.max(1),
    )
}

/// Renders a [`Report`] as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    let mut rules = Vec::new();
    for (code, summary, detail) in explain::RULES {
        rules.push(format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"fullDescription\":{{\"text\":\"{}\"}}}}",
            esc(code),
            esc(summary),
            esc(detail)
        ));
    }
    let mut results = Vec::new();
    for v in &report.violations {
        results.push(result_json(v, false));
    }
    for v in &report.suppressed {
        results.push(result_json(v, true));
    }
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":\
         {{\"driver\":{{\"name\":\"augur-audit\",\"informationUri\":\
         \"https://example.invalid/augur\",\"version\":\"0.2.0\",\"rules\":[{}]}}}},\
         \"results\":[{}],\"columnKind\":\"utf16CodeUnits\"}}]}}",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;

    fn vio(rule: &'static str, msg: &str) -> Violation {
        Violation {
            file: String::from("crates/x/src/a.rs"),
            line: 7,
            rule,
            severity: Severity::Deny,
            message: msg.to_string(),
        }
    }

    #[test]
    fn emits_valid_json_with_rules_results_and_suppressions() {
        let report = Report {
            violations: vec![vio("no-unwrap", "quote \" and \\ and\nnewline")],
            suppressed: vec![vio("no-blocking-hot-path", "suppressed one")],
            stale_suppressions: Vec::new(),
            files_scanned: 1,
        };
        let doc = render(&report);
        let parsed = match baseline::parse_json(&doc) {
            Ok(p) => p,
            Err(e) => panic!("SARIF must parse as JSON: {e}"),
        };
        assert_eq!(
            parsed.get("version").and_then(baseline::Json::as_str),
            Some("2.1.0")
        );
        let runs = parsed.get("runs").and_then(baseline::Json::as_array);
        let run = runs.and_then(<[baseline::Json]>::first);
        let results = run
            .and_then(|r| r.get("results"))
            .and_then(baseline::Json::as_array)
            .map(<[baseline::Json]>::len);
        assert_eq!(results, Some(2));
        assert!(doc.contains("\"suppressions\":[{\"kind\":\"external\"}]"));
        assert!(doc.contains("\"startLine\":7"));
        // Every documented rule appears in the driver descriptor.
        for (code, _, _) in explain::RULES {
            assert!(doc.contains(&format!("\"id\":\"{code}\"")), "{code}");
        }
    }
}
