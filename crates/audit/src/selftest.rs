//! Audit self-test: seeds violations into a throwaway tree and asserts the
//! scanner reports them (and that clean code passes). Guards against the
//! analyzer silently rotting into a no-op.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scan;

/// A seeded violation fixture: file path (workspace-relative), source, and
/// the deny rules the scanner must fire on it.
const FIXTURES: [(&str, &str, &[&str]); 10] = [
    (
        "crates/render/src/bad_global_registry.rs",
        "fn f() { let c = augur_telemetry::Registry::global().counter(\"frames\"); c.inc(); }\n",
        &["no-global-registry"],
    ),
    (
        "crates/stream/src/bad_unwrap.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        &["no-unwrap"],
    ),
    (
        "crates/geo/src/bad_panic.rs",
        "fn f() { panic!(\"boom\"); }\n",
        &["no-panic"],
    ),
    (
        "crates/store/src/bad_lock.rs",
        "use std::sync::{Arc, Mutex};\nfn f() {}\n",
        &["parking-lot-standard"],
    ),
    (
        "crates/sensor/src/bad_clock.rs",
        "fn now_us() -> u128 { std::time::Instant::now().elapsed().as_micros() }\n",
        &["no-wall-clock"],
    ),
    (
        "crates/core/src/scenario/bad_entropy.rs",
        "fn f() { let mut rng = thread_rng(); }\n",
        &["seeded-rng-only"],
    ),
    (
        "crates/store/src/bad_instant.rs",
        "fn now_us() -> u128 { std::time::Instant::now().elapsed().as_micros() }\n",
        &["time-source-only"],
    ),
    (
        "crates/semantic/src/lib.rs",
        "//! Crate docs.\npub mod undocumented_item;\n",
        &["documented-exports"],
    ),
    (
        "crates/stream/src/bad_net.rs",
        "fn f() -> std::io::Result<()> { let _l = std::net::TcpListener::bind(\"127.0.0.1:0\")?; Ok(()) }\n",
        &["net-confined"],
    ),
    (
        "crates/stream/src/bad_alloc.rs",
        "#[global_allocator]\nstatic ALLOC: std::alloc::System = std::alloc::System;\n",
        &["alloc-confined"],
    ),
];

/// Clean fixture for the time-source exemption: raw `Instant::now()` is
/// allowed only at `crates/telemetry/src/time.rs`, the sanctioned
/// `MonotonicTime` implementation site. (Telemetry is a hot crate, so the
/// fixture must also be panic-free.)
const CLEAN_TIME_SOURCE: &str = r#"//! Clean fixture: the sanctioned monotonic clock read.
use std::time::Instant;

/// Nanoseconds since an origin instant.
pub fn since(origin: Instant) -> u64 {
    let nanos = Instant::now().duration_since(origin).as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}
"#;

/// Clean fixture for the net exemption: raw `std::net` sockets are allowed
/// only at `crates/watch/src/serve.rs`, the sanctioned live-endpoint site.
/// (Watch is a hot, instrumented crate, so the fixture must also be
/// panic-free and must not read `Instant::now()`.)
const CLEAN_NET_ENDPOINT: &str = r#"//! Clean fixture: the sanctioned endpoint socket site.
use std::net::TcpListener;

/// Binds an ephemeral listener.
pub fn bind_any() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}
"#;

/// Clean fixture for the alloc exemption: declaring/implementing a global
/// allocator is allowed only at `crates/profile/src/alloc.rs`, the
/// sanctioned counting-allocator site. (Profile is a hot, instrumented
/// crate, so the fixture must also be panic-free and clock-clean.)
const CLEAN_ALLOC_SITE: &str = r#"//! Clean fixture: the sanctioned counting-allocator site.
use std::alloc::{GlobalAlloc, Layout, System};

/// Counts allocations while forwarding to the system allocator.
pub struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
"#;

/// Clean source that must produce zero deny findings even under the strictest
/// policy (hot crate): test-gated panics, literals, and error propagation.
const CLEAN: &str = r#"//! Clean fixture.
use std::sync::Arc;

/// Divides safely.
pub fn safe_div(a: u32, b: u32) -> Result<u32, String> {
    a.checked_div(b).ok_or_else(|| "division by zero".to_string())
}

fn doc_mentions() {
    // A comment saying x.unwrap() and panic!() must not trip the scanner.
    let _s = "x.unwrap() panic!(\"no\") std::sync::Mutex";
    let _arc = Arc::new(());
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
"#;

/// Runs the self-test. Returns `Ok(())` when the scanner catches every seeded
/// violation and passes the clean fixture; `Err` describes the first failure.
pub fn run() -> Result<(), String> {
    let root = temp_root()?;
    let result = run_in(&root);
    // Best-effort cleanup; a leftover temp tree is harmless.
    let _ = fs::remove_dir_all(&root);
    result
}

fn run_in(root: &Path) -> Result<(), String> {
    // Seed every violation fixture plus one clean file per policy tier.
    for (rel, source, _) in FIXTURES {
        write_fixture(root, rel, source)?;
    }
    write_fixture(root, "crates/stream/src/clean.rs", CLEAN)?;
    write_fixture(root, "crates/telemetry/src/time.rs", CLEAN_TIME_SOURCE)?;
    write_fixture(root, "crates/watch/src/serve.rs", CLEAN_NET_ENDPOINT)?;
    write_fixture(root, "crates/profile/src/alloc.rs", CLEAN_ALLOC_SITE)?;

    let report = scan::audit_workspace(root).map_err(|e| format!("self-test scan failed: {e}"))?;

    for (rel, _, expected_rules) in FIXTURES {
        for rule in expected_rules {
            let hit = report.denials().any(|v| v.file == rel && v.rule == *rule);
            if !hit {
                return Err(format!(
                    "self-test: seeded violation `{rule}` in {rel} was NOT detected"
                ));
            }
        }
    }

    let clean_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/stream/src/clean.rs")
        .collect();
    if !clean_denials.is_empty() {
        return Err(format!(
            "self-test: clean fixture produced deny findings: {clean_denials:?}"
        ));
    }

    let exempt_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/telemetry/src/time.rs")
        .collect();
    if !exempt_denials.is_empty() {
        return Err(format!(
            "self-test: sanctioned time-source site produced deny findings: {exempt_denials:?}"
        ));
    }

    let endpoint_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/watch/src/serve.rs")
        .collect();
    if !endpoint_denials.is_empty() {
        return Err(format!(
            "self-test: sanctioned endpoint socket site produced deny findings: {endpoint_denials:?}"
        ));
    }

    let alloc_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/profile/src/alloc.rs")
        .collect();
    if !alloc_denials.is_empty() {
        return Err(format!(
            "self-test: sanctioned allocator site produced deny findings: {alloc_denials:?}"
        ));
    }
    Ok(())
}

fn write_fixture(root: &Path, rel: &str, source: &str) -> Result<(), String> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("self-test mkdir: {e}"))?;
    }
    fs::write(&path, source).map_err(|e| format!("self-test write: {e}"))
}

fn temp_root() -> Result<PathBuf, String> {
    let base = std::env::temp_dir().join(format!("augur-audit-selftest-{}", std::process::id()));
    if base.exists() {
        let _ = fs::remove_dir_all(&base);
    }
    fs::create_dir_all(&base).map_err(|e: io::Error| format!("self-test tempdir: {e}"))?;
    Ok(base)
}

#[cfg(test)]
mod tests {
    #[test]
    fn selftest_passes() {
        super::run().expect("audit self-test must pass");
    }
}
