//! Audit self-test: seeds violations into a throwaway tree and asserts the
//! scanner reports them (and that clean code passes). Guards against the
//! analyzer silently rotting into a no-op.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scan;

/// A seeded violation fixture: file path (workspace-relative), source, and
/// the deny rules the scanner must fire on it.
const FIXTURES: [(&str, &str, &[&str]); 21] = [
    (
        "crates/stream/src/bad_cycle_a.rs",
        "pub fn ab(s: &Shared) {\n    let g = s.alpha.lock();\n    let h = s.beta.lock();\n    drop(h);\n    drop(g);\n}\n",
        &["lock-order-cycle"],
    ),
    (
        "crates/stream/src/bad_cycle_b.rs",
        "pub fn ba(s: &Shared) {\n    let g = s.beta.lock();\n    let h = s.alpha.lock();\n    drop(h);\n    drop(g);\n}\n",
        &["lock-order-cycle"],
    ),
    (
        "crates/stream/src/bad_block_op.rs",
        "pub fn op() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
        &["no-blocking-hot-path"],
    ),
    (
        "crates/stream/src/bad_reach.rs",
        "pub fn per_record(x: u32) -> u32 {\n    helper_wait();\n    x\n}\n",
        &["no-blocking-hot-path"],
    ),
    (
        "crates/semantic/src/bad_wait_helper.rs",
        "pub fn helper_wait() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
        &[],
    ),
    (
        "crates/semantic/src/bad_unbounded.rs",
        "pub fn make() -> (crossbeam::channel::Sender<u32>, crossbeam::channel::Receiver<u32>) {\n    crossbeam::channel::unbounded::<u32>()\n}\n",
        &["bounded-channels-only"],
    ),
    (
        "crates/stream/src/bad_bounded_literal.rs",
        "pub fn make() -> (crossbeam::channel::Sender<u32>, crossbeam::channel::Receiver<u32>) {\n    crossbeam::channel::bounded::<u32>(4096)\n}\n",
        &["bounded-channels-only"],
    ),
    (
        "crates/store/src/bad_spawn.rs",
        "pub fn background() -> std::thread::JoinHandle<()> {\n    std::thread::spawn(|| {})\n}\n",
        &["spawn-confined"],
    ),
    (
        "crates/stream/src/broker.rs",
        "pub fn background_flush<F: FnOnce() + Send + 'static>(f: F) -> std::thread::JoinHandle<()> {\n    std::thread::spawn(f)\n}\n",
        &["spawn-lane-registered"],
    ),
    (
        "crates/geo/src/bad_relaxed.rs",
        "use std::sync::atomic::{AtomicBool, Ordering};\npub fn raise(flag: &AtomicBool) {\n    flag.store(true, Ordering::Relaxed);\n}\n",
        &["atomics-ordering"],
    ),
    (
        "crates/render/src/bad_global_registry.rs",
        "fn f() { let c = augur_telemetry::Registry::global().counter(\"frames\"); c.inc(); }\n",
        &["no-global-registry"],
    ),
    (
        "crates/stream/src/bad_unwrap.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        &["no-unwrap"],
    ),
    (
        "crates/geo/src/bad_panic.rs",
        "fn f() { panic!(\"boom\"); }\n",
        &["no-panic"],
    ),
    (
        "crates/store/src/bad_lock.rs",
        "use std::sync::{Arc, Mutex};\nfn f() {}\n",
        &["parking-lot-standard"],
    ),
    (
        "crates/sensor/src/bad_clock.rs",
        "fn now_us() -> u128 { std::time::Instant::now().elapsed().as_micros() }\n",
        &["no-wall-clock"],
    ),
    (
        "crates/core/src/scenario/bad_entropy.rs",
        "fn f() { let mut rng = thread_rng(); }\n",
        &["seeded-rng-only"],
    ),
    (
        "crates/store/src/bad_instant.rs",
        "fn now_us() -> u128 { std::time::Instant::now().elapsed().as_micros() }\n",
        &["time-source-only"],
    ),
    (
        "crates/semantic/src/lib.rs",
        "//! Crate docs.\npub mod undocumented_item;\n",
        &["documented-exports"],
    ),
    (
        "crates/stream/src/bad_net.rs",
        "fn f() -> std::io::Result<()> { let _l = std::net::TcpListener::bind(\"127.0.0.1:0\")?; Ok(()) }\n",
        &["net-confined"],
    ),
    (
        "crates/stream/src/bad_alloc.rs",
        "#[global_allocator]\nstatic ALLOC: std::alloc::System = std::alloc::System;\n",
        &["alloc-confined"],
    ),
    (
        "crates/render/src/bad_print.rs",
        "pub fn report(frames: usize) {\n    println!(\"rendered {frames} frames\");\n    dbg!(frames);\n}\n",
        &["print-confined"],
    ),
];

/// Clean fixture for the time-source exemption: raw `Instant::now()` is
/// allowed only at `crates/telemetry/src/time.rs`, the sanctioned
/// `MonotonicTime` implementation site. (Telemetry is a hot crate, so the
/// fixture must also be panic-free.)
const CLEAN_TIME_SOURCE: &str = r#"//! Clean fixture: the sanctioned monotonic clock read.
use std::time::Instant;

/// Nanoseconds since an origin instant.
pub fn since(origin: Instant) -> u64 {
    let nanos = Instant::now().duration_since(origin).as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}
"#;

/// Clean fixture for the net exemption: raw `std::net` sockets are allowed
/// only at `crates/watch/src/serve.rs`, the sanctioned live-endpoint site.
/// (Watch is a hot, instrumented crate, so the fixture must also be
/// panic-free and must not read `Instant::now()`.)
const CLEAN_NET_ENDPOINT: &str = r#"//! Clean fixture: the sanctioned endpoint socket site.
use std::net::TcpListener;

/// Binds an ephemeral listener.
pub fn bind_any() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}
"#;

/// Clean fixture for the alloc exemption: declaring/implementing a global
/// allocator is allowed only at `crates/profile/src/alloc.rs`, the
/// sanctioned counting-allocator site. (Profile is a hot, instrumented
/// crate, so the fixture must also be panic-free and clock-clean.)
const CLEAN_ALLOC_SITE: &str = r#"//! Clean fixture: the sanctioned counting-allocator site.
use std::alloc::{GlobalAlloc, Layout, System};

/// Counts allocations while forwarding to the system allocator.
pub struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
"#;

/// Clean fixture for spawn confinement and channel discipline: a
/// `thread::spawn` and a named-capacity `bounded()` are both fine inside
/// the sanctioned worker-pool module `crates/stream/src/pipeline.rs` —
/// provided the spawning function registers a trace lane
/// (`spawn-lane-registered`). (Stream is hot and per-record, so the
/// fixture is also panic-free and contains no blocking operations.)
const CLEAN_SPAWN_SITE: &str = r#"//! Clean fixture: the sanctioned worker-pool spawn site.
use std::thread;

/// Channel capacity for the worker pool.
pub const POOL_CAPACITY: usize = 64;

/// Builds the pool's bounded channel (named capacity: passes the audit).
pub fn pool_channel() -> (crossbeam::channel::Sender<u32>, crossbeam::channel::Receiver<u32>) {
    crossbeam::channel::bounded::<u32>(POOL_CAPACITY)
}

/// Spawns one worker registered as a trace lane (passes the audit).
pub fn spawn_worker<F: FnOnce() + Send + 'static>(
    lanes: &augur_telemetry::Lanes,
    f: F,
) -> thread::JoinHandle<()> {
    let lane = lanes.register("worker");
    let _ = lane.id();
    thread::spawn(f)
}
"#;

/// Clean fixture for print confinement: console macros are allowed only at
/// `crates/log/src/writer.rs`, the sanctioned console sink every library
/// crate routes genuine console lines through.
const CLEAN_PRINT_WRITER: &str = r#"//! Clean fixture: the sanctioned console sink.

/// Writes one line to stdout.
pub fn out_line(line: &str) {
    println!("{line}");
}

/// Writes one line to stderr.
pub fn err_line(line: &str) {
    eprintln!("{line}");
}
"#;

/// Clean fixture for atomics-ordering: `Ordering::Relaxed` on a counter is
/// fine inside the sanctioned counter module `crates/telemetry/src/metric.rs`.
const CLEAN_RELAXED_COUNTER: &str = r#"//! Clean fixture: the sanctioned counter module.
use std::sync::atomic::{AtomicU64, Ordering};

/// Increments a monotonic event counter.
pub fn bump(events: &AtomicU64) {
    events.fetch_add(1, Ordering::Relaxed);
}
"#;

/// Fixture for the `audit.allow` mechanism: a `Relaxed` counter *outside*
/// the sanctioned modules, suppressed by a reviewed allowlist entry that
/// the self-test writes into the temp root.
const CLEAN_ALLOWED_RELAXED: &str = r#"//! Clean fixture: a reviewed Relaxed exception via audit.allow.
use std::sync::atomic::{AtomicU64, Ordering};

/// Records one hit on a counter reviewed in audit.allow.
pub fn record(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}
"#;

/// The allowlist covering [`CLEAN_ALLOWED_RELAXED`].
const ALLOW_FILE: &str = "# self-test allowlist\n\
crates/telemetry/src/allowed_relaxed.rs hits monotonic counter, only ever summed by the snapshotter\n";

/// Clean source that must produce zero deny findings even under the strictest
/// policy (hot crate): test-gated panics, literals, and error propagation.
const CLEAN: &str = r#"//! Clean fixture.
use std::sync::Arc;

/// Divides safely.
pub fn safe_div(a: u32, b: u32) -> Result<u32, String> {
    a.checked_div(b).ok_or_else(|| "division by zero".to_string())
}

fn doc_mentions() {
    // A comment saying x.unwrap() and panic!() must not trip the scanner.
    let _s = "x.unwrap() panic!(\"no\") std::sync::Mutex";
    let _arc = Arc::new(());
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
"#;

/// Runs the self-test. Returns `Ok(())` when the scanner catches every seeded
/// violation and passes the clean fixture; `Err` describes the first failure.
pub fn run() -> Result<(), String> {
    let root = temp_root()?;
    let result = run_in(&root);
    // Best-effort cleanup; a leftover temp tree is harmless.
    let _ = fs::remove_dir_all(&root);
    result
}

fn run_in(root: &Path) -> Result<(), String> {
    // Seed every violation fixture plus one clean file per policy tier.
    for (rel, source, _) in FIXTURES {
        write_fixture(root, rel, source)?;
    }
    write_fixture(root, "crates/stream/src/clean.rs", CLEAN)?;
    write_fixture(root, "crates/telemetry/src/time.rs", CLEAN_TIME_SOURCE)?;
    write_fixture(root, "crates/watch/src/serve.rs", CLEAN_NET_ENDPOINT)?;
    write_fixture(root, "crates/profile/src/alloc.rs", CLEAN_ALLOC_SITE)?;
    write_fixture(root, "crates/stream/src/pipeline.rs", CLEAN_SPAWN_SITE)?;
    write_fixture(root, "crates/log/src/writer.rs", CLEAN_PRINT_WRITER)?;
    write_fixture(
        root,
        "crates/telemetry/src/metric.rs",
        CLEAN_RELAXED_COUNTER,
    )?;
    write_fixture(
        root,
        "crates/telemetry/src/allowed_relaxed.rs",
        CLEAN_ALLOWED_RELAXED,
    )?;
    fs::write(root.join("audit.allow"), ALLOW_FILE).map_err(|e| format!("self-test write: {e}"))?;

    let report = scan::audit_workspace(root).map_err(|e| format!("self-test scan failed: {e}"))?;

    for (rel, _, expected_rules) in FIXTURES {
        for rule in expected_rules {
            let hit = report.denials().any(|v| v.file == rel && v.rule == *rule);
            if !hit {
                return Err(format!(
                    "self-test: seeded violation `{rule}` in {rel} was NOT detected"
                ));
            }
        }
    }

    let clean_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/stream/src/clean.rs")
        .collect();
    if !clean_denials.is_empty() {
        return Err(format!(
            "self-test: clean fixture produced deny findings: {clean_denials:?}"
        ));
    }

    let exempt_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/telemetry/src/time.rs")
        .collect();
    if !exempt_denials.is_empty() {
        return Err(format!(
            "self-test: sanctioned time-source site produced deny findings: {exempt_denials:?}"
        ));
    }

    let endpoint_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/watch/src/serve.rs")
        .collect();
    if !endpoint_denials.is_empty() {
        return Err(format!(
            "self-test: sanctioned endpoint socket site produced deny findings: {endpoint_denials:?}"
        ));
    }

    let alloc_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/profile/src/alloc.rs")
        .collect();
    if !alloc_denials.is_empty() {
        return Err(format!(
            "self-test: sanctioned allocator site produced deny findings: {alloc_denials:?}"
        ));
    }

    // Sanctioned concurrency and print sites: the worker-pool spawn
    // module, the counter module, the allowlisted Relaxed counter, and
    // the console-sink writer must all pass.
    for sanctioned in [
        "crates/stream/src/pipeline.rs",
        "crates/telemetry/src/metric.rs",
        "crates/telemetry/src/allowed_relaxed.rs",
        "crates/log/src/writer.rs",
    ] {
        let denials: Vec<_> = report.denials().filter(|v| v.file == sanctioned).collect();
        if !denials.is_empty() {
            return Err(format!(
                "self-test: sanctioned concurrency site {sanctioned} produced deny \
                 findings: {denials:?}"
            ));
        }
    }

    // The one-hop blocking finding must land at the per-record caller, not
    // inside the helper crate (which is not on the per-record path).
    let helper_denials: Vec<_> = report
        .denials()
        .filter(|v| v.file == "crates/semantic/src/bad_wait_helper.rs")
        .collect();
    if !helper_denials.is_empty() {
        return Err(format!(
            "self-test: blocking helper outside the per-record path must not be \
             flagged directly: {helper_denials:?}"
        ));
    }
    Ok(())
}

fn write_fixture(root: &Path, rel: &str, source: &str) -> Result<(), String> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("self-test mkdir: {e}"))?;
    }
    fs::write(&path, source).map_err(|e| format!("self-test write: {e}"))
}

fn temp_root() -> Result<PathBuf, String> {
    let base = std::env::temp_dir().join(format!("augur-audit-selftest-{}", std::process::id()));
    if base.exists() {
        let _ = fs::remove_dir_all(&base);
    }
    fs::create_dir_all(&base).map_err(|e: io::Error| format!("self-test tempdir: {e}"))?;
    Ok(base)
}

#[cfg(test)]
mod tests {
    #[test]
    fn selftest_passes() {
        super::run().expect("audit self-test must pass");
    }
}
