//! `--explain` documentation for every rule code.
//!
//! One entry per rule: the short summary doubles as the SARIF rule
//! description; the long text is the review-time rationale shown by
//! `augur-audit --explain <RULE>`.

/// A documented rule: `(code, summary, rationale)`.
pub type RuleDoc = (&'static str, &'static str, &'static str);

/// Every rule the audit can emit, in stable (alphabetical) order.
pub const RULES: [RuleDoc; 19] = [
    (
        "alloc-confined",
        "Global allocators are confined to the counting allocator module.",
        "Declaring or implementing a global allocator is denied everywhere except \
         crates/profile/src/alloc.rs. Allocation accounting depends on there being exactly one \
         allocator implementation to audit; bins and tests opt in through the `global-alloc` \
         cargo feature instead of declaring their own.",
    ),
    (
        "atomics-ordering",
        "Ordering::Relaxed only for counters in sanctioned modules or reviewed allowlist entries.",
        "Relaxed loads and stores carry no synchronization: correct for monotonic counters that \
         are only ever summed, wrong for flags, tickets, and seqlock cells whose readers rely \
         on happens-before. Relaxed is therefore permitted only in the sanctioned counter \
         modules (crates/telemetry/src/metric.rs, crates/telemetry/src/time.rs, \
         crates/profile/src/alloc.rs) or under a reviewed `audit.allow` entry of the form \
         `<file> <symbol> <reason>`. Everything else must use Acquire/Release (or stronger) so \
         the sharded engine's cross-thread handoffs are fenced by construction.",
    ),
    (
        "bounded-channels-only",
        "Channels must be bounded, with a named capacity constant.",
        "ROADMAP item 1 (the parallel sharded dataflow engine) makes backpressure load-bearing: \
         an unbounded queue turns overload into unbounded memory growth and masks the stall the \
         paper's availability story (§4) says must surface as graceful degradation. \
         `crossbeam::channel::unbounded` and `std::sync::mpsc::channel` are denied \
         workspace-wide, and `bounded(N)` with a bare numeric literal is denied too: name the \
         constant (or thread a config field) so every capacity is auditable and tunable in one \
         place.",
    ),
    (
        "documented-exports",
        "Every public item in a crate root must carry a doc comment.",
        "Crate roots are the API surface other crates read first; an undocumented `pub use` or \
         `pub mod` there is an undocumented contract. The rule walks top-level `pub` items in \
         lib.rs files and requires a `///` (or `#[doc]`) line above each.",
    ),
    (
        "indexing",
        "Slice indexing can panic; prefer .get() on untrusted indices (advice).",
        "Advisory only: `a[i]` panics on out-of-range. On the hot path that aborts a frame. \
         Indices proved in-range by construction are fine — the advisory exists so the proof is \
         a conscious step during review, not an accident.",
    ),
    (
        "lock-order-cycle",
        "Lock acquisition order must be globally consistent (deadlock freedom).",
        "Every parking_lot acquisition is recorded with its guard lifetime (let-bound guards \
         live to the end of the block; if/while/match scrutinee temporaries to the end of the \
         statement; expression temporaries to their semicolon). Nested acquisitions — and, one \
         call-index hop deep, acquisitions made by functions called while a guard is held — \
         form edges `held -> acquired` in a workspace-wide order graph, with locks identified \
         as `<crate>/<receiver field>`. Any cycle is a potential deadlock once workers \
         multiply and is reported on every edge that closes it. Fix by acquiring in one global \
         order, narrowing a guard's scope, or merging the locks.",
    ),
    (
        "net-confined",
        "Raw std::net sockets are confined to the watch endpoint module.",
        "crates/watch/src/serve.rs is the sole sanctioned socket site, so the workspace's \
         entire network surface is auditable at a glance. Everything else serves state through \
         `augur_watch::WatchSession::serve`.",
    ),
    (
        "no-blocking-hot-path",
        "No blocking operations on the per-record hot path, directly or one call away.",
        "An AR overlay must degrade gracefully, never stall mid-frame (paper §4). Blocking \
         primitives — `recv()`, `recv_timeout()`, blocking `send()`, `thread::sleep`, file \
         I/O — are denied in per-record crate code (crates/stream), and the one-hop call index \
         extends the check: per-record code calling a helper in another crate that blocks is \
         flagged at the call site. Use the try_ variants, or hand the blocking work to the \
         pump/exchange layer that owns the thread budget.",
    ),
    (
        "no-expect",
        "No .expect() in hot-path library code.",
        "Same contract as no-unwrap: `.expect()` aborts the frame with a nicer message. \
         Propagate through the crate error enum instead.",
    ),
    (
        "no-global-registry",
        "Library code takes &Registry from the caller; the global registry is for bins.",
        "`Registry::global()` in library code makes metrics land in a process-wide snapshot \
         instead of the caller's, breaking scoped measurement in tests and concurrent runs. \
         Library APIs accept a `&Registry` or `Tracer`; only examples and binaries use the \
         global convenience.",
    ),
    (
        "no-panic",
        "No panic!/unreachable!/todo!/unimplemented! in hot-path library code.",
        "A panic in per-record code aborts the frame mid-flight — exactly the stall the paper's \
         availability story forbids. Return the crate error enum; `debug_assert!` remains \
         available for invariants checked in development.",
    ),
    (
        "no-unwrap",
        "No .unwrap() in hot-path library code.",
        "`.unwrap()` turns a recoverable absence into a frame-aborting panic. Hot-path crates \
         (stream, geo, store, semantic, cloud, core, telemetry, doctor, watch, profile, audit) \
         must propagate errors through their error enums; tests and bins are exempt.",
    ),
    (
        "no-wall-clock",
        "Simulation code derives time from the simulated clock, not the OS.",
        "`SystemTime::now()` / `Instant::now()` in simulation code (crates/sensor, scenario \
         replay) breaks reproducibility: two runs of the same seed would disagree. Timestamps \
         are inputs (sensor clock / event time), never ambient reads.",
    ),
    (
        "parking-lot-standard",
        "The workspace lock standard is parking_lot, not std::sync.",
        "std::sync locks poison on panic, turning one failure into cascading `PoisonError` \
         handling; parking_lot locks are smaller, faster, and non-poisoning. One lock library \
         also keeps the lock-order analysis (`lock-order-cycle`) sound: it models parking_lot \
         acquisition/guard semantics only.",
    ),
    (
        "print-confined",
        "Console-print macros are confined to the log crate's writer module.",
        "`println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code bypass levels, \
         per-site rate limits, and the deterministic JSONL exporters — and they litter bench \
         stdout CI has to parse. Emit a structured event through `augur-log`; a genuine \
         console line (progress tables, exporter summaries) goes through \
         crates/log/src/writer.rs, the sole sanctioned library print site. Binaries, CLIs, \
         and tests are exempt and may print directly.",
    ),
    (
        "seeded-rng-only",
        "All randomness comes from a seeded StdRng.",
        "`thread_rng()`, `from_entropy()`, and `rand::random()` draw from OS entropy, so no two \
         runs agree. Every experiment threads an explicit `StdRng::seed_from_u64` so results \
         are reproducible bit-for-bit (ExpAR-style controllable experimentation).",
    ),
    (
        "spawn-confined",
        "thread::spawn is allowed only in the sanctioned worker-pool modules.",
        "Threads are confined to crates/stream/src/pipeline.rs, crates/stream/src/broker.rs, \
         and crates/watch/src/serve.rs (plus bins and tests). The sharded engine's worker pool \
         must be the single spawn surface so thread budgets, shutdown, and panics have one \
         owner; a raw `thread::spawn` (or `thread::Builder`) elsewhere is an unaccounted \
         thread.",
    ),
    (
        "spawn-lane-registered",
        "Worker-pool spawns must register a LaneId.",
        "Inside the sanctioned worker-pool modules (crates/stream/src/pipeline.rs and \
         crates/stream/src/broker.rs), every spawned thread is a *worker* and must be \
         registered as a trace lane: the spawning function must reference a `Lane*` symbol \
         (`Lanes::register`, `LaneIo`). An unregistered worker has no per-lane flight ring, \
         no busy/blocked accounting, and silently corrupts xray's measured parallel \
         efficiency. The watch endpoint's listener thread is control-plane and exempt.",
    ),
    (
        "time-source-only",
        "Telemetry-instrumented crates read time through TimeSource.",
        "Raw `Instant::now()` in instrumented crates bypasses `augur_telemetry::TimeSource`, \
         so the same code cannot run under `ManualTime` in simulations and `MonotonicTime` in \
         benches. crates/telemetry/src/time.rs is the one sanctioned wall-clock read.",
    ),
];

/// Looks up one rule's documentation by code.
pub fn find(code: &str) -> Option<&'static RuleDoc> {
    RULES.iter().find(|(c, _, _)| *c == code)
}

/// Renders one rule's documentation.
pub fn explain(code: &str) -> Option<String> {
    find(code).map(|(c, summary, detail)| format!("{c}\n  {summary}\n\n{detail}\n"))
}

/// Renders the one-line index of every rule.
pub fn index() -> String {
    let mut out = String::from("rules:\n");
    for (code, summary, _) in RULES {
        out.push_str(&format!("  {code:<24} {summary}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_are_sorted_and_unique() {
        for pair in RULES.windows(2) {
            if let [(a, _, _), (b, _, _)] = pair {
                assert!(a < b, "RULES must stay sorted: {a} >= {b}");
            }
        }
    }

    #[test]
    fn every_emitted_rule_is_documented() {
        // The emitting modules reference rules by string literal; keep this
        // list in sync with them (checked again by the self-test fixtures).
        for code in [
            "no-unwrap",
            "no-expect",
            "no-panic",
            "parking-lot-standard",
            "no-wall-clock",
            "seeded-rng-only",
            "time-source-only",
            "no-global-registry",
            "net-confined",
            "alloc-confined",
            "print-confined",
            "documented-exports",
            "indexing",
            "lock-order-cycle",
            "no-blocking-hot-path",
            "bounded-channels-only",
            "spawn-confined",
            "spawn-lane-registered",
            "atomics-ordering",
        ] {
            assert!(find(code).is_some(), "undocumented rule: {code}");
            assert!(explain(code).is_some_and(|t| t.contains(code)));
        }
        assert!(find("no-such-rule").is_none());
        assert!(index().contains("lock-order-cycle"));
    }
}
