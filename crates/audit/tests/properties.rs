//! Property tests for the cross-file concurrency analysis: the report is a
//! pure function of the *set* of input files (any permutation yields a
//! byte-identical rendering), and lock-order cycle detection is exact on
//! seeded ring/chain topologies of any size and order.

use augur_audit::{analyze_files, Allowlist, Baseline};
use proptest::prelude::*;

/// Deterministic Fisher–Yates driven by an LCG over `seed` (the proptest
/// shim has no shuffle strategy, so the permutation is derived from a
/// generated seed instead).
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut v: Vec<T> = items.to_vec();
    let mut i = v.len();
    while i > 1 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % i;
        i -= 1;
        v.swap(i, j);
    }
    v
}

/// `k` files in one crate, file `i` acquiring `lk{i}` then its successor.
/// With `wrap` the successor of the last is `lk0` (a k-cycle); without, the
/// chain is acyclic.
fn ring_files(k: usize, wrap: bool) -> Vec<(String, String)> {
    (0..k)
        .map(|i| {
            let next = if wrap { (i + 1) % k } else { i + 1 };
            (
                format!("crates/geo/src/gen_{i}.rs"),
                format!(
                    "pub fn f{i}(s: &Shared) {{\n    let a = s.lk{i}.lock();\n    \
                     let b = s.lk{next}.lock();\n    drop(b);\n    drop(a);\n}}\n"
                ),
            )
        })
        .collect()
}

/// Fixture files exercising the other concurrency rules, so the
/// order-independence property covers every violation shape at once.
fn mixed_files() -> Vec<(String, String)> {
    vec![
        (
            String::from("crates/store/src/gen_spawn.rs"),
            String::from("pub fn bg() {\n    std::thread::spawn(|| {});\n}\n"),
        ),
        (
            String::from("crates/semantic/src/gen_unbounded.rs"),
            String::from(
                "pub fn mk() {\n    let _c = crossbeam::channel::unbounded::<u32>();\n}\n",
            ),
        ),
        (
            String::from("crates/stream/src/gen_block.rs"),
            String::from(
                "pub fn op() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
            ),
        ),
        (
            String::from("crates/cloud/src/gen_relaxed.rs"),
            String::from(
                "use std::sync::atomic::{AtomicBool, Ordering};\n\
                 pub fn raise(flag: &AtomicBool) {\n    flag.store(true, Ordering::Relaxed);\n}\n",
            ),
        ),
    ]
}

proptest! {
    #[test]
    fn report_is_order_independent(seed in any::<u64>(), k in 2usize..6) {
        let mut files = ring_files(k, true);
        files.extend(mixed_files());
        let permuted = shuffled(&files, seed);
        let baseline = Baseline::empty();
        let allow = Allowlist::empty();
        let sorted_run = analyze_files(&files, &baseline, &allow);
        let permuted_run = analyze_files(&permuted, &baseline, &allow);
        prop_assert_eq!(
            sorted_run.render_text(true),
            permuted_run.render_text(true),
            "shuffled input must produce a byte-identical report"
        );
        // The report covers every seeded rule regardless of input order.
        for rule in [
            "lock-order-cycle",
            "spawn-confined",
            "bounded-channels-only",
            "no-blocking-hot-path",
            "atomics-ordering",
        ] {
            prop_assert!(
                permuted_run.violations.iter().any(|v| v.rule == rule),
                "rule {} missing from shuffled report", rule
            );
        }
    }

    #[test]
    fn cycles_always_detected_chains_never(seed in any::<u64>(), k in 2usize..6) {
        let baseline = Baseline::empty();
        let allow = Allowlist::empty();

        let cycle = shuffled(&ring_files(k, true), seed);
        let report = analyze_files(&cycle, &baseline, &allow);
        prop_assert!(
            report.violations.iter().any(|v| v.rule == "lock-order-cycle"),
            "a seeded {}-cycle must always be detected", k
        );

        let chain = shuffled(&ring_files(k, false), seed);
        let report = analyze_files(&chain, &baseline, &allow);
        prop_assert!(
            report.violations.iter().all(|v| v.rule != "lock-order-cycle"),
            "an acyclic {}-chain must never be flagged", k
        );
    }
}
