//! CLI contract tests: the exit-code mapping (0 clean, 1 violations or
//! stale baseline, 2 usage, 3 internal error), `--explain`, and SARIF
//! output. These are the codes CI keys off — a red `1` means the tree
//! regressed, a red `3` means the audit itself could not run.

#![allow(clippy::unwrap_used, clippy::expect_used)] // integration tests: a panic here IS the test failure

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_augur-audit"))
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A throwaway tree seeded with `files`; removed on drop.
struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str, files: &[(&str, &str)]) -> Self {
        let root =
            std::env::temp_dir().join(format!("augur-audit-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for (rel, src) in files {
            let path = root.join(rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent).unwrap();
            }
            fs::write(&path, src).unwrap();
        }
        TempTree(root)
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn clean_tree_with_committed_baseline_exits_zero() {
    let status = bin().arg("--root").arg(workspace_root()).status().unwrap();
    assert_eq!(
        status.code(),
        Some(0),
        "the committed tree must audit clean"
    );
}

#[test]
fn violations_exit_one() {
    let tree = TempTree::new(
        "viol",
        &[(
            "crates/stream/src/bad.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )],
    );
    let status = bin().arg("--root").arg(&tree.0).status().unwrap();
    assert_eq!(status.code(), Some(1));
}

#[test]
fn missing_root_exits_three() {
    let status = bin()
        .arg("--root")
        .arg("/nonexistent/audit/root")
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(3),
        "I/O failure is internal, not a violation"
    );
}

#[test]
fn malformed_baseline_exits_three() {
    let tree = TempTree::new(
        "badbase",
        &[
            ("crates/geo/src/ok.rs", "pub fn f() {}\n"),
            ("audit.baseline.json", "{not json"),
        ],
    );
    let status = bin().arg("--root").arg(&tree.0).status().unwrap();
    assert_eq!(
        status.code(),
        Some(3),
        "a parse failure must not read as clean"
    );
}

#[test]
fn unknown_flag_and_bad_format_exit_two() {
    let status = bin().arg("--bogus").status().unwrap();
    assert_eq!(status.code(), Some(2));
    let status = bin().args(["--format", "xml"]).status().unwrap();
    assert_eq!(status.code(), Some(2));
}

#[test]
fn stale_baseline_entry_exits_one() {
    let tree = TempTree::new(
        "stale",
        &[
            ("crates/geo/src/ok.rs", "pub fn f() {}\n"),
            (
                "audit.baseline.json",
                "{\"entries\": [{\"file\": \"crates/geo/src/gone.rs\", \
                 \"rule\": \"no-unwrap\", \"reason\": \"already fixed\"}]}",
            ),
        ],
    );
    let out = bin().arg("--root").arg(&tree.0).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale suppressions must fail the run"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stale baseline entry"), "{text}");
}

#[test]
fn baseline_suppression_turns_violation_into_clean() {
    let tree = TempTree::new(
        "suppress",
        &[
            (
                "crates/stream/src/bad.rs",
                "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            (
                "audit.baseline.json",
                "{\"entries\": [{\"file\": \"crates/stream/src/bad.rs\", \
                 \"rule\": \"no-unwrap\", \"count\": 1, \"reason\": \"burning down\"}]}",
            ),
        ],
    );
    let status = bin().arg("--root").arg(&tree.0).status().unwrap();
    assert_eq!(status.code(), Some(0));
}

#[test]
fn sarif_output_is_written_and_versioned() {
    let tree = TempTree::new(
        "sarif",
        &[(
            "crates/stream/src/bad.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )],
    );
    let out_path = tree.0.join("audit.sarif");
    let status = bin()
        .arg("--root")
        .arg(&tree.0)
        .args(["--format", "sarif", "--output"])
        .arg(&out_path)
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(1),
        "SARIF output does not change the exit code"
    );
    let doc = fs::read_to_string(&out_path).unwrap();
    assert!(doc.contains("\"version\":\"2.1.0\""));
    assert!(doc.contains("\"ruleId\":\"no-unwrap\""));
}

#[test]
fn explain_documents_every_rule() {
    let out = bin().args(["--explain", "all"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "lock-order-cycle",
        "no-blocking-hot-path",
        "bounded-channels-only",
        "spawn-confined",
        "atomics-ordering",
        "no-unwrap",
    ] {
        assert!(text.contains(rule), "--explain all must list {rule}");
        let one = bin().args(["--explain", rule]).output().unwrap();
        assert_eq!(one.status.code(), Some(0));
        assert!(String::from_utf8_lossy(&one.stdout).contains(rule));
    }
    let unknown = bin().args(["--explain", "no-such-rule"]).output().unwrap();
    assert_eq!(unknown.status.code(), Some(2));
}

#[test]
fn self_test_passes() {
    let status = bin().arg("--self-test").status().unwrap();
    assert_eq!(status.code(), Some(0));
}
