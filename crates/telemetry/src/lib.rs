//! # augur-telemetry
//!
//! Unified observability for the Augur platform: lock-free metrics, span
//! tracing over pluggable time sources, and machine-readable exposition.
//!
//! The paper's central constraint is **timeliness** — an AR platform must
//! answer inside a 33 ms frame budget — and you cannot keep a latency
//! budget you cannot measure. This crate is the measurement substrate
//! every other crate instruments against:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: `Arc`-shared atomic cells;
//!   the record path is wait-free and allocation-free. The histogram is
//!   log-linear (32 sub-buckets per power of two) with a documented
//!   quantile relative-error bound of 1/32.
//! - [`Registry`]: sharded, labeled metric families. Registration takes a
//!   short shard lock (`parking_lot`, the workspace standard); the hot
//!   path holds pre-registered handles and never touches the registry.
//! - [`Tracer`] / [`SpanGuard`]: named timed sections recorded into the
//!   `span_duration_us` histogram family.
//! - [`TraceContext`] / [`FlightRecorder`]: causal tracing. Deterministic
//!   trace ids derived from `(seed, key)` travel across layer boundaries
//!   (stream records, pipeline stages, offload tasks, store flushes);
//!   structured span/event records land in a bounded lock-free ring with
//!   explicit drop accounting and export as Chrome trace-event JSON via
//!   [`render_chrome_trace`] for Perfetto timelines.
//! - [`TimeSource`]: the only sanctioned clock. Simulation code uses
//!   [`ManualTime`] (advanced from event time or modeled work units, so
//!   instrumented runs stay deterministic); bench binaries use
//!   [`MonotonicTime`]. `augur-audit` denies raw `Instant::now()` in
//!   instrumented crates.
//! - Exporters: [`Registry::render_prometheus`] (text exposition) and
//!   [`Registry::render_json`] (the `metrics` object in every
//!   `results/<bench>.json` snapshot).
//!
//! ## Example
//!
//! ```
//! use augur_telemetry::{ManualTime, Registry, Tracer};
//!
//! let registry = Registry::new();
//! let clock = ManualTime::shared();
//! let tracer = Tracer::new(&registry, clock.clone());
//!
//! registry.counter("frames_total").inc();
//! {
//!     let _span = tracer.span("layout");
//!     clock.advance_micros(1_200); // modeled work
//! }
//! let text = registry.render_prometheus();
//! assert!(text.contains("frames_total 1"));
//! assert!(text.contains("span_duration_us"));
//! ```

/// Chrome trace-event (Perfetto-compatible) JSON export.
pub mod chrome;
/// Prometheus/JSON renderers and the span-breakdown table.
pub mod export;
/// The lock-free flight recorder (bounded span/event ring).
pub mod flight;
/// Worker lanes: deterministic ids, per-lane rings, merged drains.
pub mod lane;
/// The atomic instruments: counters, gauges, histograms.
pub mod metric;
/// Sharded registry of labeled metric families.
pub mod registry;
/// Span tracing recorded as duration histograms.
pub mod span;
/// Pluggable time sources (`ManualTime`, `MonotonicTime`).
pub mod time;
/// Causal trace context (deterministic id derivation).
pub mod trace;
/// Span-forest reconstruction shared by profile folding and xray.
pub mod tree;

/// Chrome trace-event rendering for drained flight events.
pub use chrome::{render_chrome_trace, render_chrome_trace_with_lanes};
/// JSON string escaping shared with the bench snapshot writer.
pub use export::{
    escape_json, escape_label_value, json_f64, render_snapshot_json, render_span_breakdown,
    OPENMETRICS_CONTENT_TYPE,
};
/// The flight recorder and its drained event type.
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder, NameId, TraceSpan};
/// Worker-lane identity, contention accounting, and merged drains.
pub use lane::{
    merge_drained, BlockedSite, Lane, LaneBlock, LaneId, LaneSummary, LaneWork, Lanes, MergedDrain,
};
/// Lock-free instruments and the bucket-layout helpers for aggregators.
pub use metric::{
    bucket_midpoint, bucket_upper_edge, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot,
};
/// Labeled metric families and snapshots.
pub use registry::{
    CounterSnapshot, GaugeSnapshot, HistogramFamilySnapshot, Labels, Registry, RegistrySnapshot,
};
/// Span tracing.
pub use span::{SpanGuard, Tracer, SPAN_LABEL, SPAN_METRIC};
/// Pluggable clocks.
pub use time::{Clock, ManualTime, MonotonicTime, TimeSource};
/// Causal trace identity carried across layer boundaries, and the
/// SplitMix64 mix shared with deterministic sampling policies.
pub use trace::{mix64, TraceContext};
/// The reconstructed span forest and its nodes.
pub use tree::{SpanForest, SpanNode};
