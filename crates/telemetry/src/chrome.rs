//! Chrome trace-event export: turns drained [`FlightEvent`]s into the
//! JSON Array Format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) (open the file via "Open trace
//! file"). Spans become complete events (`"ph":"X"`) with microsecond
//! `ts`/`dur`; instants become `"ph":"i"`. Causal ids travel in `args`
//! as zero-padded hex strings, so a span's parent can be located by
//! searching for its `parent_span_id`.
//!
//! ## Thread rows
//!
//! Events recorded on a worker lane render on a **stable lane-keyed
//! tid** (`tid == lane id`), one real timeline row per worker, with a
//! `thread_name` metadata row carrying the lane's registered name — so
//! a 4-lane run reads as four named worker rows in Perfetto, blocked
//! windows visible per lane. Control-lane events (lane 0) keep the
//! historical per-causal-chain grouping: each distinct `trace_id` gets
//! a synthetic tid in order of first appearance, offset above
//! [`CONTROL_TID_BASE`] so it can never collide with a lane tid, and
//! named `trace-<n>` via its own `thread_name` row. (Before lanes
//! existed these synthetic tids were unnamed and started at 1, where
//! they would have aliased real worker rows.)
//!
//! Rendering is a pure function of the drained event list (plus the
//! optional lane-name table): under a [`ManualTime`](crate::ManualTime)
//! driven run the output is byte-for-byte reproducible, which is what
//! lets `tests/trace_causality.rs` assert trace stability across runs.

use std::fmt::Write as _;

use crate::export::escape_json;
use crate::flight::{FlightEvent, FlightEventKind};
use crate::lane::{LaneId, LaneSummary};

/// Control-lane causal chains get synthetic tids counted up from this
/// base — above the entire [`LaneId`] range (`u16`), so a synthetic tid
/// can never alias a worker lane's row.
pub const CONTROL_TID_BASE: u64 = 1 << 16;

/// Renders `events` (in drain order) as a Chrome trace-event JSON
/// document; worker-lane names default to `lane-<id>`. See
/// [`render_chrome_trace_with_lanes`] for named lanes.
pub fn render_chrome_trace(process_name: &str, events: &[FlightEvent]) -> String {
    render_chrome_trace_with_lanes(process_name, events, &[])
}

/// Renders `events` with worker-lane names taken from `lanes` (the
/// [`LaneSummary`] table of a merged drain). `process_name` labels the
/// single emitted process; every worker lane present in `events` or in
/// `lanes` gets a named `thread_name` metadata row and a stable
/// `tid == lane id`; control-lane events group per causal chain (see
/// the module docs).
pub fn render_chrome_trace_with_lanes(
    process_name: &str,
    events: &[FlightEvent],
    lanes: &[LaneSummary],
) -> String {
    // Worker lanes present: from the summary table and the events.
    let mut worker_lanes: Vec<(LaneId, &str)> = lanes
        .iter()
        .filter(|l| l.id.is_worker())
        .map(|l| (l.id, l.name.as_str()))
        .collect();
    for e in events {
        if e.lane.is_worker() && !worker_lanes.iter().any(|(id, _)| *id == e.lane) {
            worker_lanes.push((e.lane, ""));
        }
    }
    worker_lanes.sort_by_key(|(id, _)| *id);
    // Control chains: distinct trace ids in order of first appearance.
    let mut chains: Vec<u64> = Vec::new();
    for e in events {
        if !e.lane.is_worker() && !chains.contains(&e.trace_id) {
            chains.push(e.trace_id);
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(process_name)
    );
    for (id, name) in &worker_lanes {
        out.push(',');
        if name.is_empty() {
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"lane-{}\"}}}}",
                id.0, id.0
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                id.0,
                escape_json(name)
            );
        }
    }
    for (idx, _) in chains.iter().enumerate() {
        out.push(',');
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"trace-{idx}\"}}}}",
            CONTROL_TID_BASE + idx as u64,
        );
    }
    for e in events {
        let tid = event_tid(e, &chains);
        out.push(',');
        render_event(&mut out, e, tid);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The stable tid for one event: the lane id for worker lanes, or the
/// causal chain's synthetic tid above [`CONTROL_TID_BASE`].
pub(crate) fn event_tid(e: &FlightEvent, chains: &[u64]) -> u64 {
    if e.lane.is_worker() {
        u64::from(e.lane.0)
    } else {
        let pos = chains.iter().position(|t| *t == e.trace_id).unwrap_or(0);
        CONTROL_TID_BASE + pos as u64
    }
}

/// Writes one span/instant row (shared with the log-merged renderer's
/// span half via duplication kept byte-compatible).
fn render_event(out: &mut String, e: &FlightEvent, tid: u64) {
    match e.kind {
        FlightEventKind::Span => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"trace_id\":\"{:016x}\",\
                 \"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\"}}}}",
                escape_json(&e.name),
                e.ts_us,
                e.dur_us,
                e.trace_id,
                e.span_id,
                e.parent_span_id
            );
        }
        FlightEventKind::Instant => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"trace_id\":\"{:016x}\",\
                 \"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\",\"arg\":{}}}}}",
                escape_json(&e.name),
                e.ts_us,
                e.trace_id,
                e.span_id,
                e.parent_span_id,
                e.arg
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::lane::Lanes;
    use crate::time::{Clock, ManualTime};
    use crate::trace::TraceContext;

    fn sample_events() -> Vec<FlightEvent> {
        let rec = FlightRecorder::new(16);
        let frame = rec.intern("frame");
        let layout = rec.intern("layout \"q\"");
        let drop_ev = rec.intern("drop");
        let root = TraceContext::root(7, 0);
        rec.record_span(root, frame, 0, 1_000);
        rec.record_span(root.child_named("layout"), layout, 100, 400);
        rec.record_instant(root.child_named("drop"), drop_ev, 600, 3);
        rec.drain()
    }

    #[test]
    fn renders_spans_instants_and_metadata() {
        let json = render_chrome_trace("augur tourism", &sample_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("augur tourism"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"arg\":3"));
        // Hostile span names are JSON-escaped.
        assert!(json.contains("layout \\\"q\\\""));
        // Same trace -> same named synthetic tid for every event,
        // offset above the lane range so it cannot alias a worker row.
        let tid = format!("\"tid\":{},", CONTROL_TID_BASE);
        assert_eq!(
            json.matches(tid.as_str()).count(),
            4,
            "thread_name row + all three events share one causal-chain tid"
        );
        assert!(json.contains("{\"name\":\"trace-0\"}"));
    }

    #[test]
    fn worker_lanes_render_on_named_lane_tids() {
        let lanes = Lanes::new(9, 64);
        let pump = lanes.register("pump");
        let worker = lanes.register("worker-0");
        let time = ManualTime::shared();
        let clock: Clock = time.clone();
        let n = pump.recorder().intern("poll");
        {
            let w = pump.work(&clock, pump.root(), n);
            time.advance_micros(5);
            w.end();
        }
        let m = worker.recorder().intern("transform");
        {
            let w = worker.work(&clock, worker.root(), m);
            time.advance_micros(7);
            w.end();
        }
        let merged = lanes.merge_drains();
        let json = render_chrome_trace_with_lanes("p", &merged.events, &merged.lanes);
        // One named thread row per worker lane, tid == lane id.
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{\"name\":\"pump\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\
             \"args\":{\"name\":\"worker-0\"}}"
        ));
        // The events land on their lane's tid.
        assert!(json.contains("\"name\":\"poll\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\"pid\":1,\"tid\":1,"));
        assert!(json.contains("\"tid\":2,"));
        // Unnamed lanes (events without a summary row) get a default name.
        let json2 = render_chrome_trace("p", &merged.events);
        assert!(json2.contains("{\"name\":\"lane-1\"}"));
        assert!(json2.contains("{\"name\":\"lane-2\"}"));
    }

    #[test]
    fn distinct_traces_get_distinct_named_tids() {
        // Regression for the tid-aliasing fix: two causal chains must
        // render on two different, *named* rows.
        let rec = FlightRecorder::new(16);
        let n = rec.intern("frame");
        rec.record_span(TraceContext::root(1, 0), n, 0, 10);
        rec.record_span(TraceContext::root(1, 1), n, 10, 10);
        let json = render_chrome_trace("p", &rec.drain());
        let t0 = format!("\"tid\":{},", CONTROL_TID_BASE);
        let t1 = format!("\"tid\":{},", CONTROL_TID_BASE + 1);
        assert_eq!(json.matches(t0.as_str()).count(), 2);
        assert_eq!(json.matches(t1.as_str()).count(), 2);
        assert!(json.contains("{\"name\":\"trace-0\"}"));
        assert!(json.contains("{\"name\":\"trace-1\"}"));
    }

    #[test]
    fn rendering_is_a_pure_function_of_events() {
        let events = sample_events();
        assert_eq!(
            render_chrome_trace("p", &events),
            render_chrome_trace("p", &events)
        );
    }

    #[test]
    fn parent_ids_are_preserved_in_args() {
        let events = sample_events();
        let json = render_chrome_trace("p", &events);
        let root_span = events[0].span_id;
        assert!(json.contains(&format!("\"parent_span_id\":\"{root_span:016x}\"")));
    }
}
