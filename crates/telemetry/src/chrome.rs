//! Chrome trace-event export: turns drained [`FlightEvent`]s into the
//! JSON Array Format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) (open the file via "Open trace
//! file"). Spans become complete events (`"ph":"X"`) with microsecond
//! `ts`/`dur`; instants become `"ph":"i"`. Causal ids travel in `args`
//! as zero-padded hex strings, so a span's parent can be located by
//! searching for its `parent_span_id`.
//!
//! Rendering is a pure function of the drained event list: under a
//! [`ManualTime`](crate::ManualTime)-driven run the output is
//! byte-for-byte reproducible, which is what lets
//! `tests/trace_causality.rs` assert trace stability across runs.

use std::fmt::Write as _;

use crate::export::escape_json;
use crate::flight::{FlightEvent, FlightEventKind};

/// Renders `events` (in drain order) as a Chrome trace-event JSON
/// document. `process_name` labels the single emitted process (Perfetto
/// shows it as the track group title). Each distinct `trace_id` is
/// assigned a thread id in order of first appearance, so one causal
/// chain renders as one timeline row group.
pub fn render_chrome_trace(process_name: &str, events: &[FlightEvent]) -> String {
    let mut tids: Vec<u64> = Vec::new();
    let mut out = String::from("{\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(process_name)
    );
    for e in events {
        let tid = match tids.iter().position(|t| *t == e.trace_id) {
            Some(pos) => pos + 1,
            None => {
                tids.push(e.trace_id);
                tids.len()
            }
        };
        out.push(',');
        match e.kind {
            FlightEventKind::Span => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"trace_id\":\"{:016x}\",\
                     \"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\"}}}}",
                    escape_json(&e.name),
                    e.ts_us,
                    e.dur_us,
                    e.trace_id,
                    e.span_id,
                    e.parent_span_id
                );
            }
            FlightEventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"trace_id\":\"{:016x}\",\
                     \"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\",\"arg\":{}}}}}",
                    escape_json(&e.name),
                    e.ts_us,
                    e.trace_id,
                    e.span_id,
                    e.parent_span_id,
                    e.arg
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::trace::TraceContext;

    fn sample_events() -> Vec<FlightEvent> {
        let rec = FlightRecorder::new(16);
        let frame = rec.intern("frame");
        let layout = rec.intern("layout \"q\"");
        let drop_ev = rec.intern("drop");
        let root = TraceContext::root(7, 0);
        rec.record_span(root, frame, 0, 1_000);
        rec.record_span(root.child_named("layout"), layout, 100, 400);
        rec.record_instant(root.child_named("drop"), drop_ev, 600, 3);
        rec.drain()
    }

    #[test]
    fn renders_spans_instants_and_metadata() {
        let json = render_chrome_trace("augur tourism", &sample_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("augur tourism"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"arg\":3"));
        // Hostile span names are JSON-escaped.
        assert!(json.contains("layout \\\"q\\\""));
        // Same trace -> same tid for every event.
        let tid_count = json.matches("\"tid\":1,").count();
        assert_eq!(tid_count, 3, "all events share one causal-chain tid");
    }

    #[test]
    fn rendering_is_a_pure_function_of_events() {
        let events = sample_events();
        assert_eq!(
            render_chrome_trace("p", &events),
            render_chrome_trace("p", &events)
        );
    }

    #[test]
    fn parent_ids_are_preserved_in_args() {
        let events = sample_events();
        let json = render_chrome_trace("p", &events);
        let root_span = events[0].span_id;
        assert!(json.contains(&format!("\"parent_span_id\":\"{root_span:016x}\"")));
    }
}
