//! Span-forest reconstruction: drained flight events → parent-linked
//! trees.
//!
//! [`SpanForest::build`] is the one place the workspace turns a flat
//! [`FlightEvent`] drain back into its causal tree shape. Both
//! `augur-profile` (flamegraph folding) and `augur-xray` (critical-path
//! and queueing analysis) consume it, so the two tools agree on every
//! structural convention:
//!
//! - only [`FlightEventKind::Span`] events participate; instants are
//!   skipped,
//! - the **first** drained occurrence of a span id resolves parent
//!   links (duplicate-id spans still fold as extra nodes under that
//!   first occurrence's parent),
//! - a span whose parent is absent from the drain (dropped by the
//!   ring, or `parent_span_id == 0`), or that parents itself, is a
//!   root,
//! - ancestry walks are capped at [`MAX_DEPTH`] hops so a corrupt
//!   drain with cyclic parent links cannot loop an analysis.
//!
//! The forest is a pure, order-insensitive-where-it-matters function of
//! the drained events: node order follows drain order, and two drains
//! of the same recorded stream produce identical forests.

use std::collections::BTreeMap;

use crate::flight::{FlightEvent, FlightEventKind};
use crate::lane::LaneId;

/// Caps ancestry walks so a corrupt drain (cyclic parent links) cannot
/// loop a fold or a critical-path extraction.
pub const MAX_DEPTH: usize = 64;

/// One span event resolved into the forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Causal chain identity.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Resolved span name (unsanitized — views apply their own hygiene).
    pub name: String,
    /// Start time, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// The worker lane that recorded the span.
    pub lane: LaneId,
    /// Index of the parent node, or `None` for a root.
    pub parent: Option<usize>,
    /// Indices of child nodes, in drain order.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// End time (`start + dur`), saturating.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// A reconstructed span forest; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
}

impl SpanForest {
    /// Builds the forest from a drained event slice.
    pub fn build(events: &[FlightEvent]) -> SpanForest {
        // First drained occurrence wins on span-id collisions: parents
        // resolve to it, matching the historical fold semantics.
        let mut first_by_id: BTreeMap<u64, usize> = BTreeMap::new();
        let mut nodes: Vec<SpanNode> = Vec::new();
        for ev in events {
            if ev.kind != FlightEventKind::Span {
                continue;
            }
            let idx = nodes.len();
            first_by_id.entry(ev.span_id).or_insert(idx);
            nodes.push(SpanNode {
                trace_id: ev.trace_id,
                span_id: ev.span_id,
                name: ev.name.clone(),
                start_us: ev.ts_us,
                dur_us: ev.dur_us,
                lane: ev.lane,
                parent: None,
                children: Vec::new(),
            });
        }
        let mut roots = Vec::new();
        let parent_of: Vec<Option<usize>> = events
            .iter()
            .filter(|ev| ev.kind == FlightEventKind::Span)
            .map(|ev| {
                if ev.parent_span_id == 0 || ev.parent_span_id == ev.span_id {
                    None
                } else {
                    first_by_id.get(&ev.parent_span_id).copied()
                }
            })
            .collect();
        for (idx, parent) in parent_of.iter().enumerate() {
            match parent {
                Some(p) => {
                    if let Some(node) = nodes.get_mut(idx) {
                        node.parent = Some(*p);
                    }
                }
                None => roots.push(idx),
            }
        }
        for (idx, parent) in parent_of.into_iter().enumerate() {
            if let Some(p) = parent {
                if let Some(node) = nodes.get_mut(p) {
                    node.children.push(idx);
                }
            }
        }
        SpanForest { nodes, roots }
    }

    /// All nodes, in drain order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Indices of the root nodes, in drain order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// True when no span event was drained.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ancestry of `idx`, root first and `idx` last, capped at
    /// [`MAX_DEPTH`] nodes (the cycle guard). Returns an empty chain for
    /// an out-of-range index.
    pub fn ancestry(&self, idx: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut cursor = Some(idx);
        while let Some(i) = cursor {
            let Some(node) = self.nodes.get(i) else {
                break;
            };
            chain.push(i);
            if chain.len() >= MAX_DEPTH {
                break;
            }
            cursor = node.parent;
        }
        chain.reverse();
        chain
    }

    /// Summed duration of `idx`'s direct children, saturating — the
    /// quantity an exclusive-self-time fold subtracts from the parent.
    pub fn child_dur_us(&self, idx: usize) -> u64 {
        let Some(node) = self.nodes.get(idx) else {
            return 0;
        };
        node.children
            .iter()
            .filter_map(|c| self.nodes.get(*c))
            .fold(0u64, |acc, c| acc.saturating_add(c.dur_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::trace::TraceContext;

    fn tree_events() -> Vec<FlightEvent> {
        let rec = FlightRecorder::new(64);
        let root = TraceContext::root(42, 1);
        let run = rec.intern("run");
        let a = rec.intern("a");
        let leaf = rec.intern("leaf");
        let ctx_a = root.child_named("a");
        rec.record_span(ctx_a.child_named("leaf"), leaf, 0, 10);
        rec.record_span(ctx_a, a, 0, 40);
        rec.record_span(root, run, 0, 100);
        rec.drain()
    }

    #[test]
    fn builds_parent_links_and_roots() {
        let forest = SpanForest::build(&tree_events());
        assert_eq!(forest.nodes().len(), 3);
        assert_eq!(forest.roots().len(), 1);
        let root = forest.roots()[0];
        assert_eq!(forest.nodes()[root].name, "run");
        // leaf → a → run ancestry resolves through out-of-order drains.
        let leaf_idx = forest
            .nodes()
            .iter()
            .position(|n| n.name == "leaf")
            .unwrap_or(usize::MAX);
        let chain: Vec<&str> = forest
            .ancestry(leaf_idx)
            .into_iter()
            .map(|i| forest.nodes()[i].name.as_str())
            .collect();
        assert_eq!(chain, vec!["run", "a", "leaf"]);
        assert_eq!(forest.child_dur_us(root), 40);
    }

    #[test]
    fn orphans_and_self_parents_are_roots() {
        let rec = FlightRecorder::new(8);
        let n = rec.intern("orphan");
        let ctx = TraceContext::root(1, 1).child_named("x");
        rec.record_span(ctx, n, 0, 5);
        let forest = SpanForest::build(&rec.drain());
        assert_eq!(forest.roots().len(), 1);
        assert!(forest.nodes()[0].parent.is_none());
    }

    #[test]
    fn instants_do_not_participate() {
        let rec = FlightRecorder::new(8);
        let n = rec.intern("i");
        rec.record_instant(TraceContext::root(1, 3), n, 0, 9);
        assert!(SpanForest::build(&rec.drain()).is_empty());
    }

    #[test]
    fn cyclic_parent_links_are_capped() {
        // Forge a two-node cycle: a ↔ b (possible only in a corrupt
        // drain; the guard keeps ancestry finite).
        let ev = |span_id: u64, parent: u64, name: &str| FlightEvent {
            trace_id: 7,
            span_id,
            parent_span_id: parent,
            name: name.to_string(),
            kind: FlightEventKind::Span,
            ts_us: 0,
            dur_us: 1,
            arg: 0,
            lane: LaneId::CONTROL,
        };
        let forest = SpanForest::build(&[ev(1, 2, "a"), ev(2, 1, "b")]);
        assert!(forest.roots().is_empty());
        assert_eq!(forest.ancestry(0).len(), MAX_DEPTH);
    }
}
