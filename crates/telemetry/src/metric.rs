//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Every instrument is a thin handle over `Arc`-shared atomics: cloning a
//! handle shares the underlying cells, so the same metric can be updated
//! from any number of threads while a registry (or a test) reads it. The
//! record paths are wait-free single atomic RMW operations and perform no
//! allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing event count.
///
/// # Example
///
/// ```
/// use augur_telemetry::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// A counter seeded at `value` (used when migrating prior bookkeeping
    /// into the registry, e.g. cloning a store's stats).
    pub fn with_value(value: u64) -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(value)),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (consumer lag, queue depth, a
/// sweep's headline number).
///
/// Stored as `f64` bits in an atomic; non-finite writes are recorded as
/// written but rendered as `null`/`0` by the exporters.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Sets the gauge from an integer (convenience for counts).
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two range (32).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range (highest index is
/// `(64 - SUB_BITS) * SUB + SUB - 1` for values with the top bit set).
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * (SUB as usize);

/// A log-linear histogram of `u64` samples (microseconds, work units,
/// probe counts — unit-agnostic).
///
/// Values below 32 are exact; above that, each power-of-two range is
/// split into 32 linear sub-buckets, so a bucket spans at most 1/32 of
/// its lower bound. Quantile readouts return the bucket midpoint, giving
/// a **relative error ≤ 1/32 (≈3.2%) plus one unit of integer rounding**
/// — the bound the property tests in this crate assert. The record path
/// is a bucket-index computation plus three atomic adds; no allocation,
/// no locks.
///
/// # Example
///
/// ```
/// use augur_telemetry::Histogram;
///
/// let h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((49..=52).contains(&p50));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

#[derive(Debug)]
struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Per-bucket exemplar slots, allocated lazily by
    /// [`Histogram::enable_exemplars`] so histograms that never opt in
    /// pay nothing. Absent slots make [`Histogram::record_traced`]
    /// behave exactly like [`Histogram::record`].
    exemplars: OnceLock<Box<[ExemplarCell]>>,
}

/// One bucket's exemplar storage: last-writer-wins `(trace_id, value,
/// ts_us)`. The three cells are written independently with relaxed
/// stores (`trace_id` last, as the presence marker), so a reader racing
/// a writer may observe a torn exemplar — acceptable for a best-effort
/// drill-down sample, and impossible under the deterministic
/// single-writer clocks the benches pin.
#[derive(Debug, Default)]
struct ExemplarCell {
    trace_id: AtomicU64,
    value: AtomicU64,
    ts_us: AtomicU64,
}

/// A retained `(trace_id, value, ts_us)` observation for one histogram
/// bucket — the concrete trace behind a quantile, exported in
/// OpenMetrics exemplar syntax and rendered as drill-down links on the
/// watch dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Bucket index the exemplar belongs to (interpret with
    /// [`bucket_midpoint`] / [`bucket_upper_edge`]).
    pub bucket: usize,
    /// Trace id of the run/frame that recorded the value (never 0).
    pub trace_id: u64,
    /// The recorded sample value.
    pub value: u64,
    /// Timestamp of the observation on the recording clock.
    pub ts_us: u64,
}

/// A point-in-time readout of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        // Safe: v >= 32 so leading_zeros <= 58 and msb >= SUB_BITS.
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) - SUB) as usize;
        let exp = (msb - SUB_BITS + 1) as usize;
        (exp << SUB_BITS) + sub
    }
}

/// Midpoint value represented by bucket `idx` — the inverse of the
/// internal bucket-index mapping up to the documented 1/32 error bound.
/// Public so downstream aggregators (the `augur-watch` rollup engine)
/// can interpret the sparse readout from [`Histogram::nonzero_buckets`]
/// without re-deriving the bucket layout.
pub fn bucket_midpoint(idx: usize) -> u64 {
    bucket_value(idx)
}

/// Largest value bucket `idx` can hold — the inclusive upper edge, what
/// OpenMetrics renders as the `le` label of a `_bucket` series. Public
/// for the exporter and downstream aggregators.
pub fn bucket_upper_edge(idx: usize) -> u64 {
    let exp = idx >> SUB_BITS;
    let sub = (idx & (SUB as usize - 1)) as u64;
    if exp == 0 {
        sub
    } else {
        let width = 1u64 << (exp - 1);
        let lo = (SUB + sub) << (exp - 1);
        lo + width - 1
    }
}

/// Midpoint value represented by bucket `idx` (inverse of
/// [`bucket_index`] up to the documented error bound).
fn bucket_value(idx: usize) -> u64 {
    let exp = idx >> SUB_BITS;
    let sub = (idx & (SUB as usize - 1)) as u64;
    if exp == 0 {
        sub
    } else {
        let width = 1u64 << (exp - 1);
        let lo = (SUB + sub) << (exp - 1);
        lo + width / 2
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramCells {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                exemplars: OnceLock::new(),
            }),
        }
    }

    /// Opts this histogram into per-bucket exemplar retention
    /// (idempotent; allocates the slot array once). Until called,
    /// [`Histogram::record_traced`] records the value but retains no
    /// exemplar, and exports stay byte-identical to an untouched
    /// histogram.
    pub fn enable_exemplars(&self) {
        let _ = self
            .inner
            .exemplars
            .get_or_init(|| (0..BUCKETS).map(|_| ExemplarCell::default()).collect());
    }

    /// Whether [`Histogram::enable_exemplars`] has been called.
    pub fn exemplars_enabled(&self) -> bool {
        self.inner.exemplars.get().is_some()
    }

    /// Records one sample and, when exemplars are enabled and
    /// `trace_id` is nonzero, retains `(trace_id, v, ts_us)` as the
    /// bucket's exemplar (last writer wins).
    pub fn record_traced(&self, v: u64, trace_id: u64, ts_us: u64) {
        self.record(v);
        if trace_id == 0 {
            return;
        }
        if let Some(slots) = self.inner.exemplars.get() {
            if let Some(cell) = slots.get(bucket_index(v)) {
                cell.value.store(v, Ordering::Relaxed);
                cell.ts_us.store(ts_us, Ordering::Relaxed);
                cell.trace_id.store(trace_id, Ordering::Relaxed);
            }
        }
    }

    /// The retained exemplars in bucket order (empty when exemplars
    /// were never enabled or nothing was recorded with a trace).
    /// Exemplars are deliberately not moved by [`Histogram::merge`] —
    /// they identify traces of *this* recorder's samples.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let Some(slots) = self.inner.exemplars.get() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (bucket, cell) in slots.iter().enumerate() {
            let trace_id = cell.trace_id.load(Ordering::Relaxed);
            if trace_id == 0 {
                continue;
            }
            out.push(Exemplar {
                bucket,
                trace_id,
                value: cell.value.load(Ordering::Relaxed),
                ts_us: cell.ts_us.load(Ordering::Relaxed),
            });
        }
        out
    }

    /// Records one sample. Wait-free, allocation-free.
    pub fn record(&self, v: u64) {
        let cells = &*self.inner;
        if let Some(b) = cells.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.min.fetch_min(v, Ordering::Relaxed);
        cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of samples recorded so far.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the midpoint of the bucket holding
    /// the rank-`⌈q·count⌉` sample; 0 when empty. See the type docs for
    /// the error bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 || !q.is_finite() {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        // Racy concurrent records can leave `seen < rank`; fall back to max.
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Number of recorded samples whose bucket lies entirely at or above
    /// `threshold` (an under-approximation within one bucket width).
    pub fn count_above(&self, threshold: u64) -> u64 {
        let start = bucket_index(threshold);
        self.inner
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i > start)
            .map(|(_, b)| b.load(Ordering::Relaxed))
            .sum()
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs, in index
    /// order, together with the totals needed to reconstruct windowed
    /// deltas: `(buckets, count, sum)`. The sparse form is what rollup
    /// engines persist per window — a handful of pairs instead of the
    /// full dense bucket array. Interpret indexes with
    /// [`bucket_midpoint`]; counts are relaxed loads, so a concurrent
    /// writer may leave the totals off by in-flight samples.
    pub fn nonzero_buckets(&self) -> (Vec<(u32, u64)>, u64, u64) {
        let mut buckets = Vec::new();
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((idx as u32, n));
            }
        }
        (buckets, self.count(), self.sum())
    }

    /// Merges `other`'s samples into `self` bucket-by-bucket: counts and
    /// sums add exactly; min/max combine exactly; quantiles of the merged
    /// histogram keep the documented bucketing bound (relative error
    /// ≤ 1/32 ≈ 3.2%, comfortably inside the 12.5% contract the property
    /// test pins) because both histograms share one bucket layout.
    ///
    /// Intended for aggregating sharded recorders — e.g. per-thread or
    /// per-run histograms folded into one family before export, the shape
    /// `augur-doctor` relies on when snapshots are produced from shards.
    /// `other` is read with relaxed loads; merging concurrently with
    /// writers folds in whatever had landed at read time.
    pub fn merge(&self, other: &Histogram) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return; // merging a histogram into itself would double it
        }
        let count = other.inner.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        for (dst, src) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.inner.count.fetch_add(count, Ordering::Relaxed);
        self.inner
            .sum
            .fetch_add(other.inner.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .min
            .fetch_min(other.inner.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.inner
            .max
            .fetch_max(other.inner.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time readout (individual cells are
    /// loaded independently; under concurrent writes the fields may be
    /// off by in-flight samples, which is fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let min = self.inner.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 { 0 } else { min },
            max: self.inner.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::with_value(10);
        c.inc();
        assert_eq!(c.get(), 11);
        let c2 = c.clone();
        c2.add(9);
        assert_eq!(c.get(), 20, "clones share the cell");

        let g = Gauge::new();
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.set_u64(7);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn bucket_index_is_monotone_and_invertible_within_bound() {
        let mut last = 0usize;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: v={v}");
            last = idx;
            let back = bucket_value(idx);
            let err = back.abs_diff(v);
            assert!(
                err <= v / 32 + 1,
                "v={v} idx={idx} back={back} err={err} exceeds bound"
            );
        }
    }

    #[test]
    fn bucket_index_is_contiguous_at_range_boundaries() {
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_quantiles_on_uniform_data() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000);
        for (q, exact) in [(0.50, 500u64), (0.90, 900), (0.99, 990)] {
            let got = h.quantile(q);
            let err = got.abs_diff(exact);
            assert!(err <= exact / 32 + 1, "q={q} got={got} want≈{exact}");
        }
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_combines_counts_sums_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [5u64, 50, 5_000] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 111 + 5_055);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5_000);
        // `b` is untouched.
        assert_eq!(b.count(), 3);
        // Merging an empty histogram or a clone of self is a no-op.
        a.merge(&Histogram::new());
        let before = a.snapshot();
        a.merge(&a.clone());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn nonzero_buckets_round_trips_through_midpoints() {
        let h = Histogram::new();
        for v in [3u64, 3, 700, 1_000_000] {
            h.record(v);
        }
        let (buckets, count, sum) = h.nonzero_buckets();
        assert_eq!(count, 4);
        assert_eq!(sum, 3 + 3 + 700 + 1_000_000);
        assert_eq!(buckets.len(), 3, "two identical samples share a bucket");
        let total: u64 = buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, count);
        for &(idx, _) in &buckets {
            let mid = bucket_midpoint(idx as usize);
            // Every reported bucket must sit near one of the samples.
            assert!(
                [3u64, 700, 1_000_000]
                    .iter()
                    .any(|v| mid.abs_diff(*v) <= v / 32 + 1),
                "midpoint {mid} matches no recorded sample"
            );
        }
        assert!(Histogram::new().nonzero_buckets().0.is_empty());
    }

    #[test]
    fn exemplars_retain_last_trace_per_bucket() {
        let h = Histogram::new();
        h.record_traced(100, 0xabc, 10);
        assert!(
            h.exemplars().is_empty(),
            "no retention before enable_exemplars"
        );
        assert_eq!(h.count(), 1, "the sample itself still lands");

        h.enable_exemplars();
        assert!(h.exemplars_enabled());
        h.record_traced(100, 0xdead, 20);
        h.record_traced(101, 0xbeef, 30); // same bucket: overwrites
        h.record_traced(5_000, 0xfeed, 40); // different bucket
        h.record_traced(7, 0, 50); // zero trace id: no exemplar
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].trace_id, 0xbeef);
        assert_eq!(ex[0].value, 101);
        assert_eq!(ex[0].ts_us, 30);
        assert_eq!(ex[1].trace_id, 0xfeed);
        assert!(
            bucket_upper_edge(ex[1].bucket) >= 5_000
                && bucket_midpoint(ex[1].bucket).abs_diff(5_000) <= 5_000 / 32 + 1,
            "exemplar bucket must cover its value"
        );
    }

    #[test]
    fn bucket_upper_edge_bounds_its_bucket() {
        for v in [0u64, 1, 31, 32, 100, 1_000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            assert!(bucket_upper_edge(idx) >= v, "v={v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_upper_edge(idx) < bucket_upper_edge(idx + 1));
            }
        }
    }

    #[test]
    fn count_above_threshold() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1_000, 2_000] {
            h.record(v);
        }
        assert_eq!(h.count_above(500), 2);
        assert_eq!(h.count_above(2_500), 0);
    }
}
