//! Worker lanes: deterministic logical thread identity plus per-lane
//! flight-recorder rings, contention accounting, and a deterministic
//! multi-lane drain merge.
//!
//! The sharding arc (ROADMAP item 1) needs instrumentation that can
//! *see* workers. OS thread ids are useless for that — they differ per
//! run and per host — so a [`LaneId`] is a **logical** worker id
//! assigned at spawn in registration order: same program, same lane
//! numbering, every run. Each registered [`Lane`] owns
//!
//! - its **own flight-recorder ring** ([`FlightRecorder::for_lane`]),
//!   so lanes never contend on a shared write cursor and every drained
//!   [`FlightEvent`] carries the lane that recorded it;
//! - **contention accounting**: [`Lane::block`] measures a blocked
//!   window on a [`Clock`] (channel full/empty, a contended lock) and
//!   records it as a `blocked/…` span plus the `lane_blocked_us`
//!   counter, while [`Lane::work`] records ordinary spans and charges
//!   `lane_busy_us` — the inputs to xray's measured parallel
//!   efficiency `Σ busy / (lanes × elapsed)`.
//!
//! [`Lanes::merge_drains`] drains every lane and merges the per-lane
//! streams in a **canonical order** — `(ts_us, lane, per-lane drain
//! index)` — so the merged event list, and therefore every artifact
//! rendered from it (Chrome trace, xray JSON), is byte-identical no
//! matter how the OS interleaved the lanes or in which order the rings
//! were drained. Loss stays exact per lane: each [`LaneSummary`]
//! carries its ring's `drained + dropped == total` accounting and the
//! merged [`MergedDrain::truncated`] flag propagates into xray.
//!
//! # Example
//!
//! ```
//! use augur_telemetry::{Clock, Lanes, ManualTime, TraceContext};
//!
//! let lanes = Lanes::new(7, 64);
//! let lane = lanes.register("worker-0");
//! let time = ManualTime::shared();
//! let clock: Clock = time.clone();
//! let name = lane.recorder().intern("stage/encode");
//! {
//!     let _w = lane.work(&clock, lane.root(), name);
//!     time.advance_micros(250); // modeled work
//! }
//! let merged = lanes.merge_drains();
//! assert_eq!(merged.events.len(), 1);
//! assert_eq!(merged.events[0].lane, lane.id());
//! assert_eq!(merged.lanes[0].busy_us, 250);
//! assert!(!merged.truncated);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::flight::{FlightEvent, FlightRecorder, NameId};
use crate::time::Clock;
use crate::trace::TraceContext;

/// Deterministic logical worker-lane id. Lane 0 is the **control
/// lane** (the main thread / single-threaded paths); worker lanes are
/// numbered from 1 in [`Lanes::register`] order — never from OS thread
/// ids, which vary per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LaneId(pub u16);

impl LaneId {
    /// The control lane: events recorded outside any registered lane.
    pub const CONTROL: LaneId = LaneId(0);

    /// True for registered worker lanes (anything but the control lane).
    pub fn is_worker(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for LaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == 0 {
            f.write_str("control")
        } else {
            write!(f, "lane-{}", self.0)
        }
    }
}

/// Which contended resource a blocked window covers; selects the
/// pre-interned `blocked/…` span name so the hot path never interns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedSite {
    /// Waiting for space in a bounded channel (backpressure).
    ChannelSend,
    /// Waiting for data on an empty channel.
    ChannelRecv,
    /// Waiting on the broker's consumer-group commit lock.
    CommitLock,
    /// An injected or externally-imposed stall (red-gate probes).
    Stall,
}

/// Span names for the [`BlockedSite`] variants, in discriminant order.
const BLOCKED_NAMES: [&str; 4] = [
    "blocked/channel_send",
    "blocked/channel_recv",
    "blocked/commit_lock",
    "blocked/stall",
];

/// One registered worker lane: a cheap cloneable handle owning the
/// lane's ring, its deterministic trace root, and its busy/blocked
/// counters. Pass a clone to the worker thread at spawn.
#[derive(Debug, Clone)]
pub struct Lane {
    id: LaneId,
    name: Arc<str>,
    recorder: FlightRecorder,
    root: TraceContext,
    salt: Arc<AtomicU64>,
    busy_us: Arc<AtomicU64>,
    blocked_us: Arc<AtomicU64>,
    blocked_names: [NameId; 4],
}

impl Lane {
    /// This lane's deterministic id.
    pub fn id(&self) -> LaneId {
        self.id
    }

    /// The human-readable lane name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lane's private flight-recorder ring.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The lane's deterministic trace root; derive span contexts from
    /// it (or from an enclosing stage span) for lane-local events.
    pub fn root(&self) -> TraceContext {
        self.root
    }

    /// Total busy time charged to this lane, microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us.load(Ordering::Relaxed)
    }

    /// Total blocked time charged to this lane, microseconds.
    pub fn blocked_us(&self) -> u64 {
        self.blocked_us.load(Ordering::Relaxed)
    }

    /// Charges `us` of busy time without recording a span — for hot
    /// paths that account work in bulk.
    pub fn add_busy_us(&self, us: u64) {
        self.busy_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A fresh deterministic child context under `parent`, salted by a
    /// per-lane monotonic counter (deterministic while the lane is
    /// driven by one thread, which is the lane contract).
    pub fn next_ctx(&self, parent: TraceContext) -> TraceContext {
        let salt = self.salt.fetch_add(1, Ordering::Relaxed);
        parent.child(salt)
    }

    /// Starts a busy span under `parent`: on drop it records the span
    /// on this lane's ring and charges the duration to `lane_busy_us`
    /// — minus any [`Lane::block`] windows closed inside the span, so
    /// time spent blocked never double-counts as busy.
    pub fn work(&self, clock: &Clock, parent: TraceContext, name: NameId) -> LaneWork {
        LaneWork {
            blocked_at_start: self.blocked_us(),
            lane: self.clone(),
            clock: clock.clone(),
            ctx: self.next_ctx(parent),
            name,
            start_us: clock.now_micros(),
        }
    }

    /// Starts a blocked window under `parent`: on drop it charges the
    /// duration to `lane_blocked_us` and, when non-zero, records a
    /// `blocked/…` span so the wait is visible on the lane's timeline.
    /// A zero-length window is completely free — it neither records a
    /// span nor consumes a context salt, so speculative guards around
    /// `try_lock` fast paths leave the lane's deterministic span-id
    /// sequence untouched when no real wait happened.
    pub fn block(&self, clock: &Clock, parent: TraceContext, site: BlockedSite) -> LaneBlock {
        LaneBlock {
            lane: self.clone(),
            clock: clock.clone(),
            parent,
            name: self.blocked_names[site as usize],
            start_us: clock.now_micros(),
        }
    }
}

/// Guard for [`Lane::work`]: records the span and charges busy time on
/// drop.
pub struct LaneWork {
    lane: Lane,
    clock: Clock,
    ctx: TraceContext,
    name: NameId,
    start_us: u64,
    blocked_at_start: u64,
}

impl std::fmt::Debug for LaneWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneWork")
            .field("lane", &self.lane.id)
            .field("ctx", &self.ctx)
            .field("start_us", &self.start_us)
            .finish_non_exhaustive()
    }
}

impl LaneWork {
    /// The span's context — derive child contexts from it.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for LaneWork {
    fn drop(&mut self) {
        let dur = self.clock.now_micros().saturating_sub(self.start_us);
        // Blocked windows closed while this span was open (the lane is
        // driven by one thread) are contention, not work.
        let nested_blocked = self.lane.blocked_us().saturating_sub(self.blocked_at_start);
        self.lane
            .busy_us
            .fetch_add(dur.saturating_sub(nested_blocked), Ordering::Relaxed);
        self.lane
            .recorder
            .record_span(self.ctx, self.name, self.start_us, dur);
    }
}

/// Guard for [`Lane::block`]: charges blocked time on drop and records
/// a `blocked/…` span when the window was non-empty.
pub struct LaneBlock {
    lane: Lane,
    clock: Clock,
    parent: TraceContext,
    name: NameId,
    start_us: u64,
}

impl std::fmt::Debug for LaneBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneBlock")
            .field("lane", &self.lane.id)
            .field("parent", &self.parent)
            .field("start_us", &self.start_us)
            .finish_non_exhaustive()
    }
}

impl LaneBlock {
    /// Ends the blocked window now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for LaneBlock {
    fn drop(&mut self) {
        let dur = self.clock.now_micros().saturating_sub(self.start_us);
        self.lane.blocked_us.fetch_add(dur, Ordering::Relaxed);
        if dur > 0 {
            // The context is derived only now: empty windows must not
            // perturb the lane's salt sequence (see [`Lane::block`]).
            let ctx = self.lane.next_ctx(self.parent);
            self.lane
                .recorder
                .record_span(ctx, self.name, self.start_us, dur);
        }
    }
}

/// Loss and contention accounting for one lane in a [`MergedDrain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSummary {
    /// The lane's deterministic id.
    pub id: LaneId,
    /// The lane name given at registration (`"control"` for lane 0).
    pub name: String,
    /// Events this merge drained from the lane's ring.
    pub drained: u64,
    /// Events the lane's ring has dropped (cumulative; exact at
    /// quiescence: `drained totals + dropped == total`).
    pub dropped: u64,
    /// Events the lane's ring accepted over its lifetime.
    pub total: u64,
    /// Busy time charged via [`Lane::work`] / [`Lane::add_busy_us`], µs.
    pub busy_us: u64,
    /// Blocked time charged via [`Lane::block`], µs.
    pub blocked_us: u64,
}

/// The result of a deterministic multi-lane drain merge: events in
/// canonical `(ts_us, lane, per-lane order)` order plus exact per-lane
/// loss accounting.
#[derive(Debug, Clone, Default)]
pub struct MergedDrain {
    /// Merged events, canonically ordered (see [`merge_drained`]).
    pub events: Vec<FlightEvent>,
    /// Per-lane accounting, sorted by lane id.
    pub lanes: Vec<LaneSummary>,
    /// Σ per-lane totals: events accepted across all merged rings.
    pub total_events: u64,
    /// Σ per-lane drops: events lost across all merged rings.
    pub dropped_events: u64,
    /// True when any lane's ring dropped events — the merged stream
    /// has holes and downstream analysis (xray) must say so.
    pub truncated: bool,
}

/// Merges already-drained per-lane batches into canonical order.
///
/// The order is a pure function of the batch *contents*: events sort
/// by `(ts_us, lane id, position within the lane's drain)`, so the
/// merged list — and any artifact rendered from it — is byte-identical
/// regardless of the order the rings were drained or the order batches
/// are passed in. Per-lane drains already preserve ticket order, which
/// is what the position tie-break pins down for equal timestamps.
pub fn merge_drained(batches: Vec<(LaneSummary, Vec<FlightEvent>)>) -> MergedDrain {
    let mut lanes: Vec<LaneSummary> = Vec::with_capacity(batches.len());
    let mut keyed: Vec<((u64, u16, u64), FlightEvent)> = Vec::new();
    for (summary, events) in batches {
        for (idx, event) in events.into_iter().enumerate() {
            keyed.push(((event.ts_us, summary.id.0, idx as u64), event));
        }
        lanes.push(summary);
    }
    lanes.sort_by(|a, b| a.id.cmp(&b.id).then_with(|| a.name.cmp(&b.name)));
    keyed.sort_by_key(|entry| entry.0);
    let total_events = lanes
        .iter()
        .fold(0u64, |acc, l| acc.saturating_add(l.total));
    let dropped_events = lanes
        .iter()
        .fold(0u64, |acc, l| acc.saturating_add(l.dropped));
    MergedDrain {
        events: keyed.into_iter().map(|(_, e)| e).collect(),
        lanes,
        total_events,
        dropped_events,
        truncated: dropped_events > 0,
    }
}

#[derive(Debug)]
struct LanesInner {
    seed: u64,
    capacity: usize,
    /// Next id to hand out (worker ids start at 1). An atomic — not
    /// the `lanes` mutex — allocates ids, so registration never holds
    /// the registry lock across name interning (lock-order hygiene).
    next_id: AtomicU64,
    lanes: Mutex<Vec<Lane>>,
}

/// The lane registry: hands out deterministic [`LaneId`]s in
/// registration order and merges all lane rings into one canonical
/// drain. Cloning shares the registry.
#[derive(Debug, Clone)]
pub struct Lanes {
    inner: Arc<LanesInner>,
}

impl Lanes {
    /// A registry whose lanes derive trace roots from `seed` and whose
    /// rings hold `capacity_per_lane` entries each.
    pub fn new(seed: u64, capacity_per_lane: usize) -> Lanes {
        Lanes {
            inner: Arc::new(LanesInner {
                seed,
                capacity: capacity_per_lane,
                next_id: AtomicU64::new(1),
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Registers the next worker lane. Ids are assigned sequentially
    /// from 1 in call order — call from the *spawning* thread, before
    /// handing the returned [`Lane`] to the worker, so the numbering is
    /// program order, not scheduler order.
    pub fn register(&self, name: &str) -> Lane {
        let raw = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let id = LaneId(u16::try_from(raw).unwrap_or(u16::MAX));
        let recorder = FlightRecorder::for_lane(self.inner.capacity, id);
        let blocked_names = BLOCKED_NAMES.map(|n| recorder.intern(n));
        // Salt the root key with a lane tag so lane roots never collide
        // with scenario roots derived from small ordinals.
        let root = TraceContext::root(self.inner.seed, 0x6c61_6e65_0000_0000 | u64::from(id.0));
        let lane = Lane {
            id,
            name: Arc::from(name),
            recorder,
            root,
            salt: Arc::new(AtomicU64::new(0)),
            busy_us: Arc::new(AtomicU64::new(0)),
            blocked_us: Arc::new(AtomicU64::new(0)),
            blocked_names,
        };
        self.inner.lanes.lock().push(lane.clone());
        lane
    }

    /// Number of registered lanes.
    pub fn len(&self) -> usize {
        self.inner.lanes.lock().len()
    }

    /// True when no lane has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the registered lane handles, in id order.
    pub fn handles(&self) -> Vec<Lane> {
        let mut lanes = self.inner.lanes.lock().clone();
        // Push order can trail id order if registrations ever race;
        // the canonical drain is keyed by id, so sort here.
        lanes.sort_by_key(|l| l.id.0);
        lanes
    }

    /// Drains every lane's ring and merges the streams canonically
    /// (see [`merge_drained`]). Call at quiescence — after the worker
    /// threads have joined — for exact `drained + dropped == total`
    /// accounting per lane.
    pub fn merge_drains(&self) -> MergedDrain {
        self.merge_batches(None)
    }

    /// Like [`Lanes::merge_drains`], but also drains `control` — a
    /// plain (non-lane) recorder whose events merge in as the control
    /// lane (lane 0).
    pub fn merge_drains_with(&self, control: &FlightRecorder) -> MergedDrain {
        self.merge_batches(Some(control))
    }

    fn merge_batches(&self, control: Option<&FlightRecorder>) -> MergedDrain {
        let lanes = self.handles();
        let mut batches: Vec<(LaneSummary, Vec<FlightEvent>)> = Vec::with_capacity(lanes.len() + 1);
        if let Some(rec) = control {
            let events = rec.drain();
            batches.push((
                LaneSummary {
                    id: LaneId::CONTROL,
                    name: "control".to_string(),
                    drained: events.len() as u64,
                    dropped: rec.dropped_events(),
                    total: rec.total_events(),
                    busy_us: 0,
                    blocked_us: 0,
                },
                events,
            ));
        }
        for lane in lanes {
            let events = lane.recorder.drain();
            batches.push((
                LaneSummary {
                    id: lane.id,
                    name: lane.name.to_string(),
                    drained: events.len() as u64,
                    dropped: lane.recorder.dropped_events(),
                    total: lane.recorder.total_events(),
                    busy_us: lane.busy_us(),
                    blocked_us: lane.blocked_us(),
                },
                events,
            ));
        }
        merge_drained(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ManualTime;

    #[test]
    fn registration_assigns_sequential_ids() {
        let lanes = Lanes::new(1, 64);
        let a = lanes.register("pump");
        let b = lanes.register("worker-0");
        assert_eq!(a.id(), LaneId(1));
        assert_eq!(b.id(), LaneId(2));
        assert_eq!(a.name(), "pump");
        assert!(a.id().is_worker());
        assert!(!LaneId::CONTROL.is_worker());
        assert_eq!(lanes.len(), 2);
        assert_eq!(format!("{}", a.id()), "lane-1");
        assert_eq!(format!("{}", LaneId::CONTROL), "control");
    }

    #[test]
    fn work_and_block_charge_the_lane_counters() {
        let lanes = Lanes::new(2, 64);
        let lane = lanes.register("w");
        let time = ManualTime::shared();
        let clock: Clock = time.clone();
        let stage = lane.recorder().intern("stage/run");
        {
            let w = lane.work(&clock, lane.root(), stage);
            time.advance_micros(30);
            w.end();
        }
        {
            let b = lane.block(&clock, lane.root(), BlockedSite::ChannelSend);
            time.advance_micros(12);
            b.end();
        }
        // A zero-length blocked window charges nothing and records no span.
        lane.block(&clock, lane.root(), BlockedSite::ChannelRecv)
            .end();
        assert_eq!(lane.busy_us(), 30);
        assert_eq!(lane.blocked_us(), 12);
        let merged = lanes.merge_drains();
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].name, "stage/run");
        assert_eq!(merged.events[1].name, "blocked/channel_send");
        assert!(merged.events.iter().all(|e| e.lane == lane.id()));
        assert_eq!(merged.lanes[0].busy_us, 30);
        assert_eq!(merged.lanes[0].blocked_us, 12);
    }

    #[test]
    fn merge_order_is_independent_of_batch_order() {
        let mk = |lane: u16, ts: &[u64]| {
            let lanes = Lanes::new(3, 64);
            let mut handle = None;
            for i in 1..=lane {
                handle = Some(lanes.register(&format!("w{i}")));
            }
            let Some(h) = handle else {
                return (lanes.merge_drains().lanes.pop(), Vec::new());
            };
            let n = h.recorder().intern("e");
            for &t in ts {
                h.recorder().record_span(h.next_ctx(h.root()), n, t, 1);
            }
            let events = h.recorder().drain();
            let summary = LaneSummary {
                id: h.id(),
                name: h.name().to_string(),
                drained: events.len() as u64,
                dropped: 0,
                total: events.len() as u64,
                busy_us: 0,
                blocked_us: 0,
            };
            (Some(summary), events)
        };
        let (sa, ea) = mk(1, &[5, 10, 10]);
        let (sb, eb) = mk(2, &[10, 20]);
        let (sa, sb) = match (sa, sb) {
            (Some(a), Some(b)) => (a, b),
            _ => return,
        };
        let fwd = merge_drained(vec![(sa.clone(), ea.clone()), (sb.clone(), eb.clone())]);
        let rev = merge_drained(vec![(sb, eb), (sa, ea)]);
        assert_eq!(fwd.events, rev.events, "batch order must not matter");
        assert_eq!(fwd.lanes, rev.lanes);
        // Equal timestamps: lane 1 sorts before lane 2, ring order kept.
        let at10: Vec<u16> = fwd
            .events
            .iter()
            .filter(|e| e.ts_us == 10)
            .map(|e| e.lane.0)
            .collect();
        assert_eq!(at10, vec![1, 1, 2]);
    }

    #[test]
    fn per_lane_loss_is_exact_and_propagates_truncation() {
        let lanes = Lanes::new(4, 8);
        let lossy = lanes.register("lossy");
        let clean = lanes.register("clean");
        let n = lossy.recorder().intern("x");
        for i in 0..20u64 {
            lossy
                .recorder()
                .record_span(lossy.next_ctx(lossy.root()), n, i, 1);
        }
        let m = clean.recorder().intern("y");
        clean
            .recorder()
            .record_span(clean.next_ctx(clean.root()), m, 0, 1);
        let merged = lanes.merge_drains();
        assert!(merged.truncated);
        let lossy_sum = &merged.lanes[0];
        assert_eq!(lossy_sum.id, LaneId(1));
        assert_eq!(lossy_sum.drained + lossy_sum.dropped, lossy_sum.total);
        assert_eq!(lossy_sum.dropped, 12);
        let clean_sum = &merged.lanes[1];
        assert_eq!(clean_sum.dropped, 0);
        assert_eq!(clean_sum.drained, 1);
        assert_eq!(merged.total_events, 21);
        assert_eq!(merged.dropped_events, 12);
        assert_eq!(
            merged.events.len() as u64 + merged.dropped_events,
            merged.total_events
        );
    }

    #[test]
    fn control_recorder_merges_as_lane_zero() {
        let lanes = Lanes::new(5, 64);
        let lane = lanes.register("w");
        let control = FlightRecorder::new(64);
        let c = control.intern("control/tick");
        control.record_span(TraceContext::root(5, 0), c, 0, 2);
        let n = lane.recorder().intern("w/run");
        lane.recorder()
            .record_span(lane.next_ctx(lane.root()), n, 0, 3);
        let merged = lanes.merge_drains_with(&control);
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].lane, LaneId::CONTROL);
        assert_eq!(merged.events[0].name, "control/tick");
        assert_eq!(merged.events[1].lane, LaneId(1));
        assert_eq!(merged.lanes[0].name, "control");
    }
}
