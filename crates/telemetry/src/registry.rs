//! The metric registry: named, labeled families of instruments.
//!
//! A [`Registry`] is a sharded map from `(name, labels)` to a shared
//! instrument handle. **Registration** (get-or-create) takes a short
//! shard lock; the **hot path** never touches the registry — call sites
//! hold the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles, whose
//! record operations are pure atomics. Cloning a `Registry` clones an
//! `Arc`, so subsystems can share one registry without lifetimes.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Owned label pairs, sorted by key for canonical identity and output.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Labels,
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

#[derive(Debug, Clone)]
enum MetricEntry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

const SHARDS: usize = 8;

#[derive(Debug, Default)]
struct Inner {
    shards: [RwLock<BTreeMap<MetricKey, MetricEntry>>; SHARDS],
}

/// FNV-1a over the metric name, used only to pick a shard.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// A point-in-time readout of one counter family member.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// A point-in-time readout of one gauge family member.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// A point-in-time readout of one histogram family member.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramFamilySnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Quantile/count/sum readout.
    pub stats: HistogramSnapshot,
}

/// Everything a registry holds, read at one point in time and sorted by
/// `(name, labels)` — the input to both exporters and to assertions in
/// tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramFamilySnapshot>,
}

/// The sharded metric registry; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry (created on first use). Library code
    /// should take a `&Registry` parameter instead; the global exists for
    /// binaries and examples that want zero plumbing.
    pub fn global() -> Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new).clone()
    }

    fn get_or_insert(&self, name: &str, labels: &[(&str, &str)], make: MetricEntry) -> MetricEntry {
        let key = make_key(name, labels);
        let shard = self
            .inner
            .shards
            .get(shard_of(name))
            .unwrap_or_else(|| &self.inner.shards[0]);
        if let Some(entry) = shard.read().get(&key) {
            return entry.clone();
        }
        let mut map = shard.write();
        map.entry(key).or_insert(make).clone()
    }

    /// The counter `name` with no labels (registered on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// The counter `name` with the given labels. If the key is already
    /// registered as a different metric type, a detached counter is
    /// returned (updates still work; nothing is exported) — mixing types
    /// under one name is a bug the exporter must not amplify into a panic.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, MetricEntry::Counter(Counter::new())) {
            MetricEntry::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// The gauge `name` with no labels (registered on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, &[])
    }

    /// The gauge `name` with the given labels (see [`Registry::counter_labeled`]
    /// for the type-conflict rule).
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, MetricEntry::Gauge(Gauge::new())) {
            MetricEntry::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// The histogram `name` with no labels (registered on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_labeled(name, &[])
    }

    /// The histogram `name` with the given labels (see
    /// [`Registry::counter_labeled`] for the type-conflict rule).
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, MetricEntry::Histogram(Histogram::new())) {
            MetricEntry::Histogram(h) => h,
            _ => Histogram::new(),
        }
    }

    /// Live handles to every registered histogram, sorted by
    /// `(name, labels)`. Unlike [`Registry::snapshot`], which bakes
    /// quantiles into a [`HistogramSnapshot`], this hands back the shared
    /// instruments themselves so an aggregator (the `augur-watch` rollup
    /// engine) can read raw bucket contents and compute windowed deltas.
    pub fn histogram_handles(&self) -> Vec<(String, Labels, Histogram)> {
        let mut out: Vec<(String, Labels, Histogram)> = Vec::new();
        for shard in &self.inner.shards {
            for (k, v) in shard.read().iter() {
                if let MetricEntry::Histogram(h) = v {
                    out.push((k.name.clone(), k.labels.clone(), h.clone()));
                }
            }
        }
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }

    /// Reads every registered metric, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut entries: Vec<(MetricKey, MetricEntry)> = Vec::new();
        for shard in &self.inner.shards {
            for (k, v) in shard.read().iter() {
                entries.push((k.clone(), v.clone()));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut snap = RegistrySnapshot::default();
        for (key, entry) in entries {
            match entry {
                MetricEntry::Counter(c) => snap.counters.push(CounterSnapshot {
                    name: key.name,
                    labels: key.labels,
                    value: c.get(),
                }),
                MetricEntry::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: key.name,
                    labels: key.labels,
                    value: g.get(),
                }),
                MetricEntry::Histogram(h) => snap.histograms.push(HistogramFamilySnapshot {
                    name: key.name,
                    labels: key.labels,
                    stats: h.snapshot(),
                }),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("requests_total").get(), 2);
    }

    #[test]
    fn labels_distinguish_family_members() {
        let reg = Registry::new();
        reg.counter_labeled("hits", &[("shard", "a")]).add(1);
        reg.counter_labeled("hits", &[("shard", "b")]).add(2);
        // Label order does not matter.
        let c = reg.counter_labeled("multi", &[("x", "1"), ("a", "2")]);
        c.inc();
        assert_eq!(
            reg.counter_labeled("multi", &[("a", "2"), ("x", "1")])
                .get(),
            1
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 3);
    }

    #[test]
    fn type_conflict_yields_detached_metric() {
        let reg = Registry::new();
        reg.counter("mixed").inc();
        let g = reg.gauge("mixed");
        g.set(5.0); // must not panic, must not clobber the counter
        assert_eq!(reg.counter("mixed").get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.len(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.gauge("z_last").set(1.0);
        reg.gauge("a_first").set(2.0);
        reg.histogram("lat").record(10);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, vec!["a_first", "z_last"]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms.first().map(|h| h.stats.count), Some(1));
    }

    #[test]
    fn histogram_handles_are_live_and_sorted() {
        let reg = Registry::new();
        reg.histogram_labeled("lat", &[("s", "b")]).record(1);
        reg.histogram_labeled("lat", &[("s", "a")]).record(1);
        reg.histogram("alpha").record(1);
        reg.counter("not_a_histogram").inc();
        let handles = reg.histogram_handles();
        let keys: Vec<(String, Labels)> = handles
            .iter()
            .map(|(n, l, _)| (n.clone(), l.clone()))
            .collect();
        assert_eq!(keys[0].0, "alpha");
        assert_eq!(keys[1].1, vec![("s".to_string(), "a".to_string())]);
        assert_eq!(keys[2].1, vec![("s".to_string(), "b".to_string())]);
        // Handles are live: recording through the registry is visible.
        reg.histogram("alpha").record(2);
        let alpha = handles.iter().find(|(n, _, _)| n == "alpha");
        assert_eq!(alpha.map(|(_, _, h)| h.count()), Some(2));
    }

    #[test]
    fn global_registry_is_shared() {
        let a = Registry::global();
        let b = Registry::global();
        a.counter("global_smoke_total").inc();
        assert!(b.counter("global_smoke_total").get() >= 1);
    }
}
