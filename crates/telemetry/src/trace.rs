//! Causal trace context: the identity a unit of work carries across
//! layer boundaries.
//!
//! A [`TraceContext`] names one causal chain (`trace_id`), the current
//! position in it (`span_id`), and the position it descends from
//! (`parent_span_id`). The stream layer attaches a context to each
//! [`Record`](https://docs.rs/), the pipeline forwards it through its
//! stages, and the cloud/store layers derive children for offload tasks
//! and flush/compaction work — so a slow frame can be walked back to the
//! exact stage, record, or offload decision that caused it.
//!
//! **Determinism.** Ids are *derived*, never drawn from entropy: a root
//! context is a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//! finalizer over `(seed, key)` and every child id mixes the parent's
//! `span_id` with a caller-supplied salt. Two runs with the same seed and
//! the same record keys produce bit-for-bit identical traces under
//! [`ManualTime`](crate::ManualTime) — the property `tests/trace_causality.rs`
//! asserts at the workspace level.
//!
//! # Example
//!
//! ```
//! use augur_telemetry::TraceContext;
//!
//! let root = TraceContext::root(42, 7);
//! let child = root.child_named("pipeline/transform");
//! assert_eq!(child.trace_id, root.trace_id);
//! assert_eq!(child.parent_span_id, root.span_id);
//! // Same inputs, same ids: derivation is pure.
//! assert_eq!(TraceContext::root(42, 7), root);
//! ```

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixing function.
/// Used for id derivation only — this is not a cryptographic hash.
/// Public so downstream deterministic policies (the `augur-sample`
/// head-sampling verdict and reservoir keys) hash with the exact same
/// mix as trace-id derivation.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a name, used to salt child-span derivation so siblings
/// with different stage names get distinct span ids.
fn name_salt(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Span id 0 is reserved to mean "no parent" (a root); derived ids are
/// nudged off zero so the reservation is unambiguous.
fn nonzero(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

/// The causal identity carried by a unit of work. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identity of the whole causal chain (stable across all descendants).
    pub trace_id: u64,
    /// Identity of the current span within the chain (never 0).
    pub span_id: u64,
    /// The span this one descends from; 0 for a root.
    pub parent_span_id: u64,
    /// Whether downstream layers should record events for this chain.
    /// Unsampled contexts still propagate ids (so a child created later
    /// stays causally linked) but recorders skip them.
    pub sampled: bool,
}

impl TraceContext {
    /// A root context derived deterministically from a run `seed` and a
    /// work `key` (record key, frame index, task ordinal). Same inputs,
    /// same ids.
    pub fn root(seed: u64, key: u64) -> TraceContext {
        let trace_id = nonzero(mix64(seed ^ mix64(key)));
        TraceContext {
            trace_id,
            span_id: nonzero(mix64(trace_id)),
            parent_span_id: 0,
            sampled: true,
        }
    }

    /// A child of `self` salted by an arbitrary `salt` (use a stage
    /// ordinal or an interned name id when the name string is not at
    /// hand). Derivation is pure: same parent + salt, same child.
    pub fn child(&self, salt: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: nonzero(mix64(self.span_id ^ mix64(salt))),
            parent_span_id: self.span_id,
            sampled: self.sampled,
        }
    }

    /// A child of `self` salted by a stage name.
    pub fn child_named(&self, name: &str) -> TraceContext {
        self.child(name_salt(name))
    }

    /// Whether this context starts its chain.
    pub fn is_root(&self) -> bool {
        self.parent_span_id == 0
    }

    /// A copy with sampling turned off (ids keep propagating; recorders
    /// skip the events).
    pub fn unsampled(self) -> TraceContext {
        TraceContext {
            sampled: false,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_derivation_is_deterministic_and_distinct() {
        let a = TraceContext::root(1, 1);
        assert_eq!(a, TraceContext::root(1, 1));
        assert_ne!(a.trace_id, TraceContext::root(1, 2).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(2, 1).trace_id);
        assert!(a.is_root());
        assert!(a.sampled);
        assert_ne!(a.span_id, 0);
    }

    #[test]
    fn children_stay_in_trace_and_link_to_parent() {
        let root = TraceContext::root(9, 9);
        let a = root.child_named("transform");
        let b = root.child_named("window");
        assert_eq!(a.trace_id, root.trace_id);
        assert_eq!(a.parent_span_id, root.span_id);
        assert_ne!(a.span_id, b.span_id, "sibling stages get distinct spans");
        assert!(!a.is_root());
        let grand = a.child(3);
        assert_eq!(grand.parent_span_id, a.span_id);
        assert_eq!(grand.trace_id, root.trace_id);
    }

    #[test]
    fn sampling_propagates_to_children() {
        let root = TraceContext::root(5, 5).unsampled();
        assert!(!root.child(1).sampled);
        // Ids are unaffected by the sampling bit.
        assert_eq!(
            root.child(1).span_id,
            TraceContext::root(5, 5).child(1).span_id
        );
    }

    #[test]
    fn derived_ids_avoid_the_reserved_zero() {
        for seed in 0..64u64 {
            for key in 0..64u64 {
                let r = TraceContext::root(seed, key);
                assert_ne!(r.span_id, 0);
                assert_ne!(r.child(key).span_id, 0);
            }
        }
    }
}
