//! Span tracing: named timed sections recorded as duration histograms.
//!
//! A [`Tracer`] binds a [`Registry`] to a [`TimeSource`] and an optional
//! set of base labels (e.g. `scenario="tourism"`). Opening a span returns
//! a [`SpanGuard`] that measures the clock across its lifetime and, on
//! drop, records the elapsed **microseconds** into the histogram family
//! `span_duration_us{span="<name>", ..base}`. Under a
//! [`crate::ManualTime`] advanced by modeled work units, span durations
//! are deterministic — the property the scenario latency breakdowns rely
//! on.

use crate::metric::Histogram;
use crate::registry::Registry;
use crate::time::Clock;

/// The histogram family spans record into.
pub const SPAN_METRIC: &str = "span_duration_us";
/// The label carrying the span name.
pub const SPAN_LABEL: &str = "span";

/// Factory for [`SpanGuard`]s; see the module docs.
#[derive(Clone)]
pub struct Tracer {
    registry: Registry,
    clock: Clock,
    base_labels: Vec<(String, String)>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("base_labels", &self.base_labels)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer over `registry` reading time from `clock`.
    pub fn new(registry: &Registry, clock: Clock) -> Self {
        Tracer::with_labels(registry, clock, &[])
    }

    /// A tracer whose spans all carry `labels` in addition to the span
    /// name (e.g. `[("scenario", "tourism")]`).
    pub fn with_labels(registry: &Registry, clock: Clock, labels: &[(&str, &str)]) -> Self {
        Tracer {
            registry: registry.clone(),
            clock,
            base_labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// The registry this tracer records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The tracer's time source.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn span_histogram(&self, name: &str) -> Histogram {
        let mut labels: Vec<(&str, &str)> = vec![(SPAN_LABEL, name)];
        for (k, v) in &self.base_labels {
            labels.push((k.as_str(), v.as_str()));
        }
        self.registry.histogram_labeled(SPAN_METRIC, &labels)
    }

    /// Opens a span; the elapsed time from now until the guard drops is
    /// recorded into `span_duration_us{span=name}`.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            histogram: self.span_histogram(name),
            clock: self.clock.clone(),
            start_nanos: self.clock.now_nanos(),
        }
    }

    /// Records a span duration directly, for call sites that compute a
    /// modeled latency instead of measuring one (e.g. the offload
    /// estimator's per-task times).
    pub fn record_span_micros(&self, name: &str, micros: u64) {
        self.span_histogram(name).record(micros);
    }
}

/// Live span; records its duration on drop (or via [`SpanGuard::end`]).
pub struct SpanGuard {
    histogram: Histogram,
    clock: Clock,
    start_nanos: u64,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("start_nanos", &self.start_nanos)
            .finish_non_exhaustive()
    }
}

impl SpanGuard {
    /// Microseconds elapsed since the span opened.
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start_nanos) / 1_000
    }

    /// Ends the span now (equivalent to dropping it, but reads better at
    /// call sites that end a stage explicitly).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ManualTime;

    #[test]
    fn span_records_elapsed_manual_time() {
        let reg = Registry::new();
        let clock = ManualTime::shared();
        let tracer = Tracer::with_labels(&reg, clock.clone(), &[("scenario", "test")]);
        {
            let _s = tracer.span("stage_a");
            clock.advance_micros(120);
        }
        {
            let s = tracer.span("stage_a");
            clock.advance_micros(80);
            assert_eq!(s.elapsed_micros(), 80);
            s.end();
        }
        let snap = reg.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| {
                h.name == SPAN_METRIC
                    && h.labels
                        .iter()
                        .any(|(k, v)| k == SPAN_LABEL && v == "stage_a")
            })
            .cloned();
        let Some(h) = h else {
            panic!("span histogram not registered");
        };
        assert_eq!(h.stats.count, 2);
        assert_eq!(h.stats.sum, 200);
        assert!(h.labels.contains(&("scenario".into(), "test".into())));
    }

    #[test]
    fn record_span_micros_is_direct() {
        let reg = Registry::new();
        let tracer = Tracer::new(&reg, ManualTime::shared());
        tracer.record_span_micros("modeled", 42);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms.first().map(|h| h.stats.sum), Some(42));
    }
}
