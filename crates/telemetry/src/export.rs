//! Exposition formats: Prometheus text and JSON snapshots.
//!
//! Both exporters render a [`RegistrySnapshot`], so a single consistent
//! read feeds either format. Histograms are exposed Prometheus-style as
//! summaries (`{quantile="0.5"}` series plus `_sum`/`_count`), and as
//! objects with explicit quantile fields in JSON — the shape the bench
//! harness writes to `results/<bench>.json` for trajectory tracking.

use std::fmt::Write as _;

use crate::metric::bucket_upper_edge;
use crate::registry::{Labels, Registry, RegistrySnapshot};

/// The content type the OpenMetrics rendering must be served under —
/// exemplar syntax is only defined for this exposition format, so the
/// watch endpoint negotiates it via the request's `Accept` header.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Escapes `s` for inclusion in a double-quoted JSON string.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as a JSON number, non-finite as `null`.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return String::from("null");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and line-feed must be backslash-escaped
/// (in that order — escaping `\` first keeps the output unambiguous,
/// which is what lets the round-trip test parse it back).
pub fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn json_labels(labels: &Labels) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

impl Registry {
    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Counters become `counter` families, gauges `gauge`, histograms
    /// `summary` (quantile series + `_sum` + `_count`). `# TYPE` lines are
    /// emitted once per family.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for c in &snap.counters {
            type_line(&mut out, &c.name, "counter");
            let _ = writeln!(
                out,
                "{}{} {}",
                c.name,
                label_block(&c.labels, None),
                c.value
            );
        }
        for g in &snap.gauges {
            type_line(&mut out, &g.name, "gauge");
            let v = if g.value.is_finite() {
                format!("{}", g.value)
            } else {
                String::from("NaN")
            };
            let _ = writeln!(out, "{}{} {}", g.name, label_block(&g.labels, None), v);
        }
        for h in &snap.histograms {
            type_line(&mut out, &h.name, "summary");
            for (q, v) in [
                ("0.5", h.stats.p50),
                ("0.9", h.stats.p90),
                ("0.95", h.stats.p95),
                ("0.99", h.stats.p99),
            ] {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    h.name,
                    label_block(&h.labels, Some(("quantile", q))),
                    v
                );
            }
            let lb = label_block(&h.labels, None);
            let _ = writeln!(out, "{}_sum{} {}", h.name, lb, h.stats.sum);
            let _ = writeln!(out, "{}_count{} {}", h.name, lb, h.stats.count);
        }
        out
    }

    /// Renders every metric as a compact JSON object:
    /// `{"counters":[...],"gauges":[...],"histograms":[...]}`.
    pub fn render_json(&self) -> String {
        render_snapshot_json(&self.snapshot())
    }

    /// Renders every metric in the OpenMetrics text exposition format
    /// (served under [`OPENMETRICS_CONTENT_TYPE`]).
    ///
    /// Counters keep their `*_total` sample names under a stripped
    /// family name; gauges render unchanged; histograms render as true
    /// OpenMetrics histograms — cumulative `_bucket{le="…"}` series
    /// over the non-empty buckets plus `_sum`/`_count` — because only
    /// `_bucket` lines may carry exemplars. A bucket that retains an
    /// [`crate::Exemplar`] appends it in exemplar syntax:
    /// `… # {trace_id="<016x>"} <value> <ts_seconds>`, the id format
    /// matching the Chrome-trace args so a spike links straight to its
    /// retained trace. Ends with the mandated `# EOF` terminator.
    pub fn render_openmetrics(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for c in &snap.counters {
            let family = c.name.strip_suffix("_total").unwrap_or(&c.name);
            type_line(&mut out, family, "counter");
            let _ = writeln!(
                out,
                "{family}_total{} {}",
                label_block(&c.labels, None),
                c.value
            );
        }
        for g in &snap.gauges {
            type_line(&mut out, &g.name, "gauge");
            let v = if g.value.is_finite() {
                format!("{}", g.value)
            } else {
                String::from("NaN")
            };
            let _ = writeln!(out, "{}{} {}", g.name, label_block(&g.labels, None), v);
        }
        for (name, labels, hist) in self.histogram_handles() {
            type_line(&mut out, &name, "histogram");
            let exemplars = hist.exemplars();
            let (buckets, count, sum) = hist.nonzero_buckets();
            let mut cumulative = 0u64;
            for (idx, n) in buckets {
                cumulative += n;
                let le = format!("{}", bucket_upper_edge(idx as usize));
                let _ = write!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    label_block(&labels, Some(("le", &le)))
                );
                if let Some(ex) = exemplars.iter().find(|e| e.bucket == idx as usize) {
                    let _ = write!(
                        out,
                        " # {{trace_id=\"{:016x}\"}} {} {}.{:06}",
                        ex.trace_id,
                        ex.value,
                        ex.ts_us / 1_000_000,
                        ex.ts_us % 1_000_000
                    );
                }
                out.push('\n');
            }
            let lb = label_block(&labels, None);
            let _ = writeln!(
                out,
                "{name}_bucket{} {count}",
                label_block(&labels, Some(("le", "+Inf")))
            );
            let _ = writeln!(out, "{name}_sum{lb} {sum}");
            let _ = writeln!(out, "{name}_count{lb} {count}");
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Renders the span histograms in `snap` as an aligned per-stage latency
/// table (`count`, total, p50, p99 in microseconds), sorted by total time
/// descending — the shape the scenario examples print. Returns an empty
/// string when the snapshot holds no spans.
pub fn render_span_breakdown(snap: &RegistrySnapshot) -> String {
    let mut rows: Vec<(&str, u64, u64, u64, u64)> = snap
        .histograms
        .iter()
        .filter(|h| h.name == crate::span::SPAN_METRIC)
        .filter_map(|h| {
            h.labels
                .iter()
                .find(|(k, _)| k == crate::span::SPAN_LABEL)
                .map(|(_, v)| {
                    (
                        v.as_str(),
                        h.stats.count,
                        h.stats.sum,
                        h.stats.p50,
                        h.stats.p99,
                    )
                })
        })
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<name_w$}  {:>7}  {:>12}  {:>9}  {:>9}",
        "span", "count", "total_us", "p50_us", "p99_us"
    );
    for (name, count, sum, p50, p99) in rows {
        let _ = writeln!(
            out,
            "  {name:<name_w$}  {count:>7}  {sum:>12}  {p50:>9}  {p99:>9}"
        );
    }
    out
}

/// Renders an already-taken snapshot as JSON (see
/// [`Registry::render_json`]).
pub fn render_snapshot_json(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":[");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(&c.name),
            json_labels(&c.labels),
            c.value
        );
    }
    out.push_str("],\"gauges\":[");
    for (i, g) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(&g.name),
            json_labels(&g.labels),
            json_f64(g.value)
        );
    }
    out.push_str("],\"histograms\":[");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = &h.stats;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"mean\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
            escape_json(&h.name),
            json_labels(&h.labels),
            s.count,
            s.sum,
            s.min,
            s.max,
            json_f64(s.mean()),
            s.p50,
            s.p90,
            s.p95,
            s.p99
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter_labeled("requests_total", &[("route", "poi")])
            .add(7);
        reg.gauge("lag").set(3.5);
        let h = reg.histogram("latency_us");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{route=\"poi\"} 7"));
        assert!(text.contains("# TYPE lag gauge"));
        assert!(text.contains("lag 3.5"));
        assert!(text.contains("# TYPE latency_us summary"));
        assert!(text.contains("latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("latency_us_sum 60"));
        assert!(text.contains("latency_us_count 3"));
    }

    #[test]
    fn openmetrics_exposition_carries_exemplars() {
        let reg = sample_registry();
        let h = reg.histogram("latency_us");
        h.enable_exemplars();
        h.record_traced(25, 0xdead_beef, 1_500_000);
        let text = reg.render_openmetrics();
        assert!(text.contains("# TYPE requests counter"));
        assert!(text.contains("requests_total{route=\"poi\"} 7"));
        assert!(text.contains("# TYPE lag gauge"));
        assert!(text.contains("# TYPE latency_us histogram"));
        assert!(
            text.contains(
                "latency_us_bucket{le=\"25\"} 3 # {trace_id=\"00000000deadbeef\"} 25 1.500000"
            ),
            "exemplar line missing: {text}"
        );
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("latency_us_sum 85"));
        assert!(text.contains("latency_us_count 4"));
        assert!(text.ends_with("# EOF\n"));
        // Without exemplars the format still renders buckets, just bare.
        let bare = sample_registry().render_openmetrics();
        assert!(bare.contains("latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(!bare.contains("# {trace_id"));
    }

    #[test]
    fn span_breakdown_table_sorts_by_total_time() {
        let reg = Registry::new();
        let tracer = crate::span::Tracer::new(&reg, crate::time::ManualTime::shared());
        tracer.record_span_micros("fast", 10);
        tracer.record_span_micros("slow", 500);
        tracer.record_span_micros("slow", 500);
        let table = render_span_breakdown(&reg.snapshot());
        let slow_at = table.find("slow").unwrap();
        let fast_at = table.find("fast").unwrap();
        assert!(slow_at < fast_at, "rows must sort by total descending");
        assert!(table.contains("total_us"));
        assert!(table.contains("1000"));
        assert_eq!(render_span_breakdown(&Registry::new().snapshot()), "");
    }

    /// Parses one `name{k="v",..} value` exposition line back into label
    /// pairs, undoing the three escapes the format defines. A test-only
    /// decoder: its whole job is to prove the encoder is unambiguous.
    fn parse_labels(line: &str) -> Vec<(String, String)> {
        let inner = line
            .split_once('{')
            .and_then(|(_, rest)| rest.rsplit_once('}'))
            .map(|(inner, _)| inner)
            .unwrap_or("");
        let mut out = Vec::new();
        let mut chars = inner.chars().peekable();
        while chars.peek().is_some() {
            let key: String = chars.by_ref().take_while(|c| *c != '=').collect();
            assert_eq!(chars.next(), Some('"'), "label value must be quoted");
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some('\\') => match chars.next() {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        other => panic!("unknown escape: {other:?}"),
                    },
                    Some('"') => break,
                    Some(c) => value.push(c),
                    None => panic!("unterminated label value"),
                }
            }
            out.push((key, value));
            if chars.peek() == Some(&',') {
                chars.next();
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_round_trip_through_exposition() {
        let hostile = [
            ("backslash", "a\\b"),
            ("newline", "line1\nline2"),
            ("quote", "say \"hi\""),
            ("all_three", "\\\"\n\\\\\"\"\n"),
            ("trailing_escape", "ends with \\"),
        ];
        let reg = Registry::new();
        for (k, v) in hostile {
            reg.counter_labeled("hostile_total", &[(k, v)]).inc();
        }
        let text = reg.render_prometheus();
        let mut seen = Vec::new();
        for line in text.lines() {
            if line.starts_with("hostile_total{") {
                seen.extend(parse_labels(line));
            }
        }
        for (k, v) in hostile {
            assert!(
                seen.iter().any(|(sk, sv)| sk == k && sv == v),
                "label {k:?}={v:?} did not survive the round trip; saw {seen:?}"
            );
        }
        // Each sample stays on its own line: embedded newlines must not
        // split the exposition.
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("hostile_total{"))
                .count(),
            hostile.len()
        );
    }

    #[test]
    fn json_escaping_and_structure() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(2.5), "2.5");
        let json = sample_registry().render_json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"latency_us\""));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"route\":\"poi\""));
        assert!(json.ends_with("]}"));
    }
}
