//! Pluggable time sources.
//!
//! Every instrumented component reads time through [`TimeSource`] instead
//! of calling `std::time::Instant::now()` directly. Simulation code plugs
//! in a [`ManualTime`] advanced by the simulated clock (or by modeled work
//! units), keeping runs bit-for-bit deterministic; bench binaries plug in
//! a [`MonotonicTime`]. `augur-audit` enforces the discipline: raw
//! `Instant::now()` in an instrumented library crate fails the audit —
//! this module is the single sanctioned wall-clock read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone clock expressed in integer nanoseconds since an arbitrary
/// origin.
///
/// Implementations must be cheap (called on metric hot paths) and
/// thread-safe. `now_micros` is derived and need not be overridden.
pub trait TimeSource: Send + Sync {
    /// Nanoseconds since the source's origin.
    fn now_nanos(&self) -> u64;

    /// Microseconds since the source's origin (derived).
    fn now_micros(&self) -> u64 {
        self.now_nanos() / 1_000
    }
}

/// A shared, dynamically dispatched time source handle.
pub type Clock = Arc<dyn TimeSource>;

/// A manually advanced time source for deterministic runs.
///
/// Simulation code advances it from event time or from modeled work units
/// (the convention used by the scenario spans: one work unit ≙ one
/// microsecond of modeled latency). All methods take `&self` so a single
/// `Arc<ManualTime>` can be shared between the driver and any number of
/// [`crate::Tracer`]s.
///
/// # Example
///
/// ```
/// use augur_telemetry::{ManualTime, TimeSource};
///
/// let t = ManualTime::new();
/// t.advance_micros(250);
/// assert_eq!(t.now_micros(), 250);
/// ```
#[derive(Debug, Default)]
pub struct ManualTime {
    nanos: AtomicU64,
}

impl ManualTime {
    /// A manual clock at origin zero.
    pub fn new() -> Self {
        ManualTime {
            nanos: AtomicU64::new(0),
        }
    }

    /// A shared handle to a fresh manual clock.
    pub fn shared() -> Arc<ManualTime> {
        Arc::new(ManualTime::new())
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_nanos(&self, ns: u64) {
        self.nanos.fetch_add(ns, Ordering::Relaxed);
    }

    /// Advances the clock by `us` microseconds (saturating at `u64::MAX` ns).
    pub fn advance_micros(&self, us: u64) {
        self.advance_nanos(us.saturating_mul(1_000));
    }

    /// Jumps the clock to an absolute reading in microseconds.
    ///
    /// Unlike the simulation clock this does not reject rewinds: a metric
    /// time source is a measurement device, and tests legitimately reset it.
    pub fn set_micros(&self, us: u64) {
        self.nanos
            .store(us.saturating_mul(1_000), Ordering::Relaxed);
    }
}

impl TimeSource for ManualTime {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// The real monotonic clock, for bench binaries and live deployments.
///
/// This is the only place in the instrumented workspace that reads
/// `std::time::Instant` (see the module docs).
#[derive(Debug, Clone)]
pub struct MonotonicTime {
    origin: Instant,
}

impl MonotonicTime {
    /// A monotonic source with its origin at the moment of construction.
    pub fn new() -> Self {
        MonotonicTime {
            origin: Instant::now(),
        }
    }

    /// A shared handle to a fresh monotonic source.
    pub fn shared() -> Arc<MonotonicTime> {
        Arc::new(MonotonicTime::new())
    }
}

impl Default for MonotonicTime {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for MonotonicTime {
    fn now_nanos(&self) -> u64 {
        let n = self.origin.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_time_advances_and_sets() {
        let t = ManualTime::new();
        assert_eq!(t.now_nanos(), 0);
        t.advance_nanos(500);
        assert_eq!(t.now_nanos(), 500);
        t.advance_micros(2);
        assert_eq!(t.now_micros(), 2); // 2_500 ns
        t.set_micros(10);
        assert_eq!(t.now_micros(), 10);
        t.set_micros(1); // rewind allowed
        assert_eq!(t.now_micros(), 1);
    }

    #[test]
    fn monotonic_time_is_monotone() {
        let t = MonotonicTime::new();
        let a = t.now_nanos();
        let b = t.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn clock_handle_is_object_safe() {
        let c: Clock = ManualTime::shared();
        c.now_nanos();
        let m: Clock = MonotonicTime::shared();
        let _ = m.now_micros();
    }
}
