//! The flight recorder: a bounded, lock-free MPSC ring of structured
//! span/event records.
//!
//! Producers on hot paths call [`FlightRecorder::record_span`] /
//! [`FlightRecorder::record_instant`]; each record is a ticket from one
//! `fetch_add` on the write cursor plus a handful of atomic stores into a
//! fixed-size slot — **no lock, no allocation, never blocks**. When the
//! ring wraps before a drain, old entries are overwritten and counted in
//! [`FlightRecorder::dropped_events`]; losing telemetry is acceptable,
//! stalling a frame is not (the paper's timeliness constraint, §4).
//!
//! ## Slot protocol (why this is torn-proof without `unsafe`)
//!
//! Each slot is a fixed set of `AtomicU64` cells plus a `seq` cell. A
//! writer with ticket `t`:
//!
//! 1. stores `t | BUSY` into `seq` (the slot is now visibly in flux),
//! 2. stores the payload cells with `Release`,
//! 3. stores `t` into `seq` with `Release` (publish).
//!
//! A drainer accepts ticket `t` only if `seq == t` both **before and
//! after** reading the payload. If a concurrent writer had published any
//! payload cell in between, the drainer's `Acquire` load of that cell
//! synchronizes with the writer's `Release` store, which makes the
//! writer's earlier `BUSY` marker visible — so the second `seq` check
//! fails and the ticket is counted as dropped instead of surfacing torn
//! data. Every ticket is therefore accounted **exactly once**: drained,
//! or dropped (`drained + dropped == total_events` at quiescence — the
//! invariant `tests/flight_stress.rs` asserts under 4-producer overflow).
//!
//! Draining takes a `parking_lot` mutex around the read cursor only;
//! drains are control-plane operations and never sit on a hot path.
//!
//! # Example
//!
//! ```
//! use augur_telemetry::{FlightRecorder, TraceContext};
//!
//! let rec = FlightRecorder::new(64);
//! let name = rec.intern("render/layout");
//! let ctx = TraceContext::root(42, 0);
//! rec.record_span(ctx, name, 1_000, 250);
//! let events = rec.drain();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "render/layout");
//! assert_eq!(rec.dropped_events(), 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::lane::LaneId;
use crate::time::Clock;
use crate::trace::TraceContext;

/// Marks a slot whose payload is mid-write (or never written).
const BUSY: u64 = 1 << 63;

/// An interned event name: hot paths carry this copyable id instead of a
/// string. Intern names once at setup via [`FlightRecorder::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(u32);

/// What kind of record a flight event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A duration: `ts_us..ts_us + dur_us`.
    Span,
    /// A point event at `ts_us`; `arg` carries a payload (e.g. a count).
    Instant,
}

/// One drained flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Causal chain identity.
    pub trace_id: u64,
    /// This event's span id.
    pub span_id: u64,
    /// Parent span id (0 for a root).
    pub parent_span_id: u64,
    /// Resolved event name.
    pub name: String,
    /// Span or instant.
    pub kind: FlightEventKind,
    /// Start (spans) or occurrence (instants) time, microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Free-form payload for instants (0 for spans).
    pub arg: u64,
    /// The worker lane that recorded this event ([`LaneId::CONTROL`]
    /// for plain recorders; see [`FlightRecorder::for_lane`]).
    pub lane: LaneId,
}

#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_span_id: AtomicU64,
    /// `(name_id << 8) | kind`.
    meta: AtomicU64,
    ts_us: AtomicU64,
    dur_us: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(BUSY | u64::MAX >> 1),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_span_id: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct FlightInner {
    slots: Vec<Slot>,
    mask: u64,
    /// Next ticket to hand out; also the total number of records accepted.
    write: AtomicU64,
    /// Tickets below this have been consumed (drained or dropped).
    read: Mutex<u64>,
    dropped: AtomicU64,
    /// Interned names; written only on the registration path.
    names: RwLock<Vec<String>>,
    /// Stamped onto every drained event; the ring belongs to one lane.
    lane: LaneId,
}

/// The bounded lock-free span/event ring. Cloning shares the ring. See
/// the module docs for the protocol and guarantees.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(4096)
    }
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` entries (rounded up to a power
    /// of two, minimum 8). Events drain on the control lane
    /// ([`LaneId::CONTROL`]).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::for_lane(capacity, LaneId::CONTROL)
    }

    /// A recorder whose drained events carry `lane` — one ring per
    /// worker lane, so lanes never share a write cursor. Normally
    /// constructed through [`crate::Lanes::register`].
    pub fn for_lane(capacity: usize, lane: LaneId) -> FlightRecorder {
        let cap = capacity.max(8).next_power_of_two();
        FlightRecorder {
            inner: Arc::new(FlightInner {
                slots: (0..cap).map(|_| Slot::empty()).collect(),
                mask: cap as u64 - 1,
                write: AtomicU64::new(0),
                read: Mutex::new(0),
                dropped: AtomicU64::new(0),
                names: RwLock::new(Vec::new()),
                lane,
            }),
        }
    }

    /// The lane this ring records for ([`LaneId::CONTROL`] by default).
    pub fn lane(&self) -> LaneId {
        self.inner.lane
    }

    /// Ring capacity in entries.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Interns `name`, returning the id hot paths pass to the record
    /// calls. Takes a short lock — call at setup, not per event.
    pub fn intern(&self, name: &str) -> NameId {
        let mut names = self.inner.names.write();
        if let Some(pos) = names.iter().position(|n| n == name) {
            return NameId(pos as u32);
        }
        names.push(name.to_string());
        NameId((names.len() - 1) as u32)
    }

    /// Total records accepted so far (drained, pending, or dropped).
    pub fn total_events(&self) -> u64 {
        self.inner.write.load(Ordering::Relaxed)
    }

    /// Records overwritten before a drain could read them (plus torn
    /// slots rejected mid-drain). Monotonic; updated at drain time.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Live loss estimate: already-charged drops **plus** tickets the
    /// ring has overwritten since the last drain. Unlike
    /// [`FlightRecorder::dropped_events`] this moves between drains, so
    /// monitors (e.g. the watch session's trace-loss SLO) can alert on
    /// span loss while a run is still in flight. Takes the read-cursor
    /// lock briefly; call from control-plane code, not hot paths.
    pub fn lost_events(&self) -> u64 {
        let inner = &*self.inner;
        let r = *inner.read.lock();
        let w = inner.write.load(Ordering::Acquire);
        let pending_overwrites = w.saturating_sub(r).saturating_sub(inner.slots.len() as u64);
        inner.dropped.load(Ordering::Relaxed) + pending_overwrites
    }

    fn record(
        &self,
        ctx: TraceContext,
        name: NameId,
        kind: u64,
        ts_us: u64,
        dur_us: u64,
        arg: u64,
    ) {
        if !ctx.sampled {
            return;
        }
        let inner = &*self.inner;
        let ticket = inner.write.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = inner.slots.get((ticket & inner.mask) as usize) else {
            return; // unreachable: mask < slots.len()
        };
        slot.seq.store(ticket | BUSY, Ordering::Relaxed);
        slot.trace_id.store(ctx.trace_id, Ordering::Release);
        slot.span_id.store(ctx.span_id, Ordering::Release);
        slot.parent_span_id
            .store(ctx.parent_span_id, Ordering::Release);
        slot.meta
            .store((u64::from(name.0) << 8) | kind, Ordering::Release);
        slot.ts_us.store(ts_us, Ordering::Release);
        slot.dur_us.store(dur_us, Ordering::Release);
        slot.arg.store(arg, Ordering::Release);
        slot.seq.store(ticket, Ordering::Release);
    }

    /// Records a completed span (`start_us..start_us + dur_us`).
    /// Lock-free, allocation-free; a no-op for unsampled contexts.
    pub fn record_span(&self, ctx: TraceContext, name: NameId, start_us: u64, dur_us: u64) {
        self.record(ctx, name, 0, start_us, dur_us, 0);
    }

    /// Records a point event with a free-form `arg` payload.
    /// Lock-free, allocation-free; a no-op for unsampled contexts.
    pub fn record_instant(&self, ctx: TraceContext, name: NameId, ts_us: u64, arg: u64) {
        self.record(ctx, name, 1, ts_us, arg, 0);
    }

    /// Starts a span guard that records `ctx` when dropped, timed on
    /// `clock`. Convenience for scenario/stage code that holds a clock.
    pub fn span(&self, clock: &Clock, ctx: TraceContext, name: NameId) -> TraceSpan {
        TraceSpan {
            recorder: self.clone(),
            clock: clock.clone(),
            ctx,
            name,
            start_us: clock.now_micros(),
        }
    }

    /// Drains every currently-readable entry in ticket (chronological)
    /// order, advancing the read cursor and charging overwritten or torn
    /// tickets to [`FlightRecorder::dropped_events`]. At quiescence
    /// (no concurrent producers) `drained_total + dropped_events ==`
    /// [`FlightRecorder::total_events`] exactly.
    pub fn drain(&self) -> Vec<FlightEvent> {
        let inner = &*self.inner;
        let mut read = inner.read.lock();
        let w = inner.write.load(Ordering::Acquire);
        let cap = inner.slots.len() as u64;
        let mut r = *read;
        if w.saturating_sub(r) > cap {
            // The ring lapped the reader: everything below w - cap is gone.
            inner.dropped.fetch_add(w - cap - r, Ordering::Relaxed);
            r = w - cap;
        }
        let names = inner.names.read();
        let mut out = Vec::with_capacity((w - r) as usize);
        for ticket in r..w {
            let Some(slot) = inner.slots.get((ticket & inner.mask) as usize) else {
                continue; // unreachable: mask < slots.len()
            };
            if slot.seq.load(Ordering::Acquire) != ticket {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let trace_id = slot.trace_id.load(Ordering::Acquire);
            let span_id = slot.span_id.load(Ordering::Acquire);
            let parent_span_id = slot.parent_span_id.load(Ordering::Acquire);
            let meta = slot.meta.load(Ordering::Acquire);
            let ts_us = slot.ts_us.load(Ordering::Acquire);
            let dur_us = slot.dur_us.load(Ordering::Acquire);
            let arg = slot.arg.load(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != ticket {
                // A writer raced us mid-read; its BUSY marker (made
                // visible by the Acquire payload loads) fails this check.
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let name = names
                .get((meta >> 8) as usize)
                .cloned()
                .unwrap_or_else(|| String::from("?"));
            let kind = if meta & 0xff == 0 {
                FlightEventKind::Span
            } else {
                FlightEventKind::Instant
            };
            let (dur_us, arg) = match kind {
                FlightEventKind::Span => (dur_us, 0),
                FlightEventKind::Instant => (0, dur_us.max(arg)),
            };
            out.push(FlightEvent {
                trace_id,
                span_id,
                parent_span_id,
                name,
                kind,
                ts_us,
                dur_us,
                arg,
                lane: inner.lane,
            });
        }
        *read = w;
        out
    }
}

/// A live span tied to a [`FlightRecorder`] and a clock: records a
/// [`FlightEventKind::Span`] covering its lifetime when dropped (or via
/// [`TraceSpan::end`]). Use [`TraceSpan::ctx`] to derive child contexts
/// for work it causes.
pub struct TraceSpan {
    recorder: FlightRecorder,
    clock: Clock,
    ctx: TraceContext,
    name: NameId,
    start_us: u64,
}

impl std::fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpan")
            .field("ctx", &self.ctx)
            .field("start_us", &self.start_us)
            .finish_non_exhaustive()
    }
}

impl TraceSpan {
    /// The context this span runs under (derive children from it).
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let end = self.clock.now_micros();
        self.recorder.record_span(
            self.ctx,
            self.name,
            self.start_us,
            end.saturating_sub(self.start_us),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ManualTime;

    #[test]
    fn records_and_drains_in_order() {
        let rec = FlightRecorder::new(16);
        let a = rec.intern("a");
        let b = rec.intern("b");
        assert_eq!(rec.intern("a"), a, "interning is idempotent");
        let ctx = TraceContext::root(1, 1);
        rec.record_span(ctx, a, 10, 5);
        rec.record_instant(ctx.child(1), b, 20, 7);
        let events = rec.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].kind, FlightEventKind::Span);
        assert_eq!(events[0].dur_us, 5);
        assert_eq!(events[1].name, "b");
        assert_eq!(events[1].kind, FlightEventKind::Instant);
        assert_eq!(events[1].arg, 7);
        assert_eq!(events[1].parent_span_id, ctx.span_id);
        assert!(rec.drain().is_empty(), "drain consumes");
        assert_eq!(rec.dropped_events(), 0);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let rec = FlightRecorder::new(8);
        let n = rec.intern("x");
        let ctx = TraceContext::root(2, 2);
        for i in 0..20u64 {
            rec.record_span(ctx, n, i, 1);
        }
        let events = rec.drain();
        assert_eq!(events.len(), 8, "only the last `capacity` survive");
        assert_eq!(rec.dropped_events(), 12);
        assert_eq!(
            events.len() as u64 + rec.dropped_events(),
            rec.total_events()
        );
        // The survivors are the most recent tickets, in order.
        assert_eq!(events[0].ts_us, 12);
        assert_eq!(events[7].ts_us, 19);
    }

    #[test]
    fn lost_events_tracks_overwrites_before_drain() {
        let rec = FlightRecorder::new(8);
        let n = rec.intern("x");
        let ctx = TraceContext::root(5, 5);
        for i in 0..6u64 {
            rec.record_span(ctx, n, i, 1);
        }
        assert_eq!(rec.lost_events(), 0, "ring not yet lapped");
        for i in 6..20u64 {
            rec.record_span(ctx, n, i, 1);
        }
        assert_eq!(rec.lost_events(), 12, "live estimate sees overwrites");
        assert_eq!(rec.dropped_events(), 0, "not yet charged: no drain ran");
        let _ = rec.drain();
        assert_eq!(rec.dropped_events(), 12);
        assert_eq!(rec.lost_events(), 12, "estimate matches after drain");
    }

    #[test]
    fn unsampled_contexts_record_nothing() {
        let rec = FlightRecorder::new(8);
        let n = rec.intern("x");
        rec.record_span(TraceContext::root(3, 3).unsampled(), n, 0, 1);
        assert_eq!(rec.total_events(), 0);
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn span_guard_times_on_the_clock() {
        let rec = FlightRecorder::new(8);
        let n = rec.intern("stage");
        let time = ManualTime::shared();
        let clock: Clock = time.clone();
        time.advance_micros(100);
        let ctx = TraceContext::root(4, 4);
        {
            let span = rec.span(&clock, ctx.child_named("stage"), n);
            time.advance_micros(250);
            span.end();
        }
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ts_us, 100);
        assert_eq!(events[0].dur_us, 250);
        assert_eq!(events[0].parent_span_id, ctx.span_id);
    }
}
