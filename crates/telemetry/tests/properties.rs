//! Property and concurrency tests for the telemetry primitives.
//!
//! 1. The log-linear histogram's quantile readout stays within its
//!    documented relative-error bound (1/32 plus one unit of integer
//!    rounding) against exact sorted quantiles, for arbitrary samples.
//! 2. Concurrent recording from multiple threads loses no updates:
//!    counter totals and histogram counts/sums are exact.

use augur_telemetry::{Counter, Histogram, Registry};
use proptest::prelude::*;

/// Exact quantile with the same rank convention as `Histogram::quantile`:
/// the rank-`⌈q·n⌉` smallest sample (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0)
}

proptest! {
    #[test]
    fn histogram_quantiles_within_documented_error_bound(
        values in prop::collection::vec(0u64..2_000_000_000, 1..300),
        // Probe a spread of quantiles including the tails.
        qs in prop::collection::vec(0.01f64..1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut values = values;
        values.sort_unstable();
        for &q in &qs {
            let exact = exact_quantile(&values, q);
            let approx = h.quantile(q);
            let bound = exact / 32 + 1;
            prop_assert!(
                approx.abs_diff(exact) <= bound,
                "q={} approx={} exact={} bound={}",
                q, approx, exact, bound
            );
        }
        // count/sum/min/max are exact regardless of bucketing.
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(Some(s.min), values.first().copied());
        prop_assert_eq!(Some(s.max), values.last().copied());
    }

    #[test]
    fn merged_histogram_quantiles_stay_within_error_bound(
        // `left` non-empty so the merged population always has samples;
        // `right` may be empty to exercise the empty-merge no-op.
        left in prop::collection::vec(0u64..2_000_000_000, 1..200),
        right in prop::collection::vec(0u64..2_000_000_000, 0..200),
        qs in prop::collection::vec(0.01f64..1.0, 1..8),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        for &v in &left {
            a.record(v);
        }
        for &v in &right {
            b.record(v);
        }
        a.merge(&b);

        let mut all: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        all.sort_unstable();
        for &q in &qs {
            let exact = exact_quantile(&all, q);
            let approx = a.quantile(q);
            // The documented merge contract is ≤12.5% (exact/8); the
            // shared bucket layout actually keeps merges at the native
            // 1/32 bound, so assert the tighter figure — any regression
            // toward the contract ceiling shows up immediately.
            let bound = exact / 32 + 1;
            prop_assert!(bound <= exact / 8 + 1, "native bound is inside the contract");
            prop_assert!(
                approx.abs_diff(exact) <= bound,
                "merged q={} approx={} exact={} bound={}",
                q, approx, exact, bound
            );
        }
        // Count/sum/min/max merge exactly.
        let s = a.snapshot();
        prop_assert_eq!(s.count, all.len() as u64);
        prop_assert_eq!(s.sum, all.iter().sum::<u64>());
        prop_assert_eq!(Some(s.min), all.first().copied());
        prop_assert_eq!(Some(s.max), all.last().copied());
    }
}

#[test]
fn concurrent_recording_loses_no_updates() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50_000;

    let registry = Registry::new();
    let counter: Counter = registry.counter("contended_total");
    let histogram: Histogram = registry.histogram("contended_us");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Distinct per-thread value streams to hit many buckets.
                    histogram.record(t * 1_000 + (i % 997));
                }
            });
        }
    });

    assert_eq!(
        counter.get(),
        THREADS * PER_THREAD,
        "counter must not lose increments under contention"
    );
    let s = histogram.snapshot();
    assert_eq!(
        s.count,
        THREADS * PER_THREAD,
        "histogram must not lose samples under contention"
    );
    let expected_sum: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * 1_000 + (i % 997)).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected_sum, "histogram sum must be exact");

    // The registry view agrees with the handles.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters
            .iter()
            .find(|c| c.name == "contended_total")
            .map(|c| c.value),
        Some(THREADS * PER_THREAD)
    );
}

#[test]
fn concurrent_registration_converges_to_shared_handles() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let registry = registry.clone();
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    // Same family from every thread: get-or-register must
                    // hand every thread the same underlying cell.
                    registry.counter_labeled("race_total", &[("k", "v")]).inc();
                    registry.histogram("race_us").record(i);
                }
            });
        }
    });
    assert_eq!(
        registry.counter_labeled("race_total", &[("k", "v")]).get(),
        4_000
    );
    assert_eq!(registry.histogram("race_us").count(), 4_000);
}
