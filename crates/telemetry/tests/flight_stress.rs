//! Flight-recorder overflow stress: 4 producer threads hammer a small
//! ring far past capacity, then a single drain must account for every
//! ticket exactly — `drained + dropped_events == total_events` — with no
//! torn reads surfacing as garbage events. The seqlock-style slot
//! protocol this exercises only shows races under optimized builds, so
//! CI runs the test suite with `--release` semantics in mind; the
//! invariants hold at any opt level.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use augur_telemetry::{FlightEventKind, FlightRecorder, TraceContext};

const PRODUCERS: u64 = 4;
const EVENTS_PER_PRODUCER: u64 = 50_000;
const CAPACITY: usize = 1024;

#[test]
fn four_producer_overflow_accounts_for_every_ticket() {
    let rec = Arc::new(FlightRecorder::new(CAPACITY));
    // Intern up-front: the hot path must stay lock-free.
    let names: Vec<_> = (0..PRODUCERS)
        .map(|p| rec.intern(&format!("producer/{p}")))
        .collect();
    let valid_names: HashSet<String> = (0..PRODUCERS).map(|p| format!("producer/{p}")).collect();

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let rec = Arc::clone(&rec);
        let name = names[p as usize];
        handles.push(thread::spawn(move || {
            let root = TraceContext::root(0xF11, p);
            for i in 0..EVENTS_PER_PRODUCER {
                // Encode (producer, i) into the timestamp so drained
                // events can be structurally validated.
                rec.record_span(root.child(i), name, p * EVENTS_PER_PRODUCER + i, 1);
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread panicked");
    }

    // Quiescent now: one drain must balance the books exactly.
    let events = rec.drain();
    let total = rec.total_events();
    let dropped = rec.dropped_events();

    assert_eq!(total, PRODUCERS * EVENTS_PER_PRODUCER);
    assert!(
        events.len() <= CAPACITY,
        "at most `capacity` events can survive a lapped ring, got {}",
        events.len()
    );
    assert_eq!(
        events.len() as u64 + dropped,
        total,
        "every ticket must be drained or counted dropped"
    );

    // No torn payloads: every survivor must be internally consistent.
    for e in &events {
        assert_eq!(e.kind, FlightEventKind::Span);
        assert!(
            valid_names.contains(&e.name),
            "unknown interned name {:?}",
            e.name
        );
        let producer = e.ts_us / EVENTS_PER_PRODUCER;
        let i = e.ts_us % EVENTS_PER_PRODUCER;
        let expected = TraceContext::root(0xF11, producer).child(i);
        assert_eq!(e.trace_id, expected.trace_id, "torn trace_id");
        assert_eq!(e.span_id, expected.span_id, "torn span_id");
        assert_eq!(e.parent_span_id, expected.parent_span_id, "torn parent");
        assert_eq!(e.name, format!("producer/{producer}"), "name/payload mix");
        assert_eq!(e.dur_us, 1);
    }

    // A second drain on a quiescent ring yields nothing and moves no
    // counters.
    assert!(rec.drain().is_empty());
    assert_eq!(rec.dropped_events(), dropped);
    assert_eq!(rec.total_events(), total);
}

#[test]
fn four_producers_without_overflow_drop_nothing() {
    // 4 × 128 = 512 events into a 1024-slot ring: nothing may drop and
    // every event must drain exactly once.
    let rec = Arc::new(FlightRecorder::new(1024));
    let name = rec.intern("fits");
    let mut handles = Vec::new();
    for p in 0..4u64 {
        let rec = Arc::clone(&rec);
        handles.push(thread::spawn(move || {
            let root = TraceContext::root(7, p);
            for i in 0..128u64 {
                rec.record_span(root.child(i), name, p * 128 + i, 1);
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread panicked");
    }
    let events = rec.drain();
    assert_eq!(events.len(), 512);
    assert_eq!(rec.dropped_events(), 0);
    assert_eq!(rec.total_events(), 512);
    // Exactly-once: all (trace_id, span_id) pairs are distinct.
    let unique: HashSet<(u64, u64)> = events.iter().map(|e| (e.trace_id, e.span_id)).collect();
    assert_eq!(unique.len(), 512);
}
