//! The interpretation rule engine.
//!
//! Analytics emits *facts* (a metric crossed a threshold, a recommender
//! ranked an item, a detector fired). AR needs *directives* (draw this
//! label there, highlight that, raise an alert). The
//! [`InterpretationEngine`] holds declarative [`Rule`]s mapping one to
//! the other under the current [`UserContext`] — the collaborative
//! bridge §4.2 argues both sides must meet at.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::arml::FeatureId;
use crate::error::SemanticError;

/// An analytics output offered to the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fact {
    /// Metric or event name, e.g. `"heart_rate"`, `"recommendation"`.
    pub name: String,
    /// The subject entity (patient, product, POI) as a feature id.
    pub subject: FeatureId,
    /// Numeric value (rate, score, count...).
    pub value: f64,
    /// Additional string attributes, e.g. `"category" → "food"`.
    pub attrs: BTreeMap<String, String>,
}

impl Fact {
    /// Creates a fact with no attributes.
    pub fn new(name: &str, subject: FeatureId, value: f64) -> Self {
        Fact {
            name: name.to_string(),
            subject,
            value,
            attrs: BTreeMap::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.insert(key.to_string(), value.to_string());
        self
    }
}

/// The user-side context rules can reference.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UserContext {
    /// Current activity, e.g. `"shopping"`, `"driving"`, `"touring"`.
    pub activity: String,
    /// Interest tags (categories the user cares about).
    pub interests: Vec<String>,
    /// Whether the user opted in to health monitoring.
    pub health_monitoring: bool,
}

/// Conditions a rule can test. All listed conditions must hold (AND).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Fact name equals.
    FactIs(String),
    /// Fact value at or above a threshold.
    ValueAtLeast(f64),
    /// Fact value at or below a threshold.
    ValueAtMost(f64),
    /// Fact attribute equals.
    AttrIs(String, String),
    /// User activity equals.
    ActivityIs(String),
    /// Fact attribute value appears in the user's interests.
    AttrInInterests(String),
    /// User has health monitoring enabled.
    HealthMonitoringOn,
}

impl Condition {
    fn holds(&self, fact: &Fact, ctx: &UserContext) -> bool {
        match self {
            Condition::FactIs(n) => fact.name == *n,
            Condition::ValueAtLeast(t) => fact.value >= *t,
            Condition::ValueAtMost(t) => fact.value <= *t,
            Condition::AttrIs(k, v) => fact.attrs.get(k) == Some(v),
            Condition::ActivityIs(a) => ctx.activity == *a,
            Condition::AttrInInterests(k) => fact
                .attrs
                .get(k)
                .map(|v| ctx.interests.iter().any(|i| i == v))
                .unwrap_or(false),
            Condition::HealthMonitoringOn => ctx.health_monitoring,
        }
    }
}

/// AR-side actions the engine can emit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Directive {
    /// Attach a text label to the subject.
    ShowLabel {
        /// Target feature.
        subject: FeatureId,
        /// Label text (template-expanded).
        text: String,
        /// Display priority in `[0, 1]`.
        priority: f64,
    },
    /// Outline the subject ("x-ray" contour).
    Highlight {
        /// Target feature.
        subject: FeatureId,
        /// RGB colour.
        color: u32,
    },
    /// Raise a modal alert (health, safety).
    Alert {
        /// Target feature.
        subject: FeatureId,
        /// Alert text.
        text: String,
        /// Severity in `[0, 1]`.
        severity: f64,
    },
    /// Suggest navigating to the subject.
    SuggestRoute {
        /// Target feature.
        subject: FeatureId,
        /// Reason shown to the user.
        reason: String,
    },
}

impl Directive {
    /// The feature the directive targets.
    pub fn subject(&self) -> FeatureId {
        match self {
            Directive::ShowLabel { subject, .. }
            | Directive::Highlight { subject, .. }
            | Directive::Alert { subject, .. }
            | Directive::SuggestRoute { subject, .. } => *subject,
        }
    }
}

/// Action templates: `{name}` and `{value}` expand from the fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionTemplate {
    /// Emit a [`Directive::ShowLabel`].
    ShowLabel {
        /// Text template.
        text: String,
        /// Display priority.
        priority: f64,
    },
    /// Emit a [`Directive::Highlight`].
    Highlight {
        /// RGB colour.
        color: u32,
    },
    /// Emit a [`Directive::Alert`] with severity scaled from the value
    /// by `severity_per_unit` (clamped to 1.0).
    Alert {
        /// Text template.
        text: String,
        /// Severity per fact-value unit.
        severity_per_unit: f64,
    },
    /// Emit a [`Directive::SuggestRoute`].
    SuggestRoute {
        /// Reason template.
        reason: String,
    },
}

/// A declarative interpretation rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule name (reports and tracing).
    pub name: String,
    /// All must hold for the rule to fire.
    pub conditions: Vec<Condition>,
    /// The action emitted when it fires.
    pub action: ActionTemplate,
}

impl Rule {
    /// Creates a rule.
    ///
    /// # Errors
    ///
    /// [`SemanticError::InvalidRule`] for an empty condition list (a rule
    /// that always fires is almost certainly a configuration bug).
    pub fn new(
        name: &str,
        conditions: Vec<Condition>,
        action: ActionTemplate,
    ) -> Result<Self, SemanticError> {
        if conditions.is_empty() {
            return Err(SemanticError::InvalidRule("conditions must be non-empty"));
        }
        Ok(Rule {
            name: name.to_string(),
            conditions,
            action,
        })
    }
}

fn expand(template: &str, fact: &Fact) -> String {
    let mut out = template.replace("{name}", &fact.name);
    out = out.replace("{value}", &format!("{:.1}", fact.value));
    for (k, v) in &fact.attrs {
        out = out.replace(&format!("{{{k}}}"), v);
    }
    out
}

/// The rule engine; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct InterpretationEngine {
    rules: Vec<Rule>,
    fired: u64,
    evaluated: u64,
}

impl InterpretationEngine {
    /// Creates an engine with no rules.
    pub fn new() -> Self {
        InterpretationEngine::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Facts evaluated and rules fired so far (for the E1 influence
    /// accounting).
    pub fn counters(&self) -> (u64, u64) {
        (self.evaluated, self.fired)
    }

    /// Interprets one fact under a context, emitting directives for
    /// every matching rule, in rule-installation order.
    pub fn interpret(&mut self, fact: &Fact, ctx: &UserContext) -> Vec<Directive> {
        self.evaluated += 1;
        let mut out = Vec::new();
        for rule in &self.rules {
            if rule.conditions.iter().all(|c| c.holds(fact, ctx)) {
                self.fired += 1;
                out.push(match &rule.action {
                    ActionTemplate::ShowLabel { text, priority } => Directive::ShowLabel {
                        subject: fact.subject,
                        text: expand(text, fact),
                        priority: *priority,
                    },
                    ActionTemplate::Highlight { color } => Directive::Highlight {
                        subject: fact.subject,
                        color: *color,
                    },
                    ActionTemplate::Alert {
                        text,
                        severity_per_unit,
                    } => Directive::Alert {
                        subject: fact.subject,
                        text: expand(text, fact),
                        severity: (fact.value.abs() * severity_per_unit).min(1.0),
                    },
                    ActionTemplate::SuggestRoute { reason } => Directive::SuggestRoute {
                        subject: fact.subject,
                        reason: expand(reason, fact),
                    },
                });
            }
        }
        out
    }

    /// Interprets a batch of facts.
    pub fn interpret_all(&mut self, facts: &[Fact], ctx: &UserContext) -> Vec<Directive> {
        facts.iter().flat_map(|f| self.interpret(f, ctx)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> InterpretationEngine {
        let mut e = InterpretationEngine::new();
        e.add_rule(
            Rule::new(
                "tachycardia-alert",
                vec![
                    Condition::FactIs("heart_rate".into()),
                    Condition::ValueAtLeast(115.0),
                    Condition::HealthMonitoringOn,
                ],
                ActionTemplate::Alert {
                    text: "Heart rate {value} bpm".into(),
                    severity_per_unit: 1.0 / 200.0,
                },
            )
            .unwrap(),
        );
        e.add_rule(
            Rule::new(
                "shopping-recommendation",
                vec![
                    Condition::FactIs("recommendation".into()),
                    Condition::ActivityIs("shopping".into()),
                    Condition::AttrInInterests("category".into()),
                    Condition::ValueAtLeast(0.5),
                ],
                ActionTemplate::ShowLabel {
                    text: "Recommended: {category} (score {value})".into(),
                    priority: 0.8,
                },
            )
            .unwrap(),
        );
        e.add_rule(
            Rule::new(
                "low-stock-highlight",
                vec![
                    Condition::FactIs("stock".into()),
                    Condition::ValueAtMost(3.0),
                ],
                ActionTemplate::Highlight { color: 0xFF3300 },
            )
            .unwrap(),
        );
        e
    }

    #[test]
    fn alert_fires_only_with_monitoring_enabled() {
        let mut e = engine();
        let fact = Fact::new("heart_rate", FeatureId(1), 130.0);
        let off = UserContext::default();
        assert!(e.interpret(&fact, &off).is_empty());
        let on = UserContext {
            health_monitoring: true,
            ..Default::default()
        };
        let directives = e.interpret(&fact, &on);
        assert_eq!(directives.len(), 1);
        match &directives[0] {
            Directive::Alert { text, severity, .. } => {
                assert!(text.contains("130.0"));
                assert!((severity - 0.65).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recommendation_respects_interest_and_activity() {
        let mut e = engine();
        let fact = Fact::new("recommendation", FeatureId(9), 0.8).with_attr("category", "food");
        let ctx = UserContext {
            activity: "shopping".into(),
            interests: vec!["food".into()],
            health_monitoring: false,
        };
        let d = e.interpret(&fact, &ctx);
        assert_eq!(d.len(), 1);
        match &d[0] {
            Directive::ShowLabel { text, .. } => assert!(text.contains("food")),
            other => panic!("unexpected {other:?}"),
        }
        // Wrong activity: nothing.
        let walking = UserContext {
            activity: "walking".into(),
            interests: vec!["food".into()],
            health_monitoring: false,
        };
        assert!(e.interpret(&fact, &walking).is_empty());
        // Not interested: nothing.
        let bored = UserContext {
            activity: "shopping".into(),
            interests: vec!["electronics".into()],
            health_monitoring: false,
        };
        assert!(e.interpret(&fact, &bored).is_empty());
    }

    #[test]
    fn value_at_most_and_highlight() {
        let mut e = engine();
        let d = e.interpret(
            &Fact::new("stock", FeatureId(4), 2.0),
            &UserContext::default(),
        );
        assert_eq!(
            d,
            vec![Directive::Highlight {
                subject: FeatureId(4),
                color: 0xFF3300
            }]
        );
        assert!(e
            .interpret(
                &Fact::new("stock", FeatureId(4), 10.0),
                &UserContext::default()
            )
            .is_empty());
    }

    #[test]
    fn severity_clamps_to_one() {
        let mut e = InterpretationEngine::new();
        e.add_rule(
            Rule::new(
                "r",
                vec![Condition::FactIs("x".into())],
                ActionTemplate::Alert {
                    text: "!".into(),
                    severity_per_unit: 1.0,
                },
            )
            .unwrap(),
        );
        let d = e.interpret(&Fact::new("x", FeatureId(0), 99.0), &UserContext::default());
        match &d[0] {
            Directive::Alert { severity, .. } => assert_eq!(*severity, 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_conditions_rejected() {
        assert!(matches!(
            Rule::new("bad", vec![], ActionTemplate::Highlight { color: 0 }),
            Err(SemanticError::InvalidRule(_))
        ));
    }

    #[test]
    fn counters_track_activity() {
        let mut e = engine();
        let ctx = UserContext::default();
        e.interpret_all(
            &[
                Fact::new("stock", FeatureId(1), 1.0),
                Fact::new("stock", FeatureId(2), 9.0),
            ],
            &ctx,
        );
        let (evaluated, fired) = e.counters();
        assert_eq!(evaluated, 2);
        assert_eq!(fired, 1);
        assert_eq!(e.rule_count(), 3);
    }

    #[test]
    fn subject_accessor() {
        let d = Directive::SuggestRoute {
            subject: FeatureId(5),
            reason: "r".into(),
        };
        assert_eq!(d.subject(), FeatureId(5));
    }
}
