//! Cross-source entity linking.
//!
//! §3.2: "Aggregating and compiling the redundant fragmented data helps
//! us to build a detailed and complete environmental model". Different
//! feeds describe the same physical venue with different names, slightly
//! different coordinates, and partial attributes. [`link_entities`]
//! clusters records that are spatially close *and* lexically similar,
//! merging their attributes into one [`LinkedEntity`] per venue.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use augur_geo::Enu;

use crate::error::SemanticError;

/// One record from one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityRecord {
    /// Source feed name ("poi-db", "geo-tweets", "ugc-photos"...).
    pub source: String,
    /// Name as that source spells it.
    pub name: String,
    /// Position in the shared local frame, metres.
    pub position: Enu,
    /// Partial attributes contributed by this source.
    pub attrs: BTreeMap<String, String>,
}

/// A merged entity with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkedEntity {
    /// Canonical name (most common token-normalised form).
    pub name: String,
    /// Centroid of member positions.
    pub position: Enu,
    /// Union of attributes (first writer wins per key).
    pub attrs: BTreeMap<String, String>,
    /// Sources that contributed.
    pub sources: Vec<String>,
    /// Number of merged records.
    pub member_count: usize,
}

/// Linking thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Maximum distance between records of the same entity, metres.
    pub max_distance_m: f64,
    /// Minimum token-Jaccard name similarity in `[0, 1]`.
    pub min_name_similarity: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            max_distance_m: 50.0,
            min_name_similarity: 0.5,
        }
    }
}

fn tokens(name: &str) -> HashSet<String> {
    name.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(String::from)
        .collect()
}

/// Token Jaccard similarity between two names in `[0, 1]`.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Links records into entities with greedy agglomerative clustering:
/// each record joins the first existing cluster whose *seed* is within
/// `max_distance_m` and `min_name_similarity`; otherwise it seeds a new
/// cluster.
///
/// # Errors
///
/// [`SemanticError::InvalidRule`] for non-positive distance or a
/// similarity outside `[0, 1]`.
pub fn link_entities(
    records: &[EntityRecord],
    params: &LinkParams,
) -> Result<Vec<LinkedEntity>, SemanticError> {
    if params.max_distance_m <= 0.0 || !params.max_distance_m.is_finite() {
        return Err(SemanticError::InvalidRule("max_distance_m must be > 0"));
    }
    if !(0.0..=1.0).contains(&params.min_name_similarity) {
        return Err(SemanticError::InvalidRule(
            "min_name_similarity must be in [0, 1]",
        ));
    }
    struct Cluster<'a> {
        seed: &'a EntityRecord,
        members: Vec<&'a EntityRecord>,
    }
    let mut clusters: Vec<Cluster<'_>> = Vec::new();
    for r in records {
        let found = clusters.iter_mut().find(|c| {
            c.seed.position.distance(r.position) <= params.max_distance_m
                && name_similarity(&c.seed.name, &r.name) >= params.min_name_similarity
        });
        match found {
            Some(c) => c.members.push(r),
            None => clusters.push(Cluster {
                seed: r,
                members: vec![r],
            }),
        }
    }
    Ok(clusters
        .into_iter()
        .map(|c| {
            let n = c.members.len() as f64;
            let position = Enu::new(
                c.members.iter().map(|m| m.position.east).sum::<f64>() / n,
                c.members.iter().map(|m| m.position.north).sum::<f64>() / n,
                c.members.iter().map(|m| m.position.up).sum::<f64>() / n,
            );
            // Canonical name: the longest member name (most descriptive).
            // Clusters are non-empty by construction; an impossible empty
            // cluster gets an empty name rather than a panic.
            let name = c
                .members
                .iter()
                .map(|m| m.name.clone())
                .max_by_key(|s| s.len())
                .unwrap_or_default();
            let mut attrs = BTreeMap::new();
            let mut sources = Vec::new();
            for m in &c.members {
                for (k, v) in &m.attrs {
                    attrs.entry(k.clone()).or_insert_with(|| v.clone());
                }
                if !sources.contains(&m.source) {
                    sources.push(m.source.clone());
                }
            }
            LinkedEntity {
                name,
                position,
                attrs,
                sources,
                member_count: c.members.len(),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(source: &str, name: &str, e: f64, n: f64, attrs: &[(&str, &str)]) -> EntityRecord {
        EntityRecord {
            source: source.into(),
            name: name.into(),
            position: Enu::new(e, n, 0.0),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn name_similarity_basics() {
        assert_eq!(name_similarity("Seafront Cafe", "seafront cafe"), 1.0);
        assert!(name_similarity("Seafront Cafe", "The Seafront Cafe") > 0.6);
        assert_eq!(name_similarity("Cafe", "Museum"), 0.0);
        assert_eq!(name_similarity("", ""), 1.0);
    }

    #[test]
    fn merges_same_venue_across_sources() {
        let records = vec![
            rec("poi-db", "Seafront Cafe", 0.0, 0.0, &[("phone", "123")]),
            rec(
                "geo-tweets",
                "seafront cafe!!",
                8.0,
                -5.0,
                &[("rating", "4.5")],
            ),
            rec(
                "ugc-photos",
                "The Seafront Cafe",
                -4.0,
                3.0,
                &[("photo", "p1")],
            ),
            rec("poi-db", "City Museum", 800.0, 800.0, &[("hours", "9-17")]),
        ];
        let linked = link_entities(&records, &LinkParams::default()).unwrap();
        assert_eq!(linked.len(), 2);
        let cafe = linked.iter().find(|e| e.name.contains("Cafe")).unwrap();
        assert_eq!(cafe.member_count, 3);
        assert_eq!(cafe.sources.len(), 3);
        // Attribute union from all three sources.
        assert_eq!(cafe.attrs.get("phone").map(String::as_str), Some("123"));
        assert_eq!(cafe.attrs.get("rating").map(String::as_str), Some("4.5"));
        assert_eq!(cafe.attrs.get("photo").map(String::as_str), Some("p1"));
        // Centroid between the three positions.
        assert!((cafe.position.east - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distance_gate_prevents_merging_distant_same_name() {
        let records = vec![
            rec("a", "Starbucks", 0.0, 0.0, &[]),
            rec("b", "Starbucks", 5000.0, 0.0, &[]),
        ];
        let linked = link_entities(&records, &LinkParams::default()).unwrap();
        assert_eq!(linked.len(), 2, "different branches stay distinct");
    }

    #[test]
    fn name_gate_prevents_merging_nearby_different_venues() {
        let records = vec![
            rec("a", "Seafront Cafe", 0.0, 0.0, &[]),
            rec("b", "Harbour Pharmacy", 10.0, 0.0, &[]),
        ];
        let linked = link_entities(&records, &LinkParams::default()).unwrap();
        assert_eq!(linked.len(), 2);
    }

    #[test]
    fn first_writer_wins_on_attribute_conflict() {
        let records = vec![
            rec("a", "Cafe One", 0.0, 0.0, &[("rating", "4.0")]),
            rec("b", "Cafe One", 1.0, 0.0, &[("rating", "2.0")]),
        ];
        let linked = link_entities(&records, &LinkParams::default()).unwrap();
        assert_eq!(linked[0].attrs["rating"], "4.0");
    }

    #[test]
    fn parameter_validation() {
        let r = [rec("a", "x", 0.0, 0.0, &[])];
        assert!(link_entities(
            &r,
            &LinkParams {
                max_distance_m: 0.0,
                min_name_similarity: 0.5
            }
        )
        .is_err());
        assert!(link_entities(
            &r,
            &LinkParams {
                max_distance_m: 10.0,
                min_name_similarity: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn chains_anchor_to_the_seed_not_the_tail() {
        // A — B — C in a line, 40 m apart, same name: B joins A's
        // cluster (seed A, within 50 m); C is 80 m from seed A, so it
        // seeds its own cluster even though it is 40 m from member B.
        // Seed-anchored clustering prevents unbounded chain growth — a
        // deliberate property worth pinning.
        let records = vec![
            rec("s", "Kiosk", 0.0, 0.0, &[]),
            rec("s", "Kiosk", 40.0, 0.0, &[]),
            rec("s", "Kiosk", 80.0, 0.0, &[]),
        ];
        let linked = link_entities(&records, &LinkParams::default()).unwrap();
        assert_eq!(linked.len(), 2);
        assert_eq!(linked[0].member_count, 2);
        assert_eq!(linked[1].member_count, 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(link_entities(&[], &LinkParams::default())
            .unwrap()
            .is_empty());
    }
}
