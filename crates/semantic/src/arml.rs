//! ARML-inspired content model.
//!
//! The Augmented Reality Markup Language (OGC) describes AR content as
//! *features* (the things being augmented) carrying *anchors* (where they
//! live in the world) and *visual assets* (what to draw). This module
//! implements that trio with JSON round-tripping over [`crate::json`],
//! giving every data generator in the platform a standard format AR can
//! interpret — the concrete remedy §4.2 calls for.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use augur_geo::{Enu, GeoPoint};

use crate::error::SemanticError;
use crate::json::JsonValue;

/// Identifies a feature.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct FeatureId(pub u64);

impl std::fmt::Display for FeatureId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "feature:{}", self.0)
    }
}

/// Where a feature is pinned in the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Anchor {
    /// A geodetic position.
    Geo(GeoPoint),
    /// A tracked marker/image target, by registry id.
    Trackable(u64),
    /// Offset (metres ENU) from another feature's anchor.
    RelativeTo {
        /// The base feature.
        feature: FeatureId,
        /// Offset from the base anchor.
        offset: Enu,
    },
}

/// What to render for a feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VirtualAsset {
    /// A text label.
    Label {
        /// Label text.
        text: String,
        /// Display priority (higher wins contention).
        priority: f64,
    },
    /// A highlight outline ("x-ray" contour) in the given colour.
    Highlight {
        /// RGB colour, `0xRRGGBB`.
        color: u32,
    },
    /// A 3-D model reference by asset name.
    Model {
        /// Asset catalogue name.
        name: String,
        /// Uniform scale factor.
        scale: f64,
    },
}

/// An ARML feature: the unit of AR content exchanged between the
/// analytics and presentation layers.
///
/// # Example
///
/// ```
/// use augur_semantic::{Anchor, Feature, FeatureId, VirtualAsset};
/// use augur_geo::GeoPoint;
///
/// let f = Feature::new(FeatureId(1), "Seafront Cafe")
///     .with_anchor(Anchor::Geo(GeoPoint::new(22.33, 114.26)?))
///     .with_asset(VirtualAsset::Label { text: "☕ 4.8".into(), priority: 0.9 })
///     .with_tag("category", "food");
/// let json = f.to_json();
/// let back = Feature::from_json(&json)?;
/// assert_eq!(f, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Stable identifier.
    pub id: FeatureId,
    /// Human-readable name.
    pub name: String,
    /// World anchors (usually one; multiple for multi-target content).
    pub anchors: Vec<Anchor>,
    /// Renderable assets.
    pub assets: Vec<VirtualAsset>,
    /// Free-form semantic tags (`key → value`).
    pub tags: BTreeMap<String, String>,
}

impl Feature {
    /// Creates a feature with no anchors, assets, or tags.
    pub fn new(id: FeatureId, name: &str) -> Self {
        Feature {
            id,
            name: name.to_string(),
            anchors: Vec::new(),
            assets: Vec::new(),
            tags: BTreeMap::new(),
        }
    }

    /// Adds an anchor (builder style).
    pub fn with_anchor(mut self, anchor: Anchor) -> Self {
        self.anchors.push(anchor);
        self
    }

    /// Adds an asset (builder style).
    pub fn with_asset(mut self, asset: VirtualAsset) -> Self {
        self.assets.push(asset);
        self
    }

    /// Adds a tag (builder style).
    pub fn with_tag(mut self, key: &str, value: &str) -> Self {
        self.tags.insert(key.to_string(), value.to_string());
        self
    }

    /// A tag value, if present.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.get(key).map(String::as_str)
    }

    /// Serialises to the ARML JSON encoding.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("id".to_string(), JsonValue::Number(self.id.0 as f64));
        obj.insert("name".to_string(), JsonValue::from(self.name.as_str()));
        obj.insert(
            "anchors".to_string(),
            JsonValue::Array(self.anchors.iter().map(anchor_to_json).collect()),
        );
        obj.insert(
            "assets".to_string(),
            JsonValue::Array(self.assets.iter().map(asset_to_json).collect()),
        );
        obj.insert(
            "tags".to_string(),
            JsonValue::Object(
                self.tags
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                    .collect(),
            ),
        );
        JsonValue::Object(obj).to_json()
    }

    /// Parses the ARML JSON encoding.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonParse`] / [`SemanticError::JsonShape`].
    pub fn from_json(text: &str) -> Result<Feature, SemanticError> {
        let v = JsonValue::parse(text)?;
        let id = FeatureId(v.field("id")?.as_f64()? as u64);
        let name = v.field("name")?.as_str()?.to_string();
        let anchors = v
            .field("anchors")?
            .as_array()?
            .iter()
            .map(anchor_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let assets = v
            .field("assets")?
            .as_array()?
            .iter()
            .map(asset_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut tags = BTreeMap::new();
        for (k, tv) in v.field("tags")?.as_object()? {
            tags.insert(k.clone(), tv.as_str()?.to_string());
        }
        Ok(Feature {
            id,
            name,
            anchors,
            assets,
            tags,
        })
    }
}

/// An ordered collection of features — the unit a content feed ships.
///
/// # Example
///
/// ```
/// use augur_semantic::arml::FeatureCollection;
/// use augur_semantic::{Feature, FeatureId};
///
/// let fc = FeatureCollection::from_iter([
///     Feature::new(FeatureId(1), "a"),
///     Feature::new(FeatureId(2), "b"),
/// ]);
/// let back = FeatureCollection::from_json(&fc.to_json())?;
/// assert_eq!(back.len(), 2);
/// assert!(back.find(FeatureId(2)).is_some());
/// # Ok::<(), augur_semantic::SemanticError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureCollection {
    features: Vec<Feature>,
}

impl FeatureCollection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        FeatureCollection::default()
    }

    /// Adds a feature.
    pub fn push(&mut self, feature: Feature) {
        self.features.push(feature);
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterates the features in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Feature> {
        self.features.iter()
    }

    /// Finds a feature by id.
    pub fn find(&self, id: FeatureId) -> Option<&Feature> {
        self.features.iter().find(|f| f.id == id)
    }

    /// Features carrying `key == value` among their tags.
    pub fn with_tag<'a>(
        &'a self,
        key: &'a str,
        value: &'a str,
    ) -> impl Iterator<Item = &'a Feature> {
        self.features
            .iter()
            .filter(move |f| f.tag(key) == Some(value))
    }

    /// Serialises the collection as a JSON array of features.
    pub fn to_json(&self) -> String {
        let items: Vec<JsonValue> = self
            .features
            .iter()
            // Feature encoding round-trips by construction; an impossible
            // parse failure degrades to `null` rather than panicking.
            .map(|f| JsonValue::parse(&f.to_json()).unwrap_or(JsonValue::Null))
            .collect();
        JsonValue::Array(items).to_json()
    }

    /// Parses a JSON array of features.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonParse`] / [`SemanticError::JsonShape`].
    pub fn from_json(text: &str) -> Result<FeatureCollection, SemanticError> {
        let v = JsonValue::parse(text)?;
        let mut out = FeatureCollection::new();
        for item in v.as_array()? {
            out.push(Feature::from_json(&item.to_json())?);
        }
        Ok(out)
    }
}

impl FromIterator<Feature> for FeatureCollection {
    fn from_iter<I: IntoIterator<Item = Feature>>(iter: I) -> Self {
        FeatureCollection {
            features: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a FeatureCollection {
    type Item = &'a Feature;
    type IntoIter = std::slice::Iter<'a, Feature>;
    fn into_iter(self) -> Self::IntoIter {
        self.features.iter()
    }
}

fn anchor_to_json(a: &Anchor) -> JsonValue {
    let mut obj = BTreeMap::new();
    match a {
        Anchor::Geo(p) => {
            obj.insert("type".into(), "geo".into());
            obj.insert("lat".into(), JsonValue::Number(p.latitude_deg()));
            obj.insert("lon".into(), JsonValue::Number(p.longitude_deg()));
            obj.insert("alt".into(), JsonValue::Number(p.altitude_m()));
        }
        Anchor::Trackable(id) => {
            obj.insert("type".into(), "trackable".into());
            obj.insert("target".into(), JsonValue::Number(*id as f64));
        }
        Anchor::RelativeTo { feature, offset } => {
            obj.insert("type".into(), "relative".into());
            obj.insert("feature".into(), JsonValue::Number(feature.0 as f64));
            obj.insert("east".into(), JsonValue::Number(offset.east));
            obj.insert("north".into(), JsonValue::Number(offset.north));
            obj.insert("up".into(), JsonValue::Number(offset.up));
        }
    }
    JsonValue::Object(obj)
}

fn anchor_from_json(v: &JsonValue) -> Result<Anchor, SemanticError> {
    match v.field("type")?.as_str()? {
        "geo" => {
            let p = GeoPoint::with_altitude(
                v.field("lat")?.as_f64()?,
                v.field("lon")?.as_f64()?,
                v.field("alt")?.as_f64()?,
            )
            .map_err(|e| SemanticError::JsonShape(format!("invalid geo anchor: {e}")))?;
            Ok(Anchor::Geo(p))
        }
        "trackable" => Ok(Anchor::Trackable(v.field("target")?.as_f64()? as u64)),
        "relative" => Ok(Anchor::RelativeTo {
            feature: FeatureId(v.field("feature")?.as_f64()? as u64),
            offset: Enu::new(
                v.field("east")?.as_f64()?,
                v.field("north")?.as_f64()?,
                v.field("up")?.as_f64()?,
            ),
        }),
        other => Err(SemanticError::JsonShape(format!(
            "unknown anchor type {other:?}"
        ))),
    }
}

fn asset_to_json(a: &VirtualAsset) -> JsonValue {
    let mut obj = BTreeMap::new();
    match a {
        VirtualAsset::Label { text, priority } => {
            obj.insert("type".into(), "label".into());
            obj.insert("text".into(), JsonValue::from(text.as_str()));
            obj.insert("priority".into(), JsonValue::Number(*priority));
        }
        VirtualAsset::Highlight { color } => {
            obj.insert("type".into(), "highlight".into());
            obj.insert("color".into(), JsonValue::Number(*color as f64));
        }
        VirtualAsset::Model { name, scale } => {
            obj.insert("type".into(), "model".into());
            obj.insert("name".into(), JsonValue::from(name.as_str()));
            obj.insert("scale".into(), JsonValue::Number(*scale));
        }
    }
    JsonValue::Object(obj)
}

fn asset_from_json(v: &JsonValue) -> Result<VirtualAsset, SemanticError> {
    match v.field("type")?.as_str()? {
        "label" => Ok(VirtualAsset::Label {
            text: v.field("text")?.as_str()?.to_string(),
            priority: v.field("priority")?.as_f64()?,
        }),
        "highlight" => Ok(VirtualAsset::Highlight {
            color: v.field("color")?.as_f64()? as u32,
        }),
        "model" => Ok(VirtualAsset::Model {
            name: v.field("name")?.as_str()?.to_string(),
            scale: v.field("scale")?.as_f64()?,
        }),
        other => Err(SemanticError::JsonShape(format!(
            "unknown asset type {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Feature {
        Feature::new(FeatureId(7), "Museum")
            .with_anchor(Anchor::Geo(
                GeoPoint::with_altitude(22.3, 114.2, 8.0).unwrap(),
            ))
            .with_anchor(Anchor::RelativeTo {
                feature: FeatureId(3),
                offset: Enu::new(1.0, -2.0, 0.5),
            })
            .with_asset(VirtualAsset::Label {
                text: "Opening hours: 9–17".into(),
                priority: 0.7,
            })
            .with_asset(VirtualAsset::Highlight { color: 0x00FF88 })
            .with_asset(VirtualAsset::Model {
                name: "museum_lod1".into(),
                scale: 1.0,
            })
            .with_tag("category", "landmark")
            .with_tag("source", "crowdsourced")
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let f = sample();
        let text = f.to_json();
        let back = Feature::from_json(&text).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn trackable_anchor_round_trips() {
        let f = Feature::new(FeatureId(1), "poster").with_anchor(Anchor::Trackable(99));
        let back = Feature::from_json(&f.to_json()).unwrap();
        assert_eq!(back.anchors, vec![Anchor::Trackable(99)]);
    }

    #[test]
    fn tag_accessor() {
        let f = sample();
        assert_eq!(f.tag("category"), Some("landmark"));
        assert_eq!(f.tag("missing"), None);
    }

    #[test]
    fn rejects_unknown_types() {
        let bad = r#"{"id":1,"name":"x","anchors":[{"type":"teleport"}],"assets":[],"tags":{}}"#;
        assert!(matches!(
            Feature::from_json(bad),
            Err(SemanticError::JsonShape(_))
        ));
        let bad = r#"{"id":1,"name":"x","anchors":[],"assets":[{"type":"hologram"}],"tags":{}}"#;
        assert!(Feature::from_json(bad).is_err());
    }

    #[test]
    fn rejects_invalid_geo_anchor() {
        let bad = r#"{"id":1,"name":"x","anchors":[{"type":"geo","lat":95.0,"lon":0,"alt":0}],"assets":[],"tags":{}}"#;
        assert!(matches!(
            Feature::from_json(bad),
            Err(SemanticError::JsonShape(_))
        ));
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(Feature::from_json(r#"{"id":1}"#).is_err());
        assert!(Feature::from_json("not json").is_err());
    }

    #[test]
    fn collection_round_trips_and_filters() {
        let mut fc = FeatureCollection::new();
        fc.push(sample());
        fc.push(
            Feature::new(FeatureId(8), "Cafe")
                .with_anchor(Anchor::Trackable(2))
                .with_tag("category", "food"),
        );
        let back = FeatureCollection::from_json(&fc.to_json()).unwrap();
        assert_eq!(fc, back);
        assert_eq!(back.len(), 2);
        assert_eq!(back.with_tag("category", "food").count(), 1);
        assert_eq!(back.with_tag("category", "landmark").count(), 1);
        assert!(back.find(FeatureId(7)).is_some());
        assert!(back.find(FeatureId(99)).is_none());
        assert_eq!(back.iter().count(), 2);
    }

    #[test]
    fn empty_collection_round_trips() {
        let fc = FeatureCollection::new();
        assert!(fc.is_empty());
        let back = FeatureCollection::from_json(&fc.to_json()).unwrap();
        assert!(back.is_empty());
        assert!(FeatureCollection::from_json("{}").is_err());
    }

    #[test]
    fn unicode_labels_survive() {
        let f = Feature::new(FeatureId(2), "咖啡店").with_asset(VirtualAsset::Label {
            text: "评分 ★★★★☆".into(),
            priority: 1.0,
        });
        let back = Feature::from_json(&f.to_json()).unwrap();
        assert_eq!(back.name, "咖啡店");
    }
}
