//! Semantic layer: the interpretation bridge between big-data analytics
//! and AR presentation.
//!
//! §4.2 of the paper identifies *interpretation* as a core challenge:
//! "the output of a customer behaviour analysis system is normally
//! customer stats, but AR is responsible for how to use the stats", and
//! points to ARML-style standard formats as the way forward. This crate
//! supplies that bridge:
//!
//! - [`json`]: a minimal JSON reader/writer (kept in-tree so the wire
//!   format has no external dependency).
//! - [`arml`]: an ARML-inspired content model — [`Feature`]s carrying
//!   [`Anchor`]s and [`VirtualAsset`]s — with JSON round-tripping.
//! - [`interpret`]: a rule engine translating analytics outputs
//!   ([`Fact`]s) into AR [`Directive`]s under user context.
//! - [`link`]: cross-source entity linking that merges the "fragmented,
//!   redundant" records of §3.2 into unified entities.

pub mod arml;
pub mod error;
pub mod interpret;
pub mod json;
pub mod link;

pub use arml::{Anchor, Feature, FeatureId, VirtualAsset};
pub use error::SemanticError;
pub use interpret::{
    ActionTemplate, Condition, Directive, Fact, InterpretationEngine, Rule, UserContext,
};
pub use json::JsonValue;
pub use link::{link_entities, EntityRecord, LinkParams, LinkedEntity};
