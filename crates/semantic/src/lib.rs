//! Semantic layer: the interpretation bridge between big-data analytics
//! and AR presentation.
//!
//! §4.2 of the paper identifies *interpretation* as a core challenge:
//! "the output of a customer behaviour analysis system is normally
//! customer stats, but AR is responsible for how to use the stats", and
//! points to ARML-style standard formats as the way forward. This crate
//! supplies that bridge:
//!
//! - [`json`]: a minimal JSON reader/writer (kept in-tree so the wire
//!   format has no external dependency).
//! - [`arml`]: an ARML-inspired content model — [`Feature`]s carrying
//!   [`Anchor`]s and [`VirtualAsset`]s — with JSON round-tripping.
//! - [`interpret`]: a rule engine translating analytics outputs
//!   ([`Fact`]s) into AR [`Directive`]s under user context.
//! - [`link`]: cross-source entity linking that merges the "fragmented,
//!   redundant" records of §3.2 into unified entities.

/// ARML-style feature/anchor/asset content model.
pub mod arml;
/// The crate error type.
pub mod error;
/// Rule-based interpretation of facts into AR directives.
pub mod interpret;
/// A minimal JSON value model with parser and printer.
pub mod json;
/// Cross-source entity linking.
pub mod link;

/// Content-model types re-exported from [`arml`].
pub use arml::{Anchor, Feature, FeatureId, VirtualAsset};
/// The crate error type, re-exported from [`error`].
pub use error::SemanticError;
/// Interpretation machinery re-exported from [`interpret`].
pub use interpret::{
    ActionTemplate, Condition, Directive, Fact, InterpretationEngine, Rule, UserContext,
};
/// JSON values re-exported from [`json`].
pub use json::JsonValue;
/// Entity linking re-exported from [`link`].
pub use link::{link_entities, EntityRecord, LinkParams, LinkedEntity};
