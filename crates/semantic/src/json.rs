//! A minimal JSON reader/writer.
//!
//! Kept in-tree (rather than pulling `serde_json`) so the ARML wire
//! format has no external dependency; see DESIGN.md. Supports the full
//! JSON data model with the usual escapes; numbers are `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::SemanticError;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (sorted keys, so output is canonical).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonParse`] with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<JsonValue, SemanticError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters"));
        }
        Ok(v)
    }

    /// Serialises to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience: the value as an object map.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonShape`] when the value is not an object.
    pub fn as_object(&self) -> Result<&BTreeMap<String, JsonValue>, SemanticError> {
        match self {
            JsonValue::Object(m) => Ok(m),
            other => Err(SemanticError::JsonShape(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Convenience: the value as an array.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonShape`] when the value is not an array.
    pub fn as_array(&self) -> Result<&[JsonValue], SemanticError> {
        match self {
            JsonValue::Array(a) => Ok(a),
            other => Err(SemanticError::JsonShape(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Convenience: the value as a string slice.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonShape`] when the value is not a string.
    pub fn as_str(&self) -> Result<&str, SemanticError> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(SemanticError::JsonShape(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// Convenience: the value as a number.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonShape`] when the value is not a number.
    pub fn as_f64(&self) -> Result<f64, SemanticError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            other => Err(SemanticError::JsonShape(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// Fetches a required object field.
    ///
    /// # Errors
    ///
    /// [`SemanticError::JsonShape`] when absent or not an object.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a JsonValue, SemanticError> {
        self.as_object()?
            .get(name)
            .ok_or_else(|| SemanticError::JsonShape(format!("missing field {name:?}")))
    }

    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: &str) -> SemanticError {
    SemanticError::JsonParse {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, SemanticError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, SemanticError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, SemanticError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(err(start, "expected a value"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JsonValue::Number)
        .ok_or_else(|| err(start, "invalid number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, SemanticError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = s.chars().next().ok_or_else(|| err(*pos, "invalid utf-8"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, SemanticError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, SemanticError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -1.5e2 ").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        let a = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].field("b").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.field("c").unwrap(), &JsonValue::Null);
    }

    #[test]
    fn round_trips() {
        let docs = [
            r#"{"a":[1,2.5,{"b":"x"}],"c":null,"d":true}"#,
            r#"[]"#,
            r#"{}"#,
            r#"{"s":"quote \" backslash \\ newline \n"}"#,
            r#"[0,-1,123456789]"#,
        ];
        for d in docs {
            let v = JsonValue::parse(d).unwrap();
            let text = v.to_json();
            let again = JsonValue::parse(&text).unwrap();
            assert_eq!(v, again, "round trip of {d}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = JsonValue::parse(r#""Aé""#).unwrap();
        assert_eq!(v, JsonValue::String("Aé".into()));
        // Non-ASCII passes through raw too.
        let v = JsonValue::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo");
    }

    #[test]
    fn error_offsets_are_reported() {
        let e = JsonValue::parse(r#"{"a" 1}"#).unwrap_err();
        match e {
            SemanticError::JsonParse { offset, .. } => assert_eq!(offset, 5),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} x").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("1e999").is_err(), "non-finite rejected");
    }

    #[test]
    fn shape_helpers() {
        let v = JsonValue::parse(r#"{"n": 3}"#).unwrap();
        assert_eq!(v.field("n").unwrap().as_f64().unwrap(), 3.0);
        assert!(v.field("missing").is_err());
        assert!(v.as_array().is_err());
        assert!(JsonValue::Null.as_object().is_err());
        assert!(JsonValue::Bool(true).as_str().is_err());
    }

    #[test]
    fn canonical_object_key_order() {
        let v = JsonValue::parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.to_json(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn control_characters_escaped_on_write() {
        let v = JsonValue::String("\u{0001}".into());
        assert_eq!(v.to_json(), "\"\\u0001\"");
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }
}
