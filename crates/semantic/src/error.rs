//! Error types for the semantic layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the semantic layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticError {
    /// JSON text failed to parse at the given byte offset.
    JsonParse {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A JSON document parsed but did not match the expected shape.
    JsonShape(String),
    /// A rule or parameter was out of domain.
    InvalidRule(&'static str),
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticError::JsonParse { offset, message } => {
                write!(f, "json parse error at byte {offset}: {message}")
            }
            SemanticError::JsonShape(what) => write!(f, "unexpected json shape: {what}"),
            SemanticError::InvalidRule(what) => write!(f, "invalid rule: {what}"),
        }
    }
}

impl Error for SemanticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = SemanticError::JsonParse {
            offset: 5,
            message: "expected ':'".into(),
        };
        assert!(e.to_string().contains("byte 5"));
        assert!(SemanticError::JsonShape("missing id".into())
            .to_string()
            .contains("missing id"));
    }
}
