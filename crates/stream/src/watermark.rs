//! Event-time watermarks.
//!
//! A watermark `W(t)` asserts that no further records with event time
//! ≤ `t` are expected. Windows fire when the watermark passes their end,
//! which is how the engine trades completeness against the AR latency
//! budget: a larger out-of-orderness bound waits longer but drops less.

use serde::{Deserialize, Serialize};

/// A watermark value (event time in microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Watermark(pub u64);

impl std::fmt::Display for Watermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "W({})", self.0)
    }
}

/// Generates watermarks from observed event times.
pub trait WatermarkGenerator {
    /// Observes a record's event time; returns the new watermark if it
    /// advanced.
    fn observe(&mut self, event_time_us: u64) -> Option<Watermark>;

    /// The current watermark.
    fn current(&self) -> Watermark;
}

/// The standard bounded-out-of-orderness generator: watermark trails the
/// maximum observed event time by a fixed bound.
///
/// # Example
///
/// ```
/// use augur_stream::{BoundedOutOfOrderness, WatermarkGenerator};
/// let mut wm = BoundedOutOfOrderness::new(1_000);
/// wm.observe(5_000);
/// assert_eq!(wm.current().0, 4_000);
/// // A late record does not regress the watermark.
/// wm.observe(3_000);
/// assert_eq!(wm.current().0, 4_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundedOutOfOrderness {
    bound_us: u64,
    max_seen_us: u64,
}

impl BoundedOutOfOrderness {
    /// Creates a generator trailing the max event time by `bound_us`.
    pub fn new(bound_us: u64) -> Self {
        BoundedOutOfOrderness {
            bound_us,
            max_seen_us: 0,
        }
    }

    /// The configured lateness bound in microseconds.
    pub fn bound_us(&self) -> u64 {
        self.bound_us
    }
}

impl WatermarkGenerator for BoundedOutOfOrderness {
    fn observe(&mut self, event_time_us: u64) -> Option<Watermark> {
        if event_time_us > self.max_seen_us {
            self.max_seen_us = event_time_us;
            Some(self.current())
        } else {
            None
        }
    }

    fn current(&self) -> Watermark {
        Watermark(self.max_seen_us.saturating_sub(self.bound_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_trails_max_by_bound() {
        let mut g = BoundedOutOfOrderness::new(500);
        assert_eq!(g.current(), Watermark(0));
        assert_eq!(g.observe(1_000), Some(Watermark(500)));
        assert_eq!(g.observe(2_000), Some(Watermark(1_500)));
    }

    #[test]
    fn late_records_do_not_regress() {
        let mut g = BoundedOutOfOrderness::new(100);
        g.observe(10_000);
        assert_eq!(g.observe(5_000), None);
        assert_eq!(g.current(), Watermark(9_900));
    }

    #[test]
    fn saturates_at_zero() {
        let mut g = BoundedOutOfOrderness::new(1_000_000);
        g.observe(10);
        assert_eq!(g.current(), Watermark(0));
    }

    #[test]
    fn zero_bound_tracks_max_exactly() {
        let mut g = BoundedOutOfOrderness::new(0);
        g.observe(42);
        assert_eq!(g.current(), Watermark(42));
    }
}
