//! Event-time windows and keyed windowed aggregation.
//!
//! Tumbling and sliding windows are assigned directly from an event's
//! timestamp; session windows grow by merging. The
//! [`WindowedAggregator`] keeps per-(key, window) accumulators, drops
//! records that arrive behind the watermark (counting them), and emits
//! finalized windows as the watermark advances — the core of experiments
//! E2 (incremental vs batch) and E9 (alerting latency).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::watermark::Watermark;

/// A half-open event-time window `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive start, microseconds.
    pub start_us: u64,
    /// Exclusive end, microseconds.
    pub end_us: u64,
}

impl Window {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `start_us >= end_us`.
    pub fn new(start_us: u64, end_us: u64) -> Self {
        assert!(start_us < end_us, "window start must precede end");
        Window { start_us, end_us }
    }

    /// Window length in microseconds.
    pub fn len_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Whether an event time falls inside.
    pub fn contains(&self, t_us: u64) -> bool {
        t_us >= self.start_us && t_us < self.end_us
    }

    /// Whether two windows overlap or touch (used for session merging).
    pub fn mergeable(&self, other: &Window) -> bool {
        self.start_us <= other.end_us && other.start_us <= self.end_us
    }

    /// The union of two mergeable windows.
    pub fn merge(&self, other: &Window) -> Window {
        Window {
            start_us: self.start_us.min(other.start_us),
            end_us: self.end_us.max(other.end_us),
        }
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start_us, self.end_us)
    }
}

/// Assigns windows to event times.
pub trait WindowAssigner {
    /// The windows an event at `t_us` belongs to.
    fn assign(&self, t_us: u64) -> Vec<Window>;

    /// `Some(gap)` if windows must be merged session-style.
    fn session_gap_us(&self) -> Option<u64> {
        None
    }
}

/// Fixed, non-overlapping windows of `size_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TumblingWindows {
    size_us: u64,
}

impl TumblingWindows {
    /// Creates an assigner with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `size_us == 0`.
    pub fn new(size_us: u64) -> Self {
        assert!(size_us > 0, "window size must be positive");
        TumblingWindows { size_us }
    }
}

impl WindowAssigner for TumblingWindows {
    fn assign(&self, t_us: u64) -> Vec<Window> {
        let start = (t_us / self.size_us) * self.size_us;
        vec![Window::new(start, start + self.size_us)]
    }
}

/// Overlapping windows of `size_us` sliding every `slide_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlidingWindows {
    size_us: u64,
    slide_us: u64,
}

impl SlidingWindows {
    /// Creates an assigner.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or `slide_us > size_us`.
    pub fn new(size_us: u64, slide_us: u64) -> Self {
        assert!(
            size_us > 0 && slide_us > 0,
            "window parameters must be positive"
        );
        assert!(slide_us <= size_us, "slide must not exceed size");
        SlidingWindows { size_us, slide_us }
    }
}

impl WindowAssigner for SlidingWindows {
    fn assign(&self, t_us: u64) -> Vec<Window> {
        let mut out = Vec::new();
        let last_start = (t_us / self.slide_us) * self.slide_us;
        let mut start = last_start;
        loop {
            if start + self.size_us > t_us {
                out.push(Window::new(start, start + self.size_us));
            }
            if start < self.slide_us {
                break;
            }
            start -= self.slide_us;
            if start + self.size_us <= t_us {
                break;
            }
        }
        out.reverse();
        out
    }
}

/// Session windows closing after `gap_us` of inactivity per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionWindows {
    gap_us: u64,
}

impl SessionWindows {
    /// Creates an assigner with the given inactivity gap.
    ///
    /// # Panics
    ///
    /// Panics if `gap_us == 0`.
    pub fn new(gap_us: u64) -> Self {
        assert!(gap_us > 0, "session gap must be positive");
        SessionWindows { gap_us }
    }
}

impl WindowAssigner for SessionWindows {
    fn assign(&self, t_us: u64) -> Vec<Window> {
        vec![Window::new(t_us, t_us + self.gap_us)]
    }

    fn session_gap_us(&self) -> Option<u64> {
        Some(self.gap_us)
    }
}

/// A fold over window contents.
///
/// The accumulator must be `Clone` so the engine can checkpoint state by
/// snapshot (see [`crate::checkpoint`]).
pub trait Aggregation<T> {
    /// Accumulator type.
    type Acc: Clone + Send + 'static;

    /// A fresh accumulator.
    fn init(&self) -> Self::Acc;

    /// Folds one item in.
    fn fold(&self, acc: &mut Self::Acc, item: &T);

    /// Merges two accumulators (needed for session-window merging).
    fn merge(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
}

/// Counts items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountAggregation;

impl<T> Aggregation<T> for CountAggregation {
    type Acc = u64;
    fn init(&self) -> u64 {
        0
    }
    fn fold(&self, acc: &mut u64, _item: &T) {
        *acc += 1;
    }
    fn merge(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Accumulates count / sum / min / max / mean of an extracted `f64`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NumericStats {
    /// Item count.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum (`f64::INFINITY` when empty).
    pub min: f64,
    /// Maximum (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl NumericStats {
    /// A stats accumulator with proper identity values.
    pub fn empty() -> Self {
        NumericStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Mean value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Folds one value in.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator in.
    pub fn merge(&mut self, other: &NumericStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// [`Aggregation`] computing [`NumericStats`] over `extract(item)`.
pub struct StatsAggregation<T, F: Fn(&T) -> f64> {
    extract: F,
    _marker: std::marker::PhantomData<fn(&T)>,
}

impl<T, F: Fn(&T) -> f64> StatsAggregation<T, F> {
    /// Creates the aggregation from a value extractor.
    pub fn new(extract: F) -> Self {
        StatsAggregation {
            extract,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, F: Fn(&T) -> f64> std::fmt::Debug for StatsAggregation<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsAggregation").finish_non_exhaustive()
    }
}

impl<T, F: Fn(&T) -> f64> Aggregation<T> for StatsAggregation<T, F> {
    type Acc = NumericStats;
    fn init(&self) -> NumericStats {
        NumericStats::empty()
    }
    fn fold(&self, acc: &mut NumericStats, item: &T) {
        acc.add((self.extract)(item));
    }
    fn merge(&self, mut a: NumericStats, b: NumericStats) -> NumericStats {
        a.merge(&b);
        a
    }
}

/// An emitted window result.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult<Acc> {
    /// Grouping key.
    pub key: u64,
    /// The finalized window.
    pub window: Window,
    /// The accumulated value.
    pub value: Acc,
}

/// Keyed windowed aggregation with watermark-driven emission.
///
/// # Example
///
/// ```
/// use augur_stream::{TumblingWindows, WindowedAggregator, Watermark};
/// use augur_stream::window::CountAggregation;
///
/// let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), CountAggregation);
/// agg.offer(1, 100, &());
/// agg.offer(1, 900, &());
/// agg.offer(1, 1_100, &());
/// let fired = agg.advance(Watermark(1_000));
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].value, 2);
/// ```
#[derive(Debug)]
pub struct WindowedAggregator<W, A, T>
where
    W: WindowAssigner,
    A: Aggregation<T>,
{
    assigner: W,
    aggregation: A,
    // Keyed state ordered by window end for cheap emission.
    state: BTreeMap<(u64, u64, u64), A::Acc>, // (end_us, key, start_us)
    emitted_watermark: Watermark,
    late_dropped: u64,
    _marker: std::marker::PhantomData<fn(&T)>,
}

impl<W, A, T> WindowedAggregator<W, A, T>
where
    W: WindowAssigner,
    A: Aggregation<T>,
{
    /// Creates an aggregator.
    pub fn new(assigner: W, aggregation: A) -> Self {
        WindowedAggregator {
            assigner,
            aggregation,
            state: BTreeMap::new(),
            emitted_watermark: Watermark(0),
            late_dropped: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Records dropped for arriving behind the watermark.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Number of live (key, window) accumulators.
    pub fn live_windows(&self) -> usize {
        self.state.len()
    }

    /// Offers an item. Returns `false` if it was dropped as late.
    pub fn offer(&mut self, key: u64, event_time_us: u64, item: &T) -> bool {
        let windows = self.assigner.assign(event_time_us);
        // Late if every window it belongs to has already been emitted.
        if windows.iter().all(|w| w.end_us <= self.emitted_watermark.0) {
            self.late_dropped += 1;
            return false;
        }
        if let Some(_gap) = self.assigner.session_gap_us() {
            self.offer_session(key, windows[0], item);
        } else {
            for w in windows {
                if w.end_us <= self.emitted_watermark.0 {
                    continue; // this pane already fired; drop silently
                }
                let acc = self
                    .state
                    .entry((w.end_us, key, w.start_us))
                    .or_insert_with(|| self.aggregation.init());
                self.aggregation.fold(acc, item);
            }
        }
        true
    }

    fn offer_session(&mut self, key: u64, mut window: Window, item: &T) {
        let mut acc = self.aggregation.init();
        self.aggregation.fold(&mut acc, item);
        // Find existing sessions for this key that merge with the new one.
        let mergeable: Vec<(u64, u64, u64)> = self
            .state
            .keys()
            .filter(|(end, k, start)| *k == key && Window::new(*start, *end).mergeable(&window))
            .cloned()
            .collect();
        for k in mergeable {
            if let Some(existing) = self.state.remove(&k) {
                window = window.merge(&Window::new(k.2, k.0));
                acc = self.aggregation.merge(acc, existing);
            }
        }
        self.state
            .insert((window.end_us, key, window.start_us), acc);
    }

    /// Advances the watermark, emitting every window whose end has
    /// passed. Results are ordered by (end, key).
    pub fn advance(&mut self, watermark: Watermark) -> Vec<WindowResult<A::Acc>> {
        if watermark <= self.emitted_watermark {
            return Vec::new();
        }
        self.emitted_watermark = watermark;
        let mut fired = Vec::new();
        // All keys with end_us <= watermark: range up to (watermark+1, 0, 0).
        let boundary = (watermark.0 + 1, 0u64, 0u64);
        let to_fire: Vec<(u64, u64, u64)> = self.state.range(..boundary).map(|(k, _)| *k).collect();
        for k in to_fire {
            if let Some(value) = self.state.remove(&k) {
                fired.push(WindowResult {
                    key: k.1,
                    window: Window::new(k.2, k.0),
                    value,
                });
            }
        }
        fired
    }

    /// Emits everything regardless of the watermark (end of stream).
    pub fn flush(&mut self) -> Vec<WindowResult<A::Acc>> {
        let mut fired: Vec<WindowResult<A::Acc>> = self
            .state
            .iter()
            .map(|(k, v)| WindowResult {
                key: k.1,
                window: Window::new(k.2, k.0),
                value: v.clone(),
            })
            .collect();
        self.state.clear();
        fired.sort_by_key(|r| (r.window.end_us, r.key));
        fired
    }

    /// Snapshot of the internal state for checkpointing.
    pub fn snapshot(&self) -> WindowState<A::Acc> {
        WindowState {
            state: self.state.clone().into_iter().collect(),
            emitted_watermark: self.emitted_watermark,
            late_dropped: self.late_dropped,
        }
    }

    /// Restores a snapshot taken by [`WindowedAggregator::snapshot`].
    pub fn restore(&mut self, snap: WindowState<A::Acc>) {
        self.state = snap.state.into_iter().collect();
        self.emitted_watermark = snap.emitted_watermark;
        self.late_dropped = snap.late_dropped;
    }
}

/// Checkpointable window-operator state.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowState<Acc> {
    state: Vec<((u64, u64, u64), Acc)>,
    emitted_watermark: Watermark,
    late_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment() {
        let w = TumblingWindows::new(1_000);
        assert_eq!(w.assign(0), vec![Window::new(0, 1_000)]);
        assert_eq!(w.assign(999), vec![Window::new(0, 1_000)]);
        assert_eq!(w.assign(1_000), vec![Window::new(1_000, 2_000)]);
    }

    #[test]
    fn sliding_assignment_covers_event() {
        let w = SlidingWindows::new(1_000, 250);
        let t = 1_100;
        let windows = w.assign(t);
        assert_eq!(windows.len(), 4);
        for win in &windows {
            assert!(win.contains(t), "{win} should contain {t}");
        }
        // Consecutive starts differ by the slide.
        for pair in windows.windows(2) {
            assert_eq!(pair[1].start_us - pair[0].start_us, 250);
        }
    }

    #[test]
    fn sliding_equal_size_and_slide_is_tumbling() {
        let s = SlidingWindows::new(500, 500);
        let t = TumblingWindows::new(500);
        for time in [0u64, 499, 500, 1_250] {
            assert_eq!(s.assign(time), t.assign(time));
        }
    }

    #[test]
    #[should_panic(expected = "slide must not exceed size")]
    fn sliding_rejects_gap_larger_than_size() {
        let _ = SlidingWindows::new(100, 200);
    }

    #[test]
    fn tumbling_count_fires_on_watermark() {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), CountAggregation);
        for t in [10, 20, 990, 1_500, 2_200] {
            assert!(agg.offer(7, t, &()));
        }
        assert!(agg.advance(Watermark(999)).is_empty());
        let fired = agg.advance(Watermark(1_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].key, 7);
        assert_eq!(fired[0].value, 3);
        let rest = agg.flush();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest.iter().map(|r| r.value).sum::<u64>(), 2);
    }

    #[test]
    fn late_records_are_dropped_and_counted() {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), CountAggregation);
        agg.offer(1, 500, &());
        agg.advance(Watermark(2_000));
        assert!(!agg.offer(1, 700, &()), "record behind watermark");
        assert_eq!(agg.late_dropped(), 1);
    }

    #[test]
    fn keys_are_isolated() {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), CountAggregation);
        agg.offer(1, 100, &());
        agg.offer(2, 200, &());
        agg.offer(2, 300, &());
        let mut fired = agg.advance(Watermark(1_000));
        fired.sort_by_key(|r| r.key);
        assert_eq!(fired.len(), 2);
        assert_eq!((fired[0].key, fired[0].value), (1, 1));
        assert_eq!((fired[1].key, fired[1].value), (2, 2));
    }

    #[test]
    fn stats_aggregation_computes_summary() {
        let agg_fn = StatsAggregation::new(|v: &f64| *v);
        let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), agg_fn);
        for (t, v) in [(10, 1.0), (20, 5.0), (30, 3.0)] {
            agg.offer(1, t, &v);
        }
        let fired = agg.advance(Watermark(1_000));
        let s = &fired[0].value;
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 9.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn session_windows_merge_within_gap() {
        let mut agg = WindowedAggregator::new(SessionWindows::new(1_000), CountAggregation);
        // Events at 0, 500, 900: one session [0, 1900).
        agg.offer(1, 0, &());
        agg.offer(1, 500, &());
        agg.offer(1, 900, &());
        // A distant event: separate session.
        agg.offer(1, 5_000, &());
        let fired = agg.flush();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].value, 3);
        assert_eq!(fired[0].window, Window::new(0, 1_900));
        assert_eq!(fired[1].value, 1);
    }

    #[test]
    fn session_merge_bridges_gap_between_sessions() {
        let mut agg = WindowedAggregator::new(SessionWindows::new(1_000), CountAggregation);
        agg.offer(1, 0, &());
        agg.offer(1, 2_000, &());
        // Bridge arrives between them, merging all three.
        agg.offer(1, 1_000, &());
        let fired = agg.flush();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, 3);
        assert_eq!(fired[0].window, Window::new(0, 3_000));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), CountAggregation);
        agg.offer(1, 100, &());
        agg.offer(2, 1_200, &());
        let snap = agg.snapshot();
        agg.offer(3, 1_300, &());
        agg.restore(snap);
        assert_eq!(agg.live_windows(), 2);
        let fired = agg.flush();
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn numeric_stats_identity() {
        let s = NumericStats::empty();
        assert_eq!(s.mean(), None);
        let mut a = NumericStats::empty();
        a.add(2.0);
        let mut b = NumericStats::empty();
        b.merge(&a);
        assert_eq!(b.count, 1);
        assert_eq!(b.min, 2.0);
    }

    #[test]
    fn advance_is_idempotent_for_same_watermark() {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(100), CountAggregation);
        agg.offer(1, 50, &());
        assert_eq!(agg.advance(Watermark(100)).len(), 1);
        assert!(agg.advance(Watermark(100)).is_empty());
        assert!(agg.advance(Watermark(50)).is_empty());
    }
}
