//! In-process distributed stream substrate for the Augur platform.
//!
//! The paper's "Velocity" dimension — data "streaming in and out at high
//! speed \[that\] must be processed within a timely way" — presumes a
//! Kafka-style partitioned log plus a Flink-style dataflow engine. Those
//! clusters are not available to a library build, so this crate
//! implements both *semantically*, in process:
//!
//! - [`broker`]: named topics of partitioned, append-only logs with
//!   producers, consumer groups, and committed offsets.
//! - [`record`]: the wire record (key, payload bytes, event time).
//! - [`watermark`]: bounded-out-of-orderness event-time watermarks.
//! - [`window`]: tumbling, sliding, and session window assigners plus a
//!   keyed windowed aggregator with late-data accounting.
//! - [`pipeline`]: a threaded dataflow executor (source → operators →
//!   sink) with bounded channels providing backpressure.
//! - [`checkpoint`]: offset + operator-state snapshots and recovery.
//!
//! Absolute throughput differs from a real cluster; the *semantics* —
//! ordering per partition, event-time windows, exactly-once-style
//! recovery from checkpoints — are what the platform and experiments
//! (E2, E9, E12) depend on, and those are implemented faithfully.
//!
//! # Example
//!
//! ```
//! use augur_stream::{Broker, Record};
//!
//! let broker = Broker::new();
//! broker.create_topic("events", 4)?;
//! broker.append("events", Record::new(7, b"hello".as_ref(), 1_000))?;
//! let polled = broker.poll("events", broker.partition_for("events", 7)?, 0, 10)?;
//! assert_eq!(polled.len(), 1);
//! assert_eq!(&polled[0].record.payload[..], b"hello");
//! # Ok::<(), augur_stream::StreamError>(())
//! ```

/// The partitioned in-memory broker and consumer groups.
pub mod broker;
/// Pipeline checkpointing for exactly-once resumption.
pub mod checkpoint;
/// The crate error type.
pub mod error;
/// Dataflow pipelines over the broker.
pub mod pipeline;
/// Record, offset, and partition types.
pub mod record;
/// Event-time watermarks.
pub mod watermark;
/// Windowed aggregation: tumbling, sliding, session.
pub mod window;

/// Broker types re-exported from [`broker`].
pub use broker::{Broker, ConsumerGroup, TopicStats};
/// Checkpoint types re-exported from [`checkpoint`].
pub use checkpoint::{Checkpoint, CheckpointStore};
/// The crate error type, re-exported from [`error`].
pub use error::StreamError;
/// Pipeline types re-exported from [`pipeline`].
pub use pipeline::{ModeledCosts, Pipeline, PipelineBuilder, PipelineMetrics, StopHandle};
/// Record types re-exported from [`record`].
pub use record::{Offset, PartitionId, PolledRecord, Record};
/// Watermark types re-exported from [`watermark`].
pub use watermark::{BoundedOutOfOrderness, Watermark, WatermarkGenerator};
/// Windowing types re-exported from [`window`].
pub use window::{
    SessionWindows, SlidingWindows, TumblingWindows, Window, WindowAssigner, WindowResult,
    WindowState, WindowedAggregator,
};
