//! Wire records for the partitioned log.

use augur_telemetry::TraceContext;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Offset of a record within a partition (0-based, dense).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Offset(pub u64);

impl Offset {
    /// The next offset after this one.
    pub fn next(&self) -> Offset {
        Offset(self.0 + 1)
    }
}

impl std::fmt::Display for Offset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Index of a partition within a topic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PartitionId(pub u32);

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A record in the log: routing key, opaque payload, event time.
///
/// Event time is microseconds since the simulation epoch — the time the
/// underlying phenomenon occurred, which is what windows are computed
/// over (processing time is irrelevant to correctness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Routing key; records with equal keys land in the same partition
    /// and are therefore totally ordered relative to one another.
    pub key: u64,
    /// Opaque payload bytes.
    pub payload: Bytes,
    /// Event time, microseconds since the epoch.
    pub event_time_us: u64,
    /// Causal trace context, if the producer is tracing. Propagated
    /// verbatim through the log and the pipeline so downstream spans can
    /// link back to the producing frame. Not part of the wire payload.
    pub trace: Option<TraceContext>,
}

impl Record {
    /// Creates a record. Accepts anything convertible into [`Bytes`]
    /// (`Vec<u8>`, `&'static [u8]`, `Bytes`...).
    pub fn new(key: u64, payload: impl Into<Bytes>, event_time_us: u64) -> Self {
        Record {
            key,
            payload: payload.into(),
            event_time_us,
            trace: None,
        }
    }

    /// Attaches a causal trace context (builder style).
    ///
    /// ```
    /// use augur_stream::Record;
    /// use augur_telemetry::TraceContext;
    ///
    /// let ctx = TraceContext::root(42, 7);
    /// let r = Record::new(7, vec![1u8], 10).with_trace(ctx);
    /// assert_eq!(r.trace, Some(ctx));
    /// ```
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

/// A record returned from a poll, tagged with its offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolledRecord {
    /// Offset within the polled partition.
    pub offset: Offset,
    /// The record.
    pub record: Record,
}

/// FNV-1a hash used for key → partition routing (stable across runs and
/// platforms, unlike `DefaultHasher`).
pub(crate) fn route(key: u64, partitions: u32) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % partitions as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_construction_from_various_payloads() {
        let a = Record::new(1, vec![1u8, 2, 3], 10);
        let b = Record::new(1, Bytes::from_static(b"abc"), 10);
        assert_eq!(a.payload_len(), 3);
        assert_eq!(b.payload_len(), 3);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = route(key, 7);
            assert!(p < 7);
            assert_eq!(p, route(key, 7), "routing must be deterministic");
        }
    }

    #[test]
    fn routing_spreads_keys() {
        let mut counts = [0usize; 8];
        for key in 0..8000u64 {
            counts[route(key, 8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "partition {i} has skewed count {c}"
            );
        }
    }

    #[test]
    fn offset_next_and_display() {
        assert_eq!(Offset(4).next(), Offset(5));
        assert_eq!(Offset(4).to_string(), "@4");
        assert_eq!(PartitionId(2).to_string(), "p2");
    }
}
