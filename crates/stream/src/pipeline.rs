//! The dataflow executor: source → transforms → (windowed) sink.
//!
//! Two execution modes cover the platform's needs:
//!
//! - **Bounded runs** ([`Pipeline::collect`], [`Pipeline::run_windowed`])
//!   process everything currently in the topic and return results plus
//!   [`PipelineMetrics`] — the workhorse of the throughput and timeliness
//!   experiments (E2, E12). Bounded runs support periodic checkpoints and
//!   crash injection so recovery semantics are testable.
//! - **Continuous mode** ([`Pipeline::spawn_continuous`]) runs a source
//!   thread feeding a bounded crossbeam channel (providing backpressure)
//!   into a worker thread, until the returned [`StopHandle`] stops it.
//!
//! Every run is instrumented through `augur-telemetry`: per-stage spans
//! (`span_duration_us{span="pipeline/…", topic}`), record/byte counters,
//! a per-record latency histogram, and a watermark-lateness histogram all
//! land in the builder's [`Registry`] (a private one by default; plug in
//! [`Registry::global`] or a shared one via [`PipelineBuilder::registry`]).
//! Time is read through the pluggable [`Clock`] — [`MonotonicTime`] by
//! default, a [`augur_telemetry::ManualTime`] for deterministic runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use augur_log::{EventLog, Level, LogSite, SymId, Value};
use augur_sample::Sampler;
use augur_telemetry::{
    BlockedSite, Clock, Counter, FlightRecorder, Gauge, Histogram, Lane, LaneBlock, LaneWork,
    Lanes, ManualTime, MonotonicTime, NameId, Registry, TraceContext, Tracer,
};
use crossbeam::channel;

use crate::broker::Broker;
use crate::checkpoint::CheckpointStore;
use crate::error::StreamError;
use crate::record::{PartitionId, Record};
use crate::watermark::{BoundedOutOfOrderness, WatermarkGenerator};
use crate::window::{Aggregation, WindowAssigner, WindowResult, WindowState, WindowedAggregator};

/// Metrics from a pipeline run.
///
/// This is a **view over the registry**: the fields are computed by
/// reading the pipeline's pre-registered counters at run start and end
/// and diffing, so the same numbers are visible to any exporter attached
/// to the registry (cumulatively, across runs) and to the caller (per
/// run, here).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineMetrics {
    /// Records read from the log.
    pub records_in: u64,
    /// Records surviving transforms (or window results emitted).
    pub records_out: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Records dropped as late at the window operator.
    pub late_dropped: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// Median per-record source→sink latency, microseconds (collect only).
    pub p50_latency_us: f64,
    /// 99th-percentile per-record latency, microseconds (collect only).
    pub p99_latency_us: f64,
}

impl PipelineMetrics {
    /// Records per second over the run.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.records_in as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// A shared record decoder: turns opaque log payloads into typed items.
pub type Decoder<T> = Arc<dyn Fn(&Record) -> Option<T> + Send + Sync>;

/// A boxed transform stage (filter/map) over typed items.
pub type Transform<T> = Box<dyn FnMut(T) -> Option<T> + Send>;

/// The results of a bounded windowed run: emitted windows plus metrics.
pub type WindowedRun<Acc> = (Vec<WindowResult<Acc>>, PipelineMetrics);

/// Modeled per-record stage costs for deterministic runs (the workspace
/// convention: 1 work unit ≙ 1 µs of [`ManualTime`]). Used with
/// [`PipelineBuilder::modeled_costs`] so stage spans, busy counters and
/// xray critical paths come out identical on every same-seed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeledCosts {
    /// Modeled microseconds charged per record read from the log.
    pub read_us: u64,
    /// Modeled microseconds charged per record in the transform stage
    /// (bounded [`Pipeline::collect`] runs).
    pub transform_us: u64,
    /// Modeled microseconds charged per record at the window operator
    /// (bounded [`Pipeline::run_windowed`] runs).
    pub window_us: u64,
}

/// Builds a [`Pipeline`]; see the module docs.
pub struct PipelineBuilder<T> {
    broker: Broker,
    topic: String,
    decoder: Decoder<T>,
    transforms: Vec<Transform<T>>,
    watermark_bound_us: u64,
    poll_batch: usize,
    channel_capacity: usize,
    arrival_order: bool,
    registry: Registry,
    clock: Clock,
    modeled: Option<(Arc<ManualTime>, ModeledCosts)>,
    flight: Option<(FlightRecorder, TraceContext)>,
    log: Option<(EventLog, TraceContext)>,
    lanes: Option<Lanes>,
    sampler: Option<Sampler>,
}

impl<T> std::fmt::Debug for PipelineBuilder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("topic", &self.topic)
            .field("transforms", &self.transforms.len())
            .field("watermark_bound_us", &self.watermark_bound_us)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> PipelineBuilder<T> {
    /// Starts a builder reading `topic` from `broker`, decoding payloads
    /// with `decoder` (records failing to decode are skipped — the
    /// "Variety" reality of mixed-schema topics).
    pub fn new(
        broker: Broker,
        topic: &str,
        decoder: impl Fn(&Record) -> Option<T> + Send + Sync + 'static,
    ) -> Self {
        PipelineBuilder {
            broker,
            topic: topic.to_string(),
            decoder: Arc::new(decoder),
            transforms: Vec::new(),
            watermark_bound_us: 1_000_000,
            poll_batch: 1024,
            channel_capacity: 4096,
            arrival_order: false,
            registry: Registry::new(),
            clock: MonotonicTime::shared(),
            modeled: None,
            flight: None,
            log: None,
            lanes: None,
            sampler: None,
        }
    }

    /// Records this pipeline's metrics and spans into `registry` instead
    /// of the builder's private default registry. Pass
    /// [`Registry::global`] (or any shared registry) to make the
    /// pipeline's counters, latency histograms, and stage spans visible
    /// to exporters.
    pub fn registry(mut self, registry: &Registry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Reads time from `clock` instead of the default [`MonotonicTime`].
    /// Plug in an [`augur_telemetry::ManualTime`] to make span durations
    /// and `elapsed_s` deterministic in simulations.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Puts the pipeline in **modeled-cost mode**: the pipeline reads
    /// time from `time` and *advances* it by the per-record stage costs
    /// in `costs` as records flow. Stage spans, the
    /// `pipeline_stage_busy_us_total` counters and any downstream xray
    /// analysis then describe the modeled workload exactly, identically
    /// on every same-seed run — the substrate the sharding-bound
    /// baselines are built on.
    pub fn modeled_costs(mut self, time: &Arc<ManualTime>, costs: ModeledCosts) -> Self {
        self.clock = time.clone();
        self.modeled = Some((Arc::clone(time), costs));
        self
    }

    /// Records causal flight events into `recorder`, parented under
    /// `parent`. Each bounded run emits a `pipeline/run` span with
    /// `pipeline/read` / `pipeline/transform` / `pipeline/window` stage
    /// children; records carrying their own [`TraceContext`] additionally
    /// get per-record events linked to the *producer's* chain, so a slow
    /// frame can be traced through the stream layer. The recorder's hot
    /// path is lock-free; leaving this unset costs nothing.
    pub fn flight(mut self, recorder: &FlightRecorder, parent: TraceContext) -> Self {
        self.flight = Some((recorder.clone(), parent));
        self
    }

    /// Emits structured log records into `log`, correlated under
    /// `parent`: run summaries and checkpoint/resume decisions at INFO,
    /// late-drop and backpressure decisions at WARN (rate-limited per
    /// site, so a storm of drops cannot flood the ring). Pass the same
    /// `parent` as [`PipelineBuilder::flight`] and the log records
    /// carry the *same* span ids as the run's spans — Perfetto shows
    /// them inline via `render_chrome_trace_with_logs`. The emit path
    /// is lock-free; leaving this unset costs nothing.
    pub fn log(mut self, log: &EventLog, parent: TraceContext) -> Self {
        self.log = Some((log.clone(), parent));
        self
    }

    /// Registers this pipeline's continuous-mode threads as worker
    /// lanes in `lanes`: the source pump and the transform worker each
    /// get a deterministic [`augur_telemetry::LaneId`] at spawn, their
    /// spans land on per-lane rings, and time spent blocked on the
    /// bounded channel (send on full, receive on empty) is measured on
    /// the pipeline clock and recorded as `blocked/…` spans plus the
    /// lane busy/blocked counters — the inputs to xray's *measured*
    /// parallel efficiency. Bounded runs are unaffected (they execute
    /// on the caller's thread, the control lane).
    pub fn lanes(mut self, lanes: &Lanes) -> Self {
        self.lanes = Some(lanes.clone());
        self
    }

    /// Applies deterministic head sampling to this pipeline's flight
    /// instrumentation: every trace context the pipeline touches — the
    /// per-run context and each record's producer context — passes
    /// through `sampler` first, so chains the policy rejects record
    /// nothing (the recorder's hot path early-returns on the unsampled
    /// bit). The verdict is a pure function of `(seed, trace_id)`:
    /// identical on every lane and every same-seed run. Structured log
    /// records are deliberately *not* sampled — WARN+ decisions must
    /// always survive (tail retention keeps their traces). Leaving this
    /// unset keeps every trace, byte-identically to before the hook
    /// existed.
    pub fn sample(mut self, sampler: &Sampler) -> Self {
        self.sampler = Some(sampler.clone());
        self
    }

    /// Keeps only items satisfying `pred`.
    pub fn filter(mut self, mut pred: impl FnMut(&T) -> bool + Send + 'static) -> Self {
        self.transforms
            .push(Box::new(move |t| if pred(&t) { Some(t) } else { None }));
        self
    }

    /// Transforms each item.
    pub fn map(mut self, mut f: impl FnMut(T) -> T + Send + 'static) -> Self {
        self.transforms.push(Box::new(move |t| Some(f(t))));
        self
    }

    /// Sets the watermark out-of-orderness bound (default 1 s).
    pub fn watermark_bound_us(mut self, bound: u64) -> Self {
        self.watermark_bound_us = bound;
        self
    }

    /// Sets the channel capacity for continuous mode (default 4096).
    /// Smaller capacities apply backpressure sooner.
    pub fn channel_capacity(mut self, cap: usize) -> Self {
        self.channel_capacity = cap.max(1);
        self
    }

    /// Processes bounded runs in partition **arrival order** instead of
    /// merging by event time (the default). Arrival order is what a
    /// replay of a real log looks like: event times arrive out of order
    /// up to the sources' clock skew, which is exactly the situation
    /// watermarks exist for. Leave off for deterministic event-time
    /// processing; turn on to study lateness behaviour (ablation A1).
    pub fn arrival_order(mut self, on: bool) -> Self {
        self.arrival_order = on;
        self
    }

    /// Finalises the pipeline, registering its metric families up front
    /// so the record hot path touches only pre-registered atomic handles.
    pub fn build(self) -> Pipeline<T> {
        let instruments = Instruments::new(
            &self.registry,
            &self.clock,
            &self.topic,
            self.flight.clone(),
            self.log.clone(),
            self.sampler.clone(),
        );
        Pipeline {
            inner: self,
            instruments,
        }
    }
}

/// Flight-recorder wiring for one pipeline: the recorder, the causal
/// parent every run hangs off, and names interned once at build time so
/// the per-record path never takes the interner lock.
#[derive(Clone)]
struct FlightWire {
    recorder: FlightRecorder,
    parent: TraceContext,
    run_name: NameId,
    read_name: NameId,
    transform_name: NameId,
    window_name: NameId,
    record_name: NameId,
    late_name: NameId,
}

impl FlightWire {
    fn new(recorder: FlightRecorder, parent: TraceContext) -> FlightWire {
        FlightWire {
            run_name: recorder.intern("pipeline/run"),
            read_name: recorder.intern("pipeline/read"),
            transform_name: recorder.intern("pipeline/transform"),
            window_name: recorder.intern("pipeline/window"),
            record_name: recorder.intern("pipeline/record"),
            late_name: recorder.intern("pipeline/late_drop"),
            recorder,
            parent,
        }
    }
}

/// Structured-log wiring for one pipeline: the log, the causal parent,
/// messages and keys interned once at build time, and per-site token
/// buckets so noisy decision paths rate-limit themselves.
struct LogWire {
    log: EventLog,
    parent: TraceContext,
    run_msg: SymId,
    late_msg: SymId,
    checkpoint_msg: SymId,
    resume_msg: SymId,
    backpressure_msg: SymId,
    key_records_in: SymId,
    key_records_out: SymId,
    key_late: SymId,
    key_lag_us: SymId,
    key_key: SymId,
    key_offset: SymId,
    key_topic: SymId,
    key_queued: SymId,
    topic_sym: SymId,
    /// Lifecycle records (run summary, checkpoint, resume): unlimited.
    run_site: LogSite,
    /// Per-record decision records (late drops, backpressure): a storm
    /// must degrade to a rate-limited sample plus a suppressed count.
    drop_site: LogSite,
    backpressure_site: LogSite,
}

impl LogWire {
    fn new(log: EventLog, parent: TraceContext, topic: &str) -> LogWire {
        LogWire {
            run_msg: log.intern("pipeline/run"),
            late_msg: log.intern("pipeline/late_drop"),
            checkpoint_msg: log.intern("pipeline/checkpoint"),
            resume_msg: log.intern("pipeline/resume"),
            backpressure_msg: log.intern("pipeline/backpressure"),
            key_records_in: log.intern("records_in"),
            key_records_out: log.intern("records_out"),
            key_late: log.intern("late_dropped"),
            key_lag_us: log.intern("lag_us"),
            key_key: log.intern("key"),
            key_offset: log.intern("offset"),
            key_topic: log.intern("topic"),
            key_queued: log.intern("queued"),
            topic_sym: log.intern(topic),
            run_site: LogSite::unlimited(),
            drop_site: LogSite::new(16, 100),
            backpressure_site: LogSite::new(4, 10),
            log,
            parent,
        }
    }
}

/// Pre-registered metric handles for one pipeline. The per-record hot
/// path updates these atomics only; the registry maps are never touched
/// after construction.
struct Instruments {
    tracer: Tracer,
    clock: Clock,
    records_in: Counter,
    records_out: Counter,
    late_dropped: Counter,
    record_latency_ns: Histogram,
    lateness_us: Histogram,
    /// Per-stage busy time (`pipeline_stage_busy_us_total{stage,topic}`),
    /// fed by every bounded run whether or not flight recording is on —
    /// the registry-side input to xray's stage utilization model.
    stage_busy_read: Counter,
    stage_busy_transform: Counter,
    stage_busy_window: Counter,
    /// Continuous-mode channel occupancy: enqueue/dequeue counters, the
    /// live depth gauge, and the depth-at-enqueue histogram xray merges
    /// into its queue report.
    enqueued: Counter,
    dequeued: Counter,
    queue_depth: Gauge,
    queue_occupancy: Histogram,
    flight: Option<FlightWire>,
    log: Option<Arc<LogWire>>,
    /// Head-sampling policy every flight-bound trace context passes
    /// through (`None` keeps everything).
    sampler: Option<Sampler>,
    /// Ordinal of the next bounded run; salts the per-run trace context
    /// so consecutive runs get distinct (but deterministic) span ids.
    runs: AtomicU64,
}

impl std::fmt::Debug for Instruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instruments").finish_non_exhaustive()
    }
}

/// Pipeline stages named on the flight ring.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stage {
    Run,
    Read,
    Transform,
    Window,
}

/// Counter readings captured at run start; diffing against them at run
/// end yields the per-run [`PipelineMetrics`] view.
struct RunStart {
    records_in: u64,
    records_out: u64,
    late_dropped: u64,
    start_nanos: u64,
}

impl Instruments {
    fn new(
        registry: &Registry,
        clock: &Clock,
        topic: &str,
        flight: Option<(FlightRecorder, TraceContext)>,
        log: Option<(EventLog, TraceContext)>,
        sampler: Option<Sampler>,
    ) -> Instruments {
        let labels = [("topic", topic)];
        Instruments {
            tracer: Tracer::with_labels(registry, Arc::clone(clock), &labels),
            clock: Arc::clone(clock),
            records_in: registry.counter_labeled("pipeline_records_in_total", &labels),
            records_out: registry.counter_labeled("pipeline_records_out_total", &labels),
            late_dropped: registry.counter_labeled("pipeline_late_dropped_total", &labels),
            record_latency_ns: registry.histogram_labeled("pipeline_record_latency_ns", &labels),
            lateness_us: registry.histogram_labeled("watermark_lateness_us", &labels),
            stage_busy_read: registry.counter_labeled(
                "pipeline_stage_busy_us_total",
                &[("stage", "read"), ("topic", topic)],
            ),
            stage_busy_transform: registry.counter_labeled(
                "pipeline_stage_busy_us_total",
                &[("stage", "transform"), ("topic", topic)],
            ),
            stage_busy_window: registry.counter_labeled(
                "pipeline_stage_busy_us_total",
                &[("stage", "window"), ("topic", topic)],
            ),
            enqueued: registry.counter_labeled("pipeline_enqueued_total", &labels),
            dequeued: registry.counter_labeled("pipeline_dequeued_total", &labels),
            queue_depth: registry.gauge_labeled("pipeline_queue_depth", &labels),
            queue_occupancy: registry.histogram_labeled("pipeline_queue_occupancy", &labels),
            flight: flight.map(|(rec, parent)| FlightWire::new(rec, parent)),
            log: log.map(|(log, parent)| Arc::new(LogWire::new(log, parent, topic))),
            sampler,
            runs: AtomicU64::new(0),
        }
    }

    /// Passes `ctx` through the head-sampling policy (identity when no
    /// sampler is configured).
    fn sample_ctx(&self, ctx: TraceContext) -> TraceContext {
        match &self.sampler {
            Some(s) => s.apply(ctx),
            None => ctx,
        }
    }

    /// Hands out the next bounded-run ordinal; it salts the per-run
    /// trace context so consecutive runs get distinct span ids.
    fn next_run(&self) -> u64 {
        self.runs.fetch_add(1, Ordering::Relaxed)
    }

    /// The flight context for bounded run `ordinal`: a `pipeline/run`
    /// child of the configured parent.
    fn run_ctx(&self, ordinal: u64) -> Option<TraceContext> {
        self.flight
            .as_ref()
            .map(|w| self.sample_ctx(w.parent.child(ordinal ^ 0x70_69_70_65))) // "pipe" salt
    }

    /// The log context for bounded run `ordinal` — derived exactly like
    /// [`Instruments::run_ctx`], so wiring flight and log to the same
    /// parent makes log records share the run span's ids.
    fn log_ctx(&self, ordinal: u64) -> Option<TraceContext> {
        self.log
            .as_ref()
            .map(|w| w.parent.child(ordinal ^ 0x70_69_70_65))
    }

    /// Closes a stage at the current clock: charges the elapsed time to
    /// the stage's `pipeline_stage_busy_us_total` counter (always — the
    /// registry view feeds xray's utilization model even without a
    /// flight recorder) and records the stage span as a child of
    /// `run_ctx` on the flight ring when wired.
    fn flight_stage(&self, run_ctx: Option<TraceContext>, stage: Stage, start_us: u64) {
        let end = self.clock.now_micros();
        let busy = end.saturating_sub(start_us);
        match stage {
            Stage::Run => {}
            Stage::Read => self.stage_busy_read.add(busy),
            Stage::Transform => self.stage_busy_transform.add(busy),
            Stage::Window => self.stage_busy_window.add(busy),
        }
        if let (Some(w), Some(ctx)) = (&self.flight, run_ctx) {
            let (name, label) = match stage {
                Stage::Run => (w.run_name, "pipeline/run"),
                Stage::Read => (w.read_name, "pipeline/read"),
                Stage::Transform => (w.transform_name, "pipeline/transform"),
                Stage::Window => (w.window_name, "pipeline/window"),
            };
            let child = if stage == Stage::Run {
                ctx
            } else {
                ctx.child_named(label)
            };
            w.recorder.record_span(child, name, start_us, busy);
        }
    }

    /// Emits the per-run INFO summary record (no-op when logging is off).
    fn log_run_summary(&self, log_ctx: Option<TraceContext>, metrics: &PipelineMetrics) {
        if let (Some(w), Some(ctx)) = (&self.log, log_ctx) {
            w.log.record(
                &w.run_site,
                Level::Info,
                ctx,
                w.run_msg,
                self.clock.now_micros(),
                &[
                    (w.key_topic, Value::Sym(w.topic_sym)),
                    (w.key_records_in, Value::U64(metrics.records_in)),
                    (w.key_records_out, Value::U64(metrics.records_out)),
                    (w.key_late, Value::U64(metrics.late_dropped)),
                ],
            );
        }
    }

    fn run_start(&self) -> RunStart {
        RunStart {
            records_in: self.records_in.get(),
            records_out: self.records_out.get(),
            late_dropped: self.late_dropped.get(),
            start_nanos: self.clock.now_nanos(),
        }
    }

    /// The per-run metrics view: counters diffed against `start`, elapsed
    /// time from the pipeline clock, latency quantiles from the run-local
    /// histogram (`None` for windowed runs, which do not time individual
    /// records).
    fn per_run(
        &self,
        start: &RunStart,
        bytes_in: u64,
        latency: Option<&Histogram>,
    ) -> PipelineMetrics {
        let elapsed_ns = self.clock.now_nanos().saturating_sub(start.start_nanos);
        PipelineMetrics {
            records_in: self.records_in.get().saturating_sub(start.records_in),
            records_out: self.records_out.get().saturating_sub(start.records_out),
            bytes_in,
            late_dropped: self.late_dropped.get().saturating_sub(start.late_dropped),
            elapsed_s: elapsed_ns as f64 / 1e9,
            p50_latency_us: latency.map_or(0.0, |h| h.quantile(0.50) as f64 / 1_000.0),
            p99_latency_us: latency.map_or(0.0, |h| h.quantile(0.99) as f64 / 1_000.0),
        }
    }
}

/// Lane wiring for one continuous-mode thread: the lane handle, the
/// clock it measures blocked/busy time on, and the pre-interned name
/// its work spans carry.
struct LaneIo {
    lane: Lane,
    clock: Clock,
    work_name: NameId,
}

impl LaneIo {
    fn register(lanes: &Lanes, lane_name: &str, work_name: &str, clock: &Clock) -> LaneIo {
        let lane = lanes.register(lane_name);
        LaneIo {
            work_name: lane.recorder().intern(work_name),
            clock: Arc::clone(clock),
            lane,
        }
    }

    /// A work span under the lane root covering one batch/burst.
    fn work(&self) -> LaneWork {
        self.lane
            .work(&self.clock, self.lane.root(), self.work_name)
    }

    /// A blocked window, parented under `parent` when the wait happens
    /// inside a work span (so xray attributes it to that stage).
    fn block(&self, parent: Option<TraceContext>, site: BlockedSite) -> LaneBlock {
        self.lane
            .block(&self.clock, parent.unwrap_or(self.lane.root()), site)
    }
}

/// A runnable pipeline; create via [`PipelineBuilder`].
#[derive(Debug)]
pub struct Pipeline<T> {
    inner: PipelineBuilder<T>,
    instruments: Instruments,
}

/// Item with routing metadata flowing through a pipeline.
struct Flow<T> {
    key: u64,
    time_us: u64,
    trace: Option<TraceContext>,
    value: T,
}

impl<T: Send + 'static> Pipeline<T> {
    fn read_all(&self) -> Result<Vec<Flow<T>>, StreamError> {
        // Snapshot end offsets, then drain each partition to that point,
        // merging by event time to approximate arrival interleaving.
        let b = &self.inner.broker;
        let parts = b.partition_count(&self.inner.topic)?;
        let mut flows: Vec<Flow<T>> = Vec::new();
        for p in 0..parts {
            let end = b.end_offset(&self.inner.topic, PartitionId(p))?;
            let mut from = 0u64;
            while from < end {
                let batch = b.poll(
                    &self.inner.topic,
                    PartitionId(p),
                    from,
                    self.inner.poll_batch,
                )?;
                let Some(last) = batch.last() else { break };
                from = last.offset.0 + 1;
                for pr in batch {
                    if let Some(v) = (self.inner.decoder)(&pr.record) {
                        flows.push(Flow {
                            key: pr.record.key,
                            time_us: pr.record.event_time_us,
                            // Head sampling decides here, once per record,
                            // so every downstream per-record flight event
                            // inherits the verdict.
                            trace: pr.record.trace.map(|c| self.instruments.sample_ctx(c)),
                            value: v,
                        });
                    }
                }
            }
        }
        if !self.inner.arrival_order {
            flows.sort_by_key(|f| f.time_us);
        }
        Ok(flows)
    }

    /// Processes everything currently in the topic through the
    /// transforms, returning the surviving items and metrics (including
    /// per-record latency percentiles).
    ///
    /// # Errors
    ///
    /// Propagates broker errors ([`StreamError::UnknownTopic`] etc.).
    pub fn collect(&mut self) -> Result<(Vec<T>, PipelineMetrics), StreamError> {
        let run = self.instruments.run_start();
        let ordinal = self.instruments.next_run();
        let run_ctx = self.instruments.run_ctx(ordinal);
        let log_ctx = self.instruments.log_ctx(ordinal);
        let run_t0 = self.instruments.clock.now_micros();
        let stats = self.inner.broker.stats(&self.inner.topic)?;
        let read_t0 = run_t0;
        let flows = {
            let _read = self.instruments.tracer.span("pipeline/read");
            self.read_all()?
        };
        if let Some((time, costs)) = &self.inner.modeled {
            time.advance_micros(costs.read_us.saturating_mul(flows.len() as u64));
        }
        self.instruments.flight_stage(run_ctx, Stage::Read, read_t0);
        self.instruments.records_in.add(flows.len() as u64);
        // Run-local histogram for the per-run quantile view, folded into
        // the shared `pipeline_record_latency_ns` family once at run end
        // (`Histogram::merge`) — one atomic path per record, not two.
        let run_latency = Histogram::new();
        let mut out = Vec::new();
        {
            let _transform = self.instruments.tracer.span("pipeline/transform");
            let transform_t0 = self.instruments.clock.now_micros();
            for flow in flows {
                let t0 = self.instruments.clock.now_nanos();
                if let Some((time, costs)) = &self.inner.modeled {
                    time.advance_micros(costs.transform_us);
                }
                let mut v = Some(flow.value);
                for tr in &mut self.inner.transforms {
                    v = match v {
                        Some(x) => tr(x),
                        None => break,
                    };
                }
                if let Some(x) = v {
                    let dt = self.instruments.clock.now_nanos().saturating_sub(t0);
                    run_latency.record(dt);
                    self.instruments.records_out.inc();
                    // A record carrying its producer's context gets a
                    // per-record span on that chain: the cross-layer link.
                    if let (Some(w), Some(ctx)) = (&self.instruments.flight, flow.trace) {
                        w.recorder.record_span(
                            ctx.child_named("pipeline/record"),
                            w.record_name,
                            t0 / 1_000,
                            dt / 1_000,
                        );
                    }
                    out.push(x);
                }
            }
            self.instruments
                .flight_stage(run_ctx, Stage::Transform, transform_t0);
        }
        self.instruments.record_latency_ns.merge(&run_latency);
        self.instruments.flight_stage(run_ctx, Stage::Run, run_t0);
        let metrics = self
            .instruments
            .per_run(&run, stats.bytes, Some(&run_latency));
        self.instruments.log_run_summary(log_ctx, &metrics);
        Ok((out, metrics))
    }

    /// Runs the full windowed dataflow over everything currently in the
    /// topic: transforms, watermarking, keyed windowed aggregation.
    ///
    /// `checkpoints` optionally saves (offset, operator-state) snapshots
    /// every `interval` input records; `crash_after` aborts the run after
    /// that many records to simulate failure (used by recovery tests —
    /// resume by calling again with `resume: true`, which restores the
    /// latest checkpoint and re-reads only unprocessed input).
    ///
    /// # Errors
    ///
    /// Propagates broker and checkpoint errors.
    #[allow(clippy::too_many_arguments)]
    pub fn run_windowed<W, A>(
        &mut self,
        assigner: W,
        aggregation: A,
        checkpoints: Option<(&CheckpointStore<WindowState<A::Acc>>, usize)>,
        crash_after: Option<usize>,
        resume: bool,
    ) -> Result<WindowedRun<A::Acc>, StreamError>
    where
        T: Clone,
        W: WindowAssigner,
        A: Aggregation<T>,
    {
        let run = self.instruments.run_start();
        let mut agg = WindowedAggregator::new(assigner, aggregation);
        let mut wm = BoundedOutOfOrderness::new(self.inner.watermark_bound_us);
        let mut processed_before: u64 = 0;
        if resume {
            let store = checkpoints
                .as_ref()
                .ok_or(StreamError::InvalidPipelineState(
                    "resume requires a checkpoint store",
                ))?
                .0;
            let cp = store.latest()?;
            agg.restore(cp.state.clone());
            processed_before = *cp
                .offsets
                .get(&(self.inner.topic.clone(), u32::MAX))
                .unwrap_or(&0);
        }
        let ordinal = self.instruments.next_run();
        let run_ctx = self.instruments.run_ctx(ordinal);
        let log_ctx = self.instruments.log_ctx(ordinal);
        // Resume is a recovery *decision*: worth a log record saying
        // where the merged cursor restarted.
        if resume {
            if let (Some(w), Some(ctx)) = (&self.instruments.log, log_ctx) {
                w.log.record(
                    &w.run_site,
                    Level::Info,
                    ctx,
                    w.resume_msg,
                    self.instruments.clock.now_micros(),
                    &[
                        (w.key_topic, Value::Sym(w.topic_sym)),
                        (w.key_offset, Value::U64(processed_before)),
                    ],
                );
            }
        }
        let run_t0 = self.instruments.clock.now_micros();
        // The bounded run reads a time-ordered merge of all partitions;
        // the "offset" we checkpoint is the index into that merged order,
        // stored under partition u32::MAX (single logical cursor).
        let flows = {
            let _read = self.instruments.tracer.span("pipeline/read");
            self.read_all()?
        };
        if let Some((time, costs)) = &self.inner.modeled {
            time.advance_micros(costs.read_us.saturating_mul(flows.len() as u64));
        }
        self.instruments.flight_stage(run_ctx, Stage::Read, run_t0);
        let mut emitted: Vec<WindowResult<A::Acc>> = Vec::new();
        let mut crashed = false;
        {
            let _window = self.instruments.tracer.span("pipeline/window");
            let window_t0 = self.instruments.clock.now_micros();
            for (i, flow) in flows.iter().enumerate() {
                if (i as u64) < processed_before {
                    continue;
                }
                if let Some(limit) = crash_after {
                    if i >= limit {
                        crashed = true;
                        break;
                    }
                }
                self.instruments.records_in.inc();
                if let Some((time, costs)) = &self.inner.modeled {
                    time.advance_micros(costs.window_us);
                }
                let mut v = Some(flow.value.clone());
                for tr in &mut self.inner.transforms {
                    v = match v {
                        Some(x) => tr(x),
                        None => break,
                    };
                }
                if let Some(x) = v {
                    if wm.observe(flow.time_us).is_some() {
                        emitted.extend(agg.advance(wm.current()));
                    }
                    // Lateness relative to the current watermark: 0 for
                    // on-time records, positive for stragglers — the
                    // distribution A1 uses to size the disorder bound.
                    let lateness = wm.current().0.saturating_sub(flow.time_us);
                    self.instruments.lateness_us.record(lateness);
                    let accepted = agg.offer(flow.key, flow.time_us, &x);
                    // Late drops become flight instants on the producer's
                    // chain: the trace shows *which* frame lost data.
                    if let (Some(w), Some(ctx), false) =
                        (&self.instruments.flight, flow.trace, accepted)
                    {
                        w.recorder.record_instant(
                            ctx.child_named("pipeline/late_drop"),
                            w.late_name,
                            self.instruments.clock.now_micros(),
                            lateness,
                        );
                    }
                    // And a WARN record explaining the decision — on the
                    // producer's chain when the record carries one, else
                    // under the run context. Rate-limited: a late storm
                    // degrades to a sample plus a suppressed count.
                    if !accepted {
                        if let Some(w) = &self.instruments.log {
                            let ctx = flow
                                .trace
                                .map(|c| c.child_named("pipeline/late_drop"))
                                .or(log_ctx);
                            if let Some(ctx) = ctx {
                                w.log.record(
                                    &w.drop_site,
                                    Level::Warn,
                                    ctx,
                                    w.late_msg,
                                    self.instruments.clock.now_micros(),
                                    &[
                                        (w.key_lag_us, Value::U64(lateness)),
                                        (w.key_key, Value::U64(flow.key)),
                                    ],
                                );
                            }
                        }
                    }
                }
                if let Some((store, interval)) = &checkpoints {
                    if interval > &0 && (i + 1) % interval == 0 {
                        let mut offsets = std::collections::HashMap::new();
                        offsets.insert((self.inner.topic.clone(), u32::MAX), (i + 1) as u64);
                        store.save(offsets, agg.snapshot());
                        if let (Some(w), Some(ctx)) = (&self.instruments.log, log_ctx) {
                            w.log.record(
                                &w.run_site,
                                Level::Info,
                                ctx,
                                w.checkpoint_msg,
                                self.instruments.clock.now_micros(),
                                &[
                                    (w.key_topic, Value::Sym(w.topic_sym)),
                                    (w.key_offset, Value::U64((i + 1) as u64)),
                                ],
                            );
                        }
                    }
                }
            }
            if !crashed {
                emitted.extend(agg.flush());
            }
            self.instruments
                .flight_stage(run_ctx, Stage::Window, window_t0);
        }
        self.instruments.flight_stage(run_ctx, Stage::Run, run_t0);
        self.instruments.records_out.add(emitted.len() as u64);
        self.instruments.late_dropped.add(agg.late_dropped());
        let stats = self.inner.broker.stats(&self.inner.topic)?;
        let metrics = self.instruments.per_run(&run, stats.bytes, None);
        self.instruments.log_run_summary(log_ctx, &metrics);
        Ok((emitted, metrics))
    }

    /// Spawns continuous execution: a source thread tails the topic and
    /// feeds a bounded channel (backpressure), a worker thread applies
    /// the transforms and calls `sink`.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn spawn_continuous(
        self,
        mut sink: impl FnMut(T) + Send + 'static,
    ) -> Result<StopHandle, StreamError> {
        let parts = self.inner.broker.partition_count(&self.inner.topic)?;
        let stop = Arc::new(AtomicBool::new(false));
        let processed = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel::bounded::<Flow<T>>(self.inner.channel_capacity);
        let broker = self.inner.broker.clone();
        let topic = self.inner.topic.clone();
        let decoder = Arc::clone(&self.inner.decoder);
        let poll_batch = self.inner.poll_batch;
        let stop_src = Arc::clone(&stop);
        let records_in = self.instruments.records_in.clone();
        let records_out = self.instruments.records_out.clone();
        let log_wire = self.instruments.log.as_ref().map(Arc::clone);
        let sampler = self.instruments.sampler.clone();
        let clock = Arc::clone(&self.instruments.clock);
        let channel_capacity = self.inner.channel_capacity;
        // Channel occupancy accounting: an approximate depth counter
        // shared by both threads, exported as a gauge plus an enqueue-time
        // occupancy histogram — the live inputs to xray's queue report.
        let depth = Arc::new(AtomicU64::new(0));
        let depth_src = Arc::clone(&depth);
        let depth_worker = Arc::clone(&depth);
        let enqueued = self.instruments.enqueued.clone();
        let dequeued = self.instruments.dequeued.clone();
        let queue_depth_src = self.instruments.queue_depth.clone();
        let queue_depth_worker = self.instruments.queue_depth.clone();
        let queue_occupancy = self.instruments.queue_occupancy.clone();
        // Lane registration happens here, on the *spawning* thread, so
        // lane ids are assigned in program order (pump then worker) no
        // matter how the OS schedules the threads.
        let pump_io = self.inner.lanes.as_ref().map(|l| {
            LaneIo::register(
                l,
                &format!("{}/pump", self.inner.topic),
                "pipeline/pump",
                &clock,
            )
        });
        let worker_io = self.inner.lanes.as_ref().map(|l| {
            LaneIo::register(
                l,
                &format!("{}/worker", self.inner.topic),
                "pipeline/process",
                &clock,
            )
        });
        let source = std::thread::spawn(move || {
            let mut offsets = vec![0u64; parts as usize];
            while !stop_src.load(Ordering::Acquire) {
                let mut idle = true;
                for p in 0..parts {
                    let batch = match broker.poll(
                        &topic,
                        PartitionId(p),
                        offsets[p as usize],
                        poll_batch,
                    ) {
                        Ok(b) => b,
                        Err(_) => return,
                    };
                    if let Some(last) = batch.last() {
                        offsets[p as usize] = last.offset.0 + 1;
                        idle = false;
                    }
                    // One pump work span per non-empty batch; send waits
                    // nest under it so xray charges them to the pump.
                    let batch_work = if batch.is_empty() {
                        None
                    } else {
                        pump_io.as_ref().map(LaneIo::work)
                    };
                    for pr in batch {
                        records_in.inc();
                        if let Some(v) = decoder(&pr.record) {
                            let flow = Flow {
                                key: pr.record.key,
                                time_us: pr.record.event_time_us,
                                trace: pr
                                    .record
                                    .trace
                                    .map(|c| sampler.as_ref().map_or(c, |s| s.apply(c))),
                                value: v,
                            };
                            // Try fast first: a full channel is the
                            // backpressure *decision*, logged (rate-
                            // limited) before spinning on the non-blocking
                            // send that applies it. The pump never takes a
                            // blocking call: backpressure is a yield loop
                            // that keeps honouring the stop flag.
                            match tx.try_send(flow) {
                                Ok(()) => {
                                    enqueued.inc();
                                    let d = depth_src.fetch_add(1, Ordering::Relaxed) + 1;
                                    queue_occupancy.record(d);
                                    queue_depth_src.set_u64(d);
                                }
                                Err(channel::TrySendError::Full(full)) => {
                                    if let Some(w) = &log_wire {
                                        w.log.record(
                                            &w.backpressure_site,
                                            Level::Warn,
                                            w.parent.child_named("pipeline/backpressure"),
                                            w.backpressure_msg,
                                            clock.now_micros(),
                                            &[
                                                (w.key_topic, Value::Sym(w.topic_sym)),
                                                (w.key_queued, Value::U64(channel_capacity as u64)),
                                            ],
                                        );
                                    }
                                    // The spin itself is the measured
                                    // blocked window: it ends the moment
                                    // the send succeeds (or the pump
                                    // gives up on stop/disconnect).
                                    let _blocked = pump_io.as_ref().map(|io| {
                                        io.block(
                                            batch_work.as_ref().map(LaneWork::ctx),
                                            BlockedSite::ChannelSend,
                                        )
                                    });
                                    let mut flow = full;
                                    loop {
                                        if stop_src.load(Ordering::Acquire) {
                                            return;
                                        }
                                        match tx.try_send(flow) {
                                            Ok(()) => {
                                                enqueued.inc();
                                                let d =
                                                    depth_src.fetch_add(1, Ordering::Relaxed) + 1;
                                                queue_occupancy.record(d);
                                                queue_depth_src.set_u64(d);
                                                break;
                                            }
                                            Err(channel::TrySendError::Full(f)) => {
                                                flow = f;
                                                std::thread::yield_now();
                                            }
                                            Err(channel::TrySendError::Disconnected(_)) => return,
                                        }
                                    }
                                }
                                Err(channel::TrySendError::Disconnected(_)) => return,
                            }
                        }
                    }
                }
                if idle {
                    // An empty poll round parks with a scheduler yield —
                    // not a sleep — so the pump stays blocking-free and
                    // reacts to new records and to stop immediately.
                    std::thread::yield_now();
                }
            }
        });
        let mut transforms = self.inner.transforms;
        let stop_worker = Arc::clone(&stop);
        let processed_worker = Arc::clone(&processed);
        let worker = std::thread::spawn(move || {
            // The worker alternates between a busy burst (one work span
            // covering consecutive records) and a blocked window on the
            // empty channel — together they cover the lane's timeline.
            let mut burst: Option<LaneWork> = None;
            let mut waiting: Option<LaneBlock> = None;
            loop {
                match rx.try_recv() {
                    Ok(flow) => {
                        waiting = None;
                        if burst.is_none() {
                            burst = worker_io.as_ref().map(LaneIo::work);
                        }
                        dequeued.inc();
                        let d = depth_worker
                            .fetch_sub(1, Ordering::Relaxed)
                            .saturating_sub(1);
                        queue_depth_worker.set_u64(d);
                        let mut v = Some(flow.value);
                        for tr in &mut transforms {
                            v = match v {
                                Some(x) => tr(x),
                                None => break,
                            };
                        }
                        if let Some(x) = v {
                            sink(x);
                            records_out.inc();
                            processed_worker.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(channel::TryRecvError::Empty) => {
                        burst = None;
                        // Drained: stop only once the queue is empty, so a
                        // stop signal never abandons accepted records.
                        if stop_worker.load(Ordering::Acquire) {
                            break;
                        }
                        if waiting.is_none() {
                            waiting = worker_io
                                .as_ref()
                                .map(|io| io.block(None, BlockedSite::ChannelRecv));
                        }
                        std::thread::yield_now();
                    }
                    Err(channel::TryRecvError::Disconnected) => break,
                }
            }
            drop(waiting);
            drop(burst);
        });
        Ok(StopHandle {
            stop,
            processed,
            handles: vec![source, worker],
        })
    }
}

/// Controls a continuously running pipeline.
#[derive(Debug)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    processed: Arc<AtomicU64>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl StopHandle {
    /// Records processed by the worker so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Signals stop and joins the threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for StopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{CountAggregation, TumblingWindows};
    use std::time::Instant;

    fn setup(partitions: u32, n: u64) -> Broker {
        let b = Broker::new();
        b.create_topic("t", partitions).unwrap();
        b.append_batch(
            "t",
            (0..n).map(|i| Record::new(i % 10, i.to_le_bytes().to_vec(), i * 1_000)),
        )
        .unwrap();
        b
    }

    fn decode(r: &Record) -> Option<u64> {
        r.payload.as_ref().try_into().ok().map(u64::from_le_bytes)
    }

    #[test]
    fn collect_applies_transforms() {
        let b = setup(4, 100);
        let mut p = PipelineBuilder::new(b, "t", decode)
            .filter(|v| v % 2 == 0)
            .map(|v| v * 10)
            .build();
        let (items, metrics) = p.collect().unwrap();
        assert_eq!(items.len(), 50);
        assert!(items.iter().all(|v| v % 20 == 0));
        assert_eq!(metrics.records_in, 100);
        assert_eq!(metrics.records_out, 50);
        assert!(metrics.throughput_rps() > 0.0);
    }

    #[test]
    fn metrics_are_a_registry_view_and_deterministic_under_manual_time() {
        use augur_telemetry::ManualTime;
        let b = setup(2, 60);
        let reg = Registry::new();
        let clock = ManualTime::shared();
        let mut p = PipelineBuilder::new(b, "t", decode)
            .filter(|v| v % 3 == 0)
            .registry(&reg)
            .clock(clock.clone())
            .build();
        let (items, metrics) = p.collect().unwrap();
        assert_eq!(items.len(), 20);
        // The clock never advanced: a fully deterministic zero-duration run.
        assert_eq!(metrics.elapsed_s, 0.0);
        assert_eq!(metrics.p50_latency_us, 0.0);
        // The same numbers are visible through the registry.
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(counter("pipeline_records_in_total"), Some(60));
        assert_eq!(counter("pipeline_records_out_total"), Some(20));
        assert!(snap
            .counters
            .iter()
            .all(|c| c.labels.contains(&("topic".into(), "t".into()))));
        // Stage spans were recorded (read + transform).
        let spans: Vec<&str> = snap
            .histograms
            .iter()
            .filter(|h| h.name == augur_telemetry::SPAN_METRIC)
            .flat_map(|h| &h.labels)
            .filter(|(k, _)| k == augur_telemetry::SPAN_LABEL)
            .map(|(_, v)| v.as_str())
            .collect();
        assert!(spans.contains(&"pipeline/read"));
        assert!(spans.contains(&"pipeline/transform"));
        // A second run diffs cleanly: per-run metrics, cumulative registry.
        let (_, m2) = p.collect().unwrap();
        assert_eq!(m2.records_in, 60);
        let snap2 = reg.snapshot();
        assert_eq!(
            snap2
                .counters
                .iter()
                .find(|c| c.name == "pipeline_records_in_total")
                .map(|c| c.value),
            Some(120)
        );
    }

    #[test]
    fn head_sampling_mutes_rejected_producer_chains() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        // Each record rides its own producer root: distinct trace ids.
        for i in 0..64u64 {
            b.append(
                "t",
                Record::new(i, i.to_le_bytes().to_vec(), i * 1_000)
                    .with_trace(TraceContext::root(11, i)),
            )
            .unwrap();
        }
        let sampler = Sampler::new(11, 4);
        let rec = FlightRecorder::new(1 << 12);
        let parent = TraceContext::root(11, 0xFFFF);
        let mut p = PipelineBuilder::new(b, "t", decode)
            .flight(&rec, parent)
            .sample(&sampler)
            .build();
        let (items, _) = p.collect().unwrap();
        assert_eq!(items.len(), 64, "sampling drops telemetry, never data");
        let events = rec.drain();
        let record_traces: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name == "pipeline/record")
            .map(|e| e.trace_id)
            .collect();
        let expected: std::collections::BTreeSet<u64> = (0..64u64)
            .map(|i| TraceContext::root(11, i).trace_id)
            .filter(|&id| sampler.admits(id))
            .collect();
        assert_eq!(
            record_traces, expected,
            "exactly the admitted chains record per-record spans"
        );
        assert!(!expected.is_empty() && expected.len() < 64, "1/4 sampling");
        // The run spans follow the parent chain's own verdict.
        let run_spans = events.iter().filter(|e| e.name == "pipeline/run").count();
        if sampler.admits(parent.trace_id) {
            assert_eq!(run_spans, 1);
        } else {
            assert_eq!(run_spans, 0);
        }
    }

    #[test]
    fn windowed_run_records_lateness_distribution() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        for t in [10_000u64, 20_000, 5_000, 30_000, 6_000] {
            b.append("t", Record::new(1, t.to_le_bytes().to_vec(), t))
                .unwrap();
        }
        let reg = Registry::new();
        let mut p = PipelineBuilder::new(b, "t", decode)
            .watermark_bound_us(0)
            .arrival_order(true)
            .registry(&reg)
            .build();
        let (_, m) = p
            .run_windowed(
                TumblingWindows::new(8_000),
                CountAggregation,
                None,
                None,
                false,
            )
            .unwrap();
        assert_eq!(m.late_dropped, 2);
        let snap = reg.snapshot();
        let lateness = snap
            .histograms
            .iter()
            .find(|h| h.name == "watermark_lateness_us")
            .expect("lateness histogram registered");
        assert_eq!(lateness.stats.count, 5);
        // The last straggler (6 ms) arrives behind the 30 ms watermark:
        // max lateness is 30_000 - 6_000 = 24_000 µs.
        assert_eq!(lateness.stats.max, 24_000);
        assert_eq!(
            snap.counters
                .iter()
                .find(|c| c.name == "pipeline_late_dropped_total")
                .map(|c| c.value),
            Some(2)
        );
    }

    #[test]
    fn flight_recording_links_stages_and_records_causally() {
        use augur_telemetry::{FlightEventKind, FlightRecorder, ManualTime};
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        // Producer side: every record carries a root context derived from
        // (seed, key) — the deterministic cross-layer link.
        for i in 0..4u64 {
            b.append(
                "t",
                Record::new(i, i.to_le_bytes().to_vec(), i * 1_000)
                    .with_trace(TraceContext::root(99, i)),
            )
            .unwrap();
        }
        let recorder = FlightRecorder::new(64);
        let parent = TraceContext::root(99, u64::MAX);
        let clock = ManualTime::shared();
        let mut p = PipelineBuilder::new(b, "t", decode)
            .clock(clock.clone())
            .flight(&recorder, parent)
            .build();
        p.collect().unwrap();
        let events = recorder.drain();
        // Stage spans: run + read + transform, all in the parent's trace.
        let stage_names: Vec<&str> = events
            .iter()
            .filter(|e| e.trace_id == parent.trace_id)
            .map(|e| e.name.as_str())
            .collect();
        assert!(stage_names.contains(&"pipeline/run"));
        assert!(stage_names.contains(&"pipeline/read"));
        assert!(stage_names.contains(&"pipeline/transform"));
        // Per-record spans live on each *producer's* chain.
        let record_events: Vec<_> = events
            .iter()
            .filter(|e| e.name == "pipeline/record")
            .collect();
        assert_eq!(record_events.len(), 4);
        for (i, e) in record_events.iter().enumerate() {
            let root = TraceContext::root(99, i as u64);
            assert_eq!(e.trace_id, root.trace_id);
            assert_eq!(e.parent_span_id, root.span_id);
            assert_eq!(e.kind, FlightEventKind::Span);
        }
        assert_eq!(recorder.dropped_events(), 0);
        // Two runs produce distinct run span ids (salted by ordinal).
        p.collect().unwrap();
        let run_ids: Vec<u64> = recorder
            .drain()
            .iter()
            .chain(events.iter())
            .filter(|e| e.name == "pipeline/run")
            .map(|e| e.span_id)
            .collect();
        assert_eq!(run_ids.len(), 2);
        assert_ne!(run_ids[0], run_ids[1]);
    }

    #[test]
    fn late_drops_emit_flight_instants_on_the_producer_chain() {
        use augur_telemetry::FlightRecorder;
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        for t in [10_000u64, 20_000, 5_000] {
            b.append(
                "t",
                Record::new(1, t.to_le_bytes().to_vec(), t).with_trace(TraceContext::root(7, t)),
            )
            .unwrap();
        }
        let recorder = FlightRecorder::new(64);
        let mut p = PipelineBuilder::new(b, "t", decode)
            .watermark_bound_us(0)
            .arrival_order(true)
            .flight(&recorder, TraceContext::root(7, u64::MAX))
            .build();
        let (_, m) = p
            .run_windowed(
                TumblingWindows::new(8_000),
                CountAggregation,
                None,
                None,
                false,
            )
            .unwrap();
        assert_eq!(m.late_dropped, 1);
        let events = recorder.drain();
        let late: Vec<_> = events
            .iter()
            .filter(|e| e.name == "pipeline/late_drop")
            .collect();
        assert_eq!(late.len(), 1);
        // The instant sits on the chain of the frame that lost data.
        let victim = TraceContext::root(7, 5_000);
        assert_eq!(late[0].trace_id, victim.trace_id);
        assert_eq!(late[0].arg, 20_000 - 5_000, "arg carries the lateness");
    }

    #[test]
    fn log_records_explain_run_checkpoint_resume_and_late_drops() {
        use augur_telemetry::ManualTime;
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        for t in [10_000u64, 20_000, 5_000, 30_000] {
            b.append(
                "t",
                Record::new(1, t.to_le_bytes().to_vec(), t).with_trace(TraceContext::root(7, t)),
            )
            .unwrap();
        }
        let log = EventLog::new(64);
        let parent = TraceContext::root(7, u64::MAX);
        let store: CheckpointStore<WindowState<u64>> = CheckpointStore::new(4);
        let mut p = PipelineBuilder::new(b.clone(), "t", decode)
            .watermark_bound_us(0)
            .arrival_order(true)
            .clock(ManualTime::shared())
            .log(&log, parent)
            .build();
        // Crash after 3 records (checkpointing every 2), then resume.
        p.run_windowed(
            TumblingWindows::new(8_000),
            CountAggregation,
            Some((&store, 2)),
            Some(3),
            false,
        )
        .unwrap();
        p.run_windowed(
            TumblingWindows::new(8_000),
            CountAggregation,
            Some((&store, 2)),
            None,
            true,
        )
        .unwrap();
        let records = log.drain();
        let by_msg = |msg: &str| -> Vec<&augur_log::LogRecord> {
            records.iter().filter(|r| r.msg == msg).collect()
        };
        // One run summary per bounded run, under the pipeline parent.
        let runs = by_msg("pipeline/run");
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.trace_id == parent.trace_id));
        assert_ne!(runs[0].span_id, runs[1].span_id, "ordinal-salted");
        assert_eq!(runs[0].level, Level::Info);
        // Checkpoint at offset 2 (run 1), resume from it (run 2).
        let cp = by_msg("pipeline/checkpoint");
        assert!(!cp.is_empty());
        assert!(cp[0]
            .fields
            .iter()
            .any(|(k, v)| k == "offset" && *v == augur_log::FieldValue::U64(2)));
        let resume = by_msg("pipeline/resume");
        assert_eq!(resume.len(), 1);
        assert!(resume[0]
            .fields
            .iter()
            .any(|(k, v)| k == "offset" && *v == augur_log::FieldValue::U64(2)));
        // The late drop (5k behind the 20k watermark) is a WARN on the
        // *producer's* chain with the lag spelled out. It appears twice:
        // once pre-crash, once on replay after resume (the restored
        // aggregator remembers its emitted watermark and re-drops it).
        let late = by_msg("pipeline/late_drop");
        assert_eq!(late.len(), 2);
        for r in &late {
            assert_eq!(r.level, Level::Warn);
            assert_eq!(r.trace_id, TraceContext::root(7, 5_000).trace_id);
        }
        assert!(late[0]
            .fields
            .iter()
            .any(|(k, v)| k == "lag_us" && *v == augur_log::FieldValue::U64(15_000)));
        assert_eq!(log.dropped_records(), 0);
    }

    #[test]
    fn undecodable_records_are_skipped() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        b.append("t", Record::new(1, vec![1, 2, 3], 0)).unwrap(); // 3 bytes: bad
        b.append("t", Record::new(1, 42u64.to_le_bytes().to_vec(), 1))
            .unwrap();
        let mut p = PipelineBuilder::new(b, "t", decode).build();
        let (items, _) = p.collect().unwrap();
        assert_eq!(items, vec![42]);
    }

    #[test]
    fn run_windowed_counts_per_key_and_window() {
        let b = setup(2, 100); // keys 0..10, times 0..100ms
        let mut p = PipelineBuilder::new(b, "t", decode)
            .watermark_bound_us(0)
            .build();
        let (results, metrics) = p
            .run_windowed(
                TumblingWindows::new(50_000), // 50 ms windows
                CountAggregation,
                None,
                None,
                false,
            )
            .unwrap();
        assert_eq!(metrics.records_in, 100);
        // 2 windows × 10 keys.
        assert_eq!(results.len(), 20);
        let total: u64 = results.iter().map(|r| r.value).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn checkpoint_crash_resume_is_exactly_once() {
        let b = setup(2, 200);
        let store: CheckpointStore<WindowState<u64>> = CheckpointStore::new(4);

        // Reference run without failure.
        let mut p_ref = PipelineBuilder::new(b.clone(), "t", decode)
            .watermark_bound_us(0)
            .build();
        let (mut want, _) = p_ref
            .run_windowed(
                TumblingWindows::new(20_000),
                CountAggregation,
                None,
                None,
                false,
            )
            .unwrap();

        // Crashing run: checkpoint every 50, crash at 120.
        let mut p1 = PipelineBuilder::new(b.clone(), "t", decode)
            .watermark_bound_us(0)
            .build();
        let (partial, _) = p1
            .run_windowed(
                TumblingWindows::new(20_000),
                CountAggregation,
                Some((&store, 50)),
                Some(120),
                false,
            )
            .unwrap();
        // Resume from the latest checkpoint (at 100).
        let mut p2 = PipelineBuilder::new(b, "t", decode)
            .watermark_bound_us(0)
            .build();
        let (rest, _) = p2
            .run_windowed(
                TumblingWindows::new(20_000),
                CountAggregation,
                Some((&store, 50)),
                None,
                true,
            )
            .unwrap();
        // Results emitted before the crash (from processed prefix) plus
        // post-recovery results must equal the reference.
        let mut got = partial;
        got.extend(rest);
        // Deduplicate: windows emitted pre-crash may be re-emitted after
        // restore if the checkpoint predates their emission; exactly-once
        // is per *window*, so compare as sets keyed by (key, window).
        let canon = |v: &mut Vec<crate::window::WindowResult<u64>>| {
            v.sort_by_key(|r| (r.window.start_us, r.window.end_us, r.key));
            v.dedup_by_key(|r| (r.window.start_us, r.window.end_us, r.key));
        };
        canon(&mut got);
        canon(&mut want);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.key, w.key);
            assert_eq!(g.window, w.window);
            assert_eq!(g.value, w.value, "count mismatch for {:?}", g.window);
        }
    }

    #[test]
    fn resume_without_store_errors() {
        let b = setup(1, 10);
        let mut p = PipelineBuilder::new(b, "t", decode).build();
        let r = p.run_windowed(
            TumblingWindows::new(1_000),
            CountAggregation,
            None,
            None,
            true,
        );
        assert!(matches!(r, Err(StreamError::InvalidPipelineState(_))));
    }

    #[test]
    fn arrival_order_exposes_lateness_event_time_merge_hides_it() {
        // One partition, event times deliberately out of arrival order.
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        for t in [10_000u64, 20_000, 5_000, 30_000, 6_000] {
            b.append("t", Record::new(1, t.to_le_bytes().to_vec(), t))
                .unwrap();
        }
        let windowed = |arrival: bool, bound: u64| {
            let mut p = PipelineBuilder::new(b.clone(), "t", decode)
                .watermark_bound_us(bound)
                .arrival_order(arrival)
                .build();
            p.run_windowed(
                TumblingWindows::new(8_000),
                CountAggregation,
                None,
                None,
                false,
            )
            .unwrap()
        };
        // Event-time merge: nothing is late even with a zero bound.
        let (_, m) = windowed(false, 0);
        assert_eq!(m.late_dropped, 0);
        // Arrival order with zero bound: 5k and 6k arrive behind the
        // watermark (20k) and their window [0, 8k) has fired.
        let (_, m) = windowed(true, 0);
        assert_eq!(m.late_dropped, 2);
        // A bound covering the full disorder saves them: the last record
        // (30 ms) must not push the watermark past the straggler's
        // window end (8 ms), so bound > 22 ms.
        let (_, m) = windowed(true, 25_000);
        assert_eq!(m.late_dropped, 0);
    }

    #[test]
    fn continuous_mode_processes_appends_until_stopped() {
        let b = Broker::new();
        b.create_topic("live", 2).unwrap();
        let collected = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink_ref = Arc::clone(&collected);
        let p = PipelineBuilder::new(b.clone(), "live", decode)
            .filter(|v| *v < 1_000)
            .build();
        let handle = p
            .spawn_continuous(move |v| sink_ref.lock().push(v))
            .unwrap();
        for i in 0..500u64 {
            b.append("live", Record::new(i, i.to_le_bytes().to_vec(), i))
                .unwrap();
        }
        // Wait for drain.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while handle.processed() < 500 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
        let got = collected.lock();
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn continuous_mode_registers_lanes_and_measures_contention() {
        let b = Broker::new();
        b.create_topic("live", 1).unwrap();
        b.append_batch(
            "live",
            (0..100u64).map(|i| Record::new(i, i.to_le_bytes().to_vec(), i)),
        )
        .unwrap();
        let lanes = Lanes::new(5, 4096);
        let p = PipelineBuilder::new(b, "live", decode)
            .channel_capacity(2)
            .lanes(&lanes)
            .build();
        // A slow sink keeps the 2-slot channel full, so the pump must
        // spend measurable time blocked on send.
        let handle = p
            .spawn_continuous(|_| std::thread::sleep(std::time::Duration::from_micros(300)))
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while handle.processed() < 100 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
        assert_eq!(lanes.len(), 2, "pump + worker lanes");
        let merged = lanes.merge_drains();
        assert_eq!(merged.lanes[0].name, "live/pump");
        assert_eq!(merged.lanes[1].name, "live/worker");
        assert!(merged.events.iter().all(|e| e.lane.is_worker()));
        let names: std::collections::HashSet<&str> =
            merged.events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains("pipeline/pump"));
        assert!(names.contains("pipeline/process"));
        assert!(
            names.contains("blocked/channel_send"),
            "pump must record send backpressure: {names:?}"
        );
        assert!(merged.lanes[0].blocked_us > 0);
        assert!(merged.lanes[1].busy_us > 0);
        for l in &merged.lanes {
            assert_eq!(
                l.drained + l.dropped,
                l.total,
                "lane {} loss accounting",
                l.id
            );
        }
    }

    #[test]
    fn backpressure_small_channel_still_delivers_everything() {
        let b = Broker::new();
        b.create_topic("bp", 1).unwrap();
        b.append_batch(
            "bp",
            (0..2_000u64).map(|i| Record::new(i, i.to_le_bytes().to_vec(), i)),
        )
        .unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let p = PipelineBuilder::new(b, "bp", decode)
            .channel_capacity(8)
            .build();
        let handle = p
            .spawn_continuous(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while count.load(Ordering::Relaxed) < 2_000 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
        assert_eq!(count.load(Ordering::Relaxed), 2_000);
    }
}
