//! The in-process partitioned-log broker.
//!
//! Semantics mirror a minimal Kafka: topics are split into partitions,
//! each an append-only log with dense offsets; producers route records by
//! key; consumer groups own disjoint partition sets and commit offsets.
//! Everything is behind [`parking_lot`] locks so producers and consumers
//! on different threads interleave safely — the pipeline executor relies
//! on this.

use std::collections::HashMap;
use std::sync::Arc;

use augur_log::{EventLog, Level, LogSite};
use augur_telemetry::{BlockedSite, Clock, Lane, Registry, TraceContext};
use parking_lot::{Mutex, RwLock};

use crate::error::StreamError;
use crate::record::{route, Offset, PartitionId, PolledRecord, Record};

#[derive(Debug, Default)]
struct Partition {
    records: Vec<Record>,
}

#[derive(Debug)]
struct Topic {
    partitions: Vec<RwLock<Partition>>,
}

/// Per-topic statistics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicStats {
    /// Partition count.
    pub partitions: u32,
    /// Total records across partitions.
    pub records: u64,
    /// Total payload bytes across partitions.
    pub bytes: u64,
}

/// The broker: a set of named topics. Cheap to clone (shared state).
///
/// # Example
///
/// ```
/// use augur_stream::{Broker, Record};
/// let broker = Broker::new();
/// broker.create_topic("t", 2)?;
/// let (partition, offset) = broker.append("t", Record::new(1, b"x".as_ref(), 5))?;
/// assert_eq!(offset.0, 0);
/// let _ = partition;
/// # Ok::<(), augur_stream::StreamError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Broker {
    inner: Arc<RwLock<HashMap<String, Arc<Topic>>>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Creates a topic with `partitions` partitions.
    ///
    /// # Errors
    ///
    /// [`StreamError::TopicExists`] if the name is taken,
    /// [`StreamError::InvalidPartitionCount`] if `partitions == 0`.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<(), StreamError> {
        if partitions == 0 {
            return Err(StreamError::InvalidPartitionCount(partitions));
        }
        let mut topics = self.inner.write();
        if topics.contains_key(name) {
            return Err(StreamError::TopicExists(name.to_string()));
        }
        topics.insert(
            name.to_string(),
            Arc::new(Topic {
                partitions: (0..partitions)
                    .map(|_| RwLock::new(Partition::default()))
                    .collect(),
            }),
        );
        Ok(())
    }

    fn topic(&self, name: &str) -> Result<Arc<Topic>, StreamError> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StreamError::UnknownTopic(name.to_string()))
    }

    /// The partition a key routes to.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn partition_for(&self, topic: &str, key: u64) -> Result<PartitionId, StreamError> {
        let t = self.topic(topic)?;
        Ok(PartitionId(route(key, t.partitions.len() as u32)))
    }

    /// Appends a record, routing by key. Returns the partition and the
    /// assigned offset.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn append(
        &self,
        topic: &str,
        record: Record,
    ) -> Result<(PartitionId, Offset), StreamError> {
        let t = self.topic(topic)?;
        let pid = route(record.key, t.partitions.len() as u32);
        let mut p = t.partitions[pid as usize].write();
        let offset = Offset(p.records.len() as u64);
        p.records.push(record);
        Ok((PartitionId(pid), offset))
    }

    /// Appends a batch of records (single lock acquisition per partition
    /// group), returning the count appended.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn append_batch(
        &self,
        topic: &str,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<usize, StreamError> {
        let t = self.topic(topic)?;
        let n_parts = t.partitions.len() as u32;
        let mut grouped: HashMap<u32, Vec<Record>> = HashMap::new();
        let mut n = 0usize;
        for r in records {
            grouped.entry(route(r.key, n_parts)).or_default().push(r);
            n += 1;
        }
        for (pid, batch) in grouped {
            let mut p = t.partitions[pid as usize].write();
            p.records.extend(batch);
        }
        Ok(n)
    }

    /// Reads up to `max` records from `partition` starting at `from`.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] / [`StreamError::UnknownPartition`].
    pub fn poll(
        &self,
        topic: &str,
        partition: PartitionId,
        from: u64,
        max: usize,
    ) -> Result<Vec<PolledRecord>, StreamError> {
        let t = self.topic(topic)?;
        let p = t
            .partitions
            .get(partition.0 as usize)
            .ok_or(StreamError::UnknownPartition {
                topic: topic.to_string(),
                partition: partition.0,
            })?
            .read();
        let start = (from as usize).min(p.records.len());
        let end = (start + max).min(p.records.len());
        Ok(p.records[start..end]
            .iter()
            .enumerate()
            .map(|(i, r)| PolledRecord {
                offset: Offset((start + i) as u64),
                record: r.clone(),
            })
            .collect())
    }

    /// The end offset (next offset to be written) of a partition.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] / [`StreamError::UnknownPartition`].
    pub fn end_offset(&self, topic: &str, partition: PartitionId) -> Result<u64, StreamError> {
        let t = self.topic(topic)?;
        let p = t
            .partitions
            .get(partition.0 as usize)
            .ok_or(StreamError::UnknownPartition {
                topic: topic.to_string(),
                partition: partition.0,
            })?
            .read();
        Ok(p.records.len() as u64)
    }

    /// Number of partitions in a topic.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn partition_count(&self, topic: &str) -> Result<u32, StreamError> {
        Ok(self.topic(topic)?.partitions.len() as u32)
    }

    /// Statistics snapshot for a topic.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn stats(&self, topic: &str) -> Result<TopicStats, StreamError> {
        let t = self.topic(topic)?;
        let mut records = 0u64;
        let mut bytes = 0u64;
        for p in &t.partitions {
            let p = p.read();
            records += p.records.len() as u64;
            bytes += p
                .records
                .iter()
                .map(|r| r.payload.len() as u64)
                .sum::<u64>();
        }
        Ok(TopicStats {
            partitions: t.partitions.len() as u32,
            records,
            bytes,
        })
    }

    /// Topic names currently registered.
    pub fn topics(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// A consumer group: owns committed offsets per (topic, partition) and
/// assigns partitions to members round-robin.
#[derive(Debug)]
pub struct ConsumerGroup {
    name: String,
    broker: Broker,
    committed: Mutex<HashMap<(String, u32), u64>>,
    members: Mutex<Vec<String>>,
    telemetry: Mutex<Option<Registry>>,
    log: Mutex<Option<GroupLog>>,
}

/// Structured-log wiring for a consumer group: pre-interned symbols plus
/// an unlimited site (membership changes are rare lifecycle events).
struct GroupLog {
    log: EventLog,
    ctx: TraceContext,
    clock: Clock,
    rebalance_msg: augur_log::SymId,
    key_group: augur_log::SymId,
    key_member: augur_log::SymId,
    key_members: augur_log::SymId,
    group_sym: augur_log::SymId,
    site: LogSite,
}

impl std::fmt::Debug for GroupLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupLog").finish_non_exhaustive()
    }
}

impl ConsumerGroup {
    /// Creates a group against a broker.
    pub fn new(name: &str, broker: Broker) -> Self {
        ConsumerGroup {
            name: name.to_string(),
            broker,
            committed: Mutex::new(HashMap::new()),
            members: Mutex::new(Vec::new()),
            telemetry: Mutex::new(None),
            log: Mutex::new(None),
        }
    }

    /// Attaches a metric registry: every subsequent [`ConsumerGroup::lag`]
    /// call publishes its result to the gauge
    /// `consumer_lag_records{group, topic}`.
    pub fn instrument(&self, registry: &Registry) {
        *self.telemetry.lock() = Some(registry.clone());
    }

    /// Attaches a structured log: every membership change that forces a
    /// rebalance is recorded at INFO under `ctx` (`group/rebalance`,
    /// with the member and the resulting member count), timestamped
    /// from `clock`.
    pub fn instrument_log(&self, log: &EventLog, ctx: TraceContext, clock: &Clock) {
        *self.log.lock() = Some(GroupLog {
            rebalance_msg: log.intern("group/rebalance"),
            key_group: log.intern("group"),
            key_member: log.intern("member"),
            key_members: log.intern("members"),
            group_sym: log.intern(&self.name),
            site: LogSite::unlimited(),
            log: log.clone(),
            ctx,
            clock: Arc::clone(clock),
        });
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a member and returns its id. Triggers a rebalance of
    /// partition assignments on next [`ConsumerGroup::assignment`].
    pub fn join(&self, member: &str) -> usize {
        let mut members = self.members.lock();
        if let Some(i) = members.iter().position(|m| m == member) {
            return i;
        }
        members.push(member.to_string());
        // A membership change redistributes partitions — the kind of
        // decision a post-mortem wants on the record.
        if let Some(g) = self.log.lock().as_ref() {
            g.log.record(
                &g.site,
                Level::Info,
                g.ctx.child_named(member),
                g.rebalance_msg,
                g.clock.now_micros(),
                &[
                    (g.key_group, augur_log::Value::Sym(g.group_sym)),
                    (g.key_member, augur_log::Value::Sym(g.log.intern(member))),
                    (g.key_members, augur_log::Value::U64(members.len() as u64)),
                ],
            );
        }
        members.len() - 1
    }

    /// The partitions of `topic` assigned to `member` (round-robin over
    /// the current membership).
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn assignment(&self, topic: &str, member: &str) -> Result<Vec<PartitionId>, StreamError> {
        let n = self.broker.partition_count(topic)?;
        let members = self.members.lock();
        let idx = members
            .iter()
            .position(|m| m == member)
            .ok_or(StreamError::NotAssigned {
                group: self.name.clone(),
                partition: u32::MAX,
            })?;
        Ok((0..n)
            .filter(|p| (*p as usize) % members.len() == idx)
            .map(PartitionId)
            .collect())
    }

    /// Polls up to `max` records from one assigned partition, starting at
    /// the committed offset.
    ///
    /// # Errors
    ///
    /// [`StreamError::NotAssigned`] if the member does not own the
    /// partition, plus broker errors.
    pub fn poll(
        &self,
        topic: &str,
        member: &str,
        partition: PartitionId,
        max: usize,
    ) -> Result<Vec<PolledRecord>, StreamError> {
        if !self.assignment(topic, member)?.contains(&partition) {
            return Err(StreamError::NotAssigned {
                group: self.name.clone(),
                partition: partition.0,
            });
        }
        let from = self.committed_offset(topic, partition);
        self.broker.poll(topic, partition, from, max)
    }

    /// Commits `offset` (the *next* offset to read) for a partition.
    ///
    /// Commits are monotonic: a stale commit from a member that lost the
    /// partition in a rebalance can never move the group backwards,
    /// which would re-deliver already-processed records.
    pub fn commit(&self, topic: &str, partition: PartitionId, next_offset: u64) {
        let mut committed = self.committed.lock();
        let entry = committed
            .entry((topic.to_string(), partition.0))
            .or_insert(0);
        *entry = (*entry).max(next_offset);
    }

    /// Like [`ConsumerGroup::commit`], but charges time spent waiting
    /// on the group's commit lock to `lane`: an uncontended commit
    /// takes the `try_lock` fast path; when another member holds the
    /// lock, the wait is measured on `clock`, added to the lane's
    /// `lane_blocked_us` counter, and recorded as a
    /// `blocked/commit_lock` span under `parent` — the contention xray
    /// attributes to the committing stage.
    pub fn commit_contended(
        &self,
        topic: &str,
        partition: PartitionId,
        next_offset: u64,
        lane: &Lane,
        clock: &Clock,
        parent: TraceContext,
    ) {
        let mut committed = match self.committed.try_lock() {
            Some(guard) => guard,
            None => {
                let blocked = lane.block(clock, parent, BlockedSite::CommitLock);
                let guard = self.committed.lock();
                blocked.end();
                guard
            }
        };
        let entry = committed
            .entry((topic.to_string(), partition.0))
            .or_insert(0);
        *entry = (*entry).max(next_offset);
    }

    /// The committed next-offset for a partition (0 if never committed).
    pub fn committed_offset(&self, topic: &str, partition: PartitionId) -> u64 {
        *self
            .committed
            .lock()
            .get(&(topic.to_string(), partition.0))
            .unwrap_or(&0)
    }

    /// Total lag (end offset − committed) across a topic's partitions.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnknownTopic`] if the topic does not exist.
    pub fn lag(&self, topic: &str) -> Result<u64, StreamError> {
        let n = self.broker.partition_count(topic)?;
        let mut lag = 0u64;
        for p in 0..n {
            let end = self.broker.end_offset(topic, PartitionId(p))?;
            lag += end.saturating_sub(self.committed_offset(topic, PartitionId(p)));
        }
        if let Some(registry) = self.telemetry.lock().as_ref() {
            registry
                .gauge_labeled(
                    "consumer_lag_records",
                    &[("group", self.name.as_str()), ("topic", topic)],
                )
                .set_u64(lag);
        }
        Ok(lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64, t: u64) -> Record {
        Record::new(key, format!("v{key}").into_bytes(), t)
    }

    #[test]
    fn group_joins_log_rebalance_decisions() {
        use augur_telemetry::ManualTime;
        let group = ConsumerGroup::new("g", Broker::new());
        let log = EventLog::new(16);
        let ctx = TraceContext::root(3, 1);
        let clock: Clock = ManualTime::shared();
        group.instrument_log(&log, ctx, &clock);
        group.join("a");
        group.join("b");
        group.join("a"); // re-join: no membership change, no record
        let records = log.drain();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.msg == "group/rebalance"));
        assert!(records.iter().all(|r| r.trace_id == ctx.trace_id));
        let counts: Vec<_> = records
            .iter()
            .map(|r| {
                r.fields
                    .iter()
                    .find(|(k, _)| k == "members")
                    .map(|(_, v)| v.clone())
            })
            .collect();
        assert_eq!(
            counts,
            vec![
                Some(augur_log::FieldValue::U64(1)),
                Some(augur_log::FieldValue::U64(2))
            ]
        );
    }

    #[test]
    fn create_and_duplicate_topic() {
        let b = Broker::new();
        assert!(b.create_topic("a", 3).is_ok());
        assert_eq!(
            b.create_topic("a", 3),
            Err(StreamError::TopicExists("a".into()))
        );
        assert_eq!(
            b.create_topic("z", 0),
            Err(StreamError::InvalidPartitionCount(0))
        );
        assert_eq!(b.topics(), vec!["a".to_string()]);
    }

    #[test]
    fn append_assigns_dense_offsets_per_partition() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        for i in 0..10 {
            let (_, off) = b.append("t", rec(i, i)).unwrap();
            assert_eq!(off.0, i);
        }
        assert_eq!(b.end_offset("t", PartitionId(0)).unwrap(), 10);
    }

    #[test]
    fn same_key_preserves_order() {
        let b = Broker::new();
        b.create_topic("t", 8).unwrap();
        for i in 0..100 {
            b.append("t", Record::new(42, vec![i as u8], i)).unwrap();
        }
        let pid = b.partition_for("t", 42).unwrap();
        let polled = b.poll("t", pid, 0, 1000).unwrap();
        assert_eq!(polled.len(), 100);
        for (i, pr) in polled.iter().enumerate() {
            assert_eq!(pr.record.payload[0], i as u8);
        }
    }

    #[test]
    fn poll_respects_from_and_max() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        b.append_batch("t", (0..50).map(|i| rec(0, i))).unwrap();
        let polled = b.poll("t", PartitionId(0), 10, 5).unwrap();
        assert_eq!(polled.len(), 5);
        assert_eq!(polled[0].offset, Offset(10));
        // Past the end: empty.
        assert!(b.poll("t", PartitionId(0), 100, 5).unwrap().is_empty());
    }

    #[test]
    fn unknown_topic_and_partition_errors() {
        let b = Broker::new();
        assert!(matches!(
            b.poll("nope", PartitionId(0), 0, 1),
            Err(StreamError::UnknownTopic(_))
        ));
        b.create_topic("t", 1).unwrap();
        assert!(matches!(
            b.poll("t", PartitionId(5), 0, 1),
            Err(StreamError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn stats_count_records_and_bytes() {
        let b = Broker::new();
        b.create_topic("t", 4).unwrap();
        b.append_batch("t", (0..100).map(|i| rec(i, i))).unwrap();
        let s = b.stats("t").unwrap();
        assert_eq!(s.partitions, 4);
        assert_eq!(s.records, 100);
        assert!(s.bytes >= 200);
    }

    #[test]
    fn consumer_group_assignment_partitions_disjoint() {
        let b = Broker::new();
        b.create_topic("t", 8).unwrap();
        let g = ConsumerGroup::new("g", b);
        g.join("m0");
        g.join("m1");
        g.join("m2");
        let mut all: Vec<u32> = Vec::new();
        for m in ["m0", "m1", "m2"] {
            all.extend(g.assignment("t", m).unwrap().iter().map(|p| p.0));
        }
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn consumer_group_poll_commit_lag() {
        let b = Broker::new();
        b.create_topic("t", 2).unwrap();
        b.append_batch("t", (0..20).map(|i| rec(i, i))).unwrap();
        let g = ConsumerGroup::new("g", b.clone());
        g.join("m");
        let total_before = g.lag("t").unwrap();
        assert_eq!(total_before, 20);
        for pid in g.assignment("t", "m").unwrap() {
            let recs = g.poll("t", "m", pid, 100).unwrap();
            if let Some(last) = recs.last() {
                g.commit("t", pid, last.offset.0 + 1);
            }
        }
        assert_eq!(g.lag("t").unwrap(), 0);
        // Re-poll returns nothing new.
        for pid in g.assignment("t", "m").unwrap() {
            assert!(g.poll("t", "m", pid, 100).unwrap().is_empty());
        }
    }

    #[test]
    fn commit_contended_fast_path_charges_nothing() {
        use augur_telemetry::{Lanes, ManualTime};
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        let g = ConsumerGroup::new("g", b);
        let lanes = Lanes::new(9, 64);
        let lane = lanes.register("committer");
        let clock: Clock = ManualTime::shared();
        g.commit_contended(
            "t",
            PartitionId(0),
            5,
            &lane,
            &clock,
            TraceContext::root(9, 1),
        );
        assert_eq!(g.committed_offset("t", PartitionId(0)), 5);
        // Monotonic: a stale lower commit cannot move the group back.
        g.commit_contended(
            "t",
            PartitionId(0),
            3,
            &lane,
            &clock,
            TraceContext::root(9, 2),
        );
        assert_eq!(g.committed_offset("t", PartitionId(0)), 5);
        assert_eq!(lane.blocked_us(), 0);
        assert!(lanes.merge_drains().events.is_empty());
    }

    #[test]
    fn commit_contended_charges_blocked_time_under_contention() {
        use augur_telemetry::{Lanes, MonotonicTime};
        use std::sync::atomic::{AtomicBool, Ordering};
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        let g = Arc::new(ConsumerGroup::new("g", b));
        let lanes = Lanes::new(9, 64);
        let lane = lanes.register("committer");
        let clock: Clock = MonotonicTime::shared();
        let held = g.committed.lock();
        let entered = Arc::new(AtomicBool::new(false));
        let t = {
            let (g, lane, clock, entered) = (
                Arc::clone(&g),
                lane.clone(),
                Arc::clone(&clock),
                Arc::clone(&entered),
            );
            std::thread::spawn(move || {
                entered.store(true, Ordering::Release);
                g.commit_contended(
                    "t",
                    PartitionId(0),
                    7,
                    &lane,
                    &clock,
                    TraceContext::root(9, 3),
                );
            })
        };
        while !entered.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Keep the lock held long enough that the committer is firmly
        // in the blocked path before we release it.
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(held);
        t.join()
            .unwrap_or_else(|_| unreachable!("committer panicked"));
        assert_eq!(g.committed_offset("t", PartitionId(0)), 7);
        assert!(
            lane.blocked_us() > 0,
            "wait on the held lock must be charged"
        );
        let merged = lanes.merge_drains();
        assert!(merged
            .events
            .iter()
            .any(|e| e.name == "blocked/commit_lock" && e.lane == lane.id()));
    }

    #[test]
    fn poll_unowned_partition_is_rejected() {
        let b = Broker::new();
        b.create_topic("t", 2).unwrap();
        let g = ConsumerGroup::new("g", b);
        g.join("m0");
        g.join("m1");
        // m0 owns partition 0, m1 owns partition 1.
        assert!(matches!(
            g.poll("t", "m0", PartitionId(1), 1),
            Err(StreamError::NotAssigned { .. })
        ));
    }

    #[test]
    fn concurrent_producers_do_not_lose_records() {
        let b = Broker::new();
        b.create_topic("t", 4).unwrap();
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    b.append("t", Record::new(th * 1000 + i, vec![0u8], i))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.stats("t").unwrap().records, 4000);
    }
}
