//! Error types for the stream substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the stream substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The named topic does not exist.
    UnknownTopic(String),
    /// A topic with this name already exists.
    TopicExists(String),
    /// A partition index was out of range for the topic.
    UnknownPartition {
        /// Topic the caller addressed.
        topic: String,
        /// Out-of-range partition index.
        partition: u32,
    },
    /// Partition count must be at least one.
    InvalidPartitionCount(u32),
    /// A consumer group member requested a partition it does not own.
    NotAssigned {
        /// Consumer group the member belongs to.
        group: String,
        /// Partition the member is not assigned.
        partition: u32,
    },
    /// The pipeline was already started or already stopped.
    InvalidPipelineState(&'static str),
    /// No checkpoint exists to restore from.
    NoCheckpoint,
    /// Operator state failed to round-trip through a checkpoint.
    CorruptCheckpoint(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownTopic(t) => write!(f, "unknown topic {t:?}"),
            StreamError::TopicExists(t) => write!(f, "topic {t:?} already exists"),
            StreamError::UnknownPartition { topic, partition } => {
                write!(f, "partition {partition} out of range for topic {topic:?}")
            }
            StreamError::InvalidPartitionCount(n) => {
                write!(f, "partition count {n} must be at least 1")
            }
            StreamError::NotAssigned { group, partition } => {
                write!(f, "partition {partition} not assigned in group {group:?}")
            }
            StreamError::InvalidPipelineState(what) => {
                write!(f, "invalid pipeline state: {what}")
            }
            StreamError::NoCheckpoint => write!(f, "no checkpoint available"),
            StreamError::CorruptCheckpoint(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(StreamError::UnknownTopic("t".into())
            .to_string()
            .contains("unknown topic"));
        assert!(StreamError::UnknownPartition {
            topic: "t".into(),
            partition: 9
        }
        .to_string()
        .contains("9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<StreamError>();
    }
}
