//! Checkpointing: consistent snapshots of consumer offsets plus operator
//! state, and recovery from the latest snapshot.
//!
//! The store keeps state snapshots by value (`Clone`) rather than bytes:
//! the substrate is in-process, so a clone *is* a durable-enough copy for
//! the semantics the experiments need — after a simulated crash, a
//! pipeline restored from checkpoint `n` re-reads the log from the saved
//! offsets and produces exactly the results it would have produced
//! without the crash (effective exactly-once).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::StreamError;
use crate::record::PartitionId;

/// One checkpoint: consumer offsets plus opaque operator state.
#[derive(Debug, Clone)]
pub struct Checkpoint<S> {
    /// Monotonic checkpoint id.
    pub id: u64,
    /// Next-offset per (topic, partition) at snapshot time.
    pub offsets: HashMap<(String, u32), u64>,
    /// Operator state at snapshot time.
    pub state: S,
}

/// A store of checkpoints for one pipeline. Cheap to clone (shared).
///
/// # Example
///
/// ```
/// use augur_stream::CheckpointStore;
/// use std::collections::HashMap;
///
/// let store: CheckpointStore<u64> = CheckpointStore::new(3);
/// store.save(HashMap::new(), 41);
/// store.save(HashMap::new(), 42);
/// assert_eq!(store.latest()?.state, 42);
/// # Ok::<(), augur_stream::StreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointStore<S> {
    inner: Arc<Mutex<Inner<S>>>,
    retain: usize,
}

#[derive(Debug)]
struct Inner<S> {
    next_id: u64,
    checkpoints: Vec<Checkpoint<S>>,
}

impl<S: Clone> CheckpointStore<S> {
    /// Creates a store retaining at most `retain` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `retain == 0`.
    pub fn new(retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one checkpoint");
        CheckpointStore {
            inner: Arc::new(Mutex::new(Inner {
                next_id: 0,
                checkpoints: Vec::new(),
            })),
            retain,
        }
    }

    /// Saves a checkpoint, returning its id. Oldest snapshots beyond the
    /// retention limit are discarded.
    pub fn save(&self, offsets: HashMap<(String, u32), u64>, state: S) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.checkpoints.push(Checkpoint { id, offsets, state });
        let excess = inner.checkpoints.len().saturating_sub(self.retain);
        if excess > 0 {
            inner.checkpoints.drain(..excess);
        }
        id
    }

    /// The most recent checkpoint.
    ///
    /// # Errors
    ///
    /// [`StreamError::NoCheckpoint`] when none has been saved.
    pub fn latest(&self) -> Result<Checkpoint<S>, StreamError> {
        self.inner
            .lock()
            .checkpoints
            .last()
            .cloned()
            .ok_or(StreamError::NoCheckpoint)
    }

    /// A checkpoint by id.
    ///
    /// # Errors
    ///
    /// [`StreamError::NoCheckpoint`] when the id is unknown (expired or
    /// never existed).
    pub fn get(&self, id: u64) -> Result<Checkpoint<S>, StreamError> {
        self.inner
            .lock()
            .checkpoints
            .iter()
            .find(|c| c.id == id)
            .cloned()
            .ok_or(StreamError::NoCheckpoint)
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().checkpoints.len()
    }

    /// Whether no checkpoint has been saved.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Helper to build the offsets map for a checkpoint.
pub fn offsets_map(entries: &[(&str, PartitionId, u64)]) -> HashMap<(String, u32), u64> {
    entries
        .iter()
        .map(|(t, p, o)| ((t.to_string(), p.0), *o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_latest() {
        let store: CheckpointStore<String> = CheckpointStore::new(10);
        assert!(store.latest().is_err());
        let id0 = store.save(HashMap::new(), "a".into());
        let id1 = store.save(HashMap::new(), "b".into());
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(store.latest().unwrap().state, "b");
        assert_eq!(store.get(0).unwrap().state, "a");
    }

    #[test]
    fn retention_evicts_oldest() {
        let store: CheckpointStore<u32> = CheckpointStore::new(2);
        store.save(HashMap::new(), 1);
        store.save(HashMap::new(), 2);
        store.save(HashMap::new(), 3);
        assert_eq!(store.len(), 2);
        assert!(store.get(0).is_err());
        assert_eq!(store.latest().unwrap().state, 3);
    }

    #[test]
    fn offsets_are_preserved() {
        let store: CheckpointStore<()> = CheckpointStore::new(1);
        let offsets = offsets_map(&[("t", PartitionId(0), 5), ("t", PartitionId(1), 9)]);
        store.save(offsets, ());
        let cp = store.latest().unwrap();
        assert_eq!(cp.offsets[&("t".to_string(), 0)], 5);
        assert_eq!(cp.offsets[&("t".to_string(), 1)], 9);
    }

    #[test]
    #[should_panic(expected = "retain")]
    fn zero_retention_rejected() {
        let _: CheckpointStore<()> = CheckpointStore::new(0);
    }
}
