//! Multi-threaded broker / consumer-group stress test.
//!
//! N producer threads append concurrently while M consumer threads poll
//! and commit through a [`ConsumerGroup`]; more consumers join mid-run,
//! forcing a rebalance. Per-partition fencing tokens (the stand-in for a
//! real system's epoch fencing) serialise poll+commit per partition, so
//! the group must deliver every record exactly once: nothing lost,
//! nothing double-committed.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use augur_stream::{Broker, ConsumerGroup, PartitionId, Record};

const TOPIC: &str = "stress";
const PARTITIONS: u32 = 8;
const PRODUCERS: u64 = 4;
const RECORDS_PER_PRODUCER: u64 = 500;
const INITIAL_CONSUMERS: usize = 2;
const LATE_CONSUMERS: usize = 2;

fn key_of(producer: u64, seq: u64) -> u64 {
    producer * 1_000_000 + seq
}

/// One consumer loop: sweep the member's current assignment, and for each
/// partition whose fencing token we win, poll from the committed offset,
/// record what we saw, and commit past it before releasing the token.
#[allow(clippy::needless_pass_by_value)]
fn consume(
    group: Arc<ConsumerGroup>,
    member: String,
    tokens: Arc<Vec<AtomicBool>>,
    stop: Arc<AtomicBool>,
) -> Vec<(u32, u64, u64)> {
    group.join(&member);
    let mut seen: Vec<(u32, u64, u64)> = Vec::new(); // (partition, offset, key)
    while !stop.load(Ordering::Acquire) {
        let assigned = group.assignment(TOPIC, &member).unwrap_or_default();
        for p in assigned {
            let token = &tokens[p.0 as usize];
            if token
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue; // another member is mid-poll on this partition
            }
            // Assignment may have changed between the sweep and the token
            // acquisition; NotAssigned here is a benign race, not a failure.
            if let Ok(batch) = group.poll(TOPIC, &member, p, 64) {
                if let Some(last) = batch.last() {
                    let next = last.offset.0 + 1;
                    for pr in &batch {
                        seen.push((p.0, pr.offset.0, pr.record.key));
                    }
                    group.commit(TOPIC, p, next);
                }
            }
            token.store(false, Ordering::Release);
        }
        thread::yield_now();
    }
    seen
}

#[test]
fn rebalance_loses_and_duplicates_nothing() {
    let broker = Broker::new();
    broker.create_topic(TOPIC, PARTITIONS).unwrap();
    let group = Arc::new(ConsumerGroup::new("stress-group", broker.clone()));
    let tokens: Arc<Vec<AtomicBool>> =
        Arc::new((0..PARTITIONS).map(|_| AtomicBool::new(false)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let produced_count = Arc::new(AtomicUsize::new(0));

    // Producers: unique keys, concurrent appends.
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|id| {
            let broker = broker.clone();
            let produced_count = Arc::clone(&produced_count);
            thread::spawn(move || {
                for seq in 0..RECORDS_PER_PRODUCER {
                    let key = key_of(id, seq);
                    let payload = key.to_le_bytes().to_vec();
                    broker
                        .append(TOPIC, Record::new(key, payload, seq))
                        .unwrap();
                    produced_count.fetch_add(1, Ordering::Release);
                    if seq % 64 == 0 {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    // Initial consumer cohort.
    let mut consumers: Vec<_> = (0..INITIAL_CONSUMERS)
        .map(|i| {
            let group = Arc::clone(&group);
            let tokens = Arc::clone(&tokens);
            let stop = Arc::clone(&stop);
            thread::spawn(move || consume(group, format!("early-{i}"), tokens, stop))
        })
        .collect();

    // Once production is underway, more members join: a live rebalance.
    while produced_count.load(Ordering::Acquire) < (PRODUCERS * RECORDS_PER_PRODUCER / 2) as usize {
        thread::yield_now();
    }
    consumers.extend((0..LATE_CONSUMERS).map(|i| {
        let group = Arc::clone(&group);
        let tokens = Arc::clone(&tokens);
        let stop = Arc::clone(&stop);
        thread::spawn(move || consume(group, format!("late-{i}"), tokens, stop))
    }));

    for p in producers {
        p.join().expect("producer thread panicked");
    }
    // Drain: wait until the group has committed everything, then stop.
    while group.lag(TOPIC).unwrap() > 0 {
        thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    let per_member: Vec<Vec<(u32, u64, u64)>> = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer thread panicked"))
        .collect();

    let total_produced = (PRODUCERS * RECORDS_PER_PRODUCER) as usize;

    // Exactly-once per slot: no (partition, offset) delivered twice.
    let all: Vec<(u32, u64, u64)> = per_member.iter().flatten().copied().collect();
    let slots: HashSet<(u32, u64)> = all.iter().map(|(p, o, _)| (*p, *o)).collect();
    assert_eq!(
        slots.len(),
        all.len(),
        "some (partition, offset) slot was delivered twice"
    );
    assert_eq!(all.len(), total_produced, "record count mismatch");

    // No record lost: every produced key came back exactly once.
    let keys: HashSet<u64> = all.iter().map(|(_, _, k)| *k).collect();
    assert_eq!(keys.len(), total_produced, "duplicate or missing keys");
    for id in 0..PRODUCERS {
        for seq in 0..RECORDS_PER_PRODUCER {
            assert!(keys.contains(&key_of(id, seq)), "lost {id}/{seq}");
        }
    }

    // Commits cover each partition exactly to its end: nothing
    // double-committed (monotonic commits cannot overshoot the end offset).
    for p in 0..PARTITIONS {
        let end = broker.end_offset(TOPIC, PartitionId(p)).unwrap();
        assert_eq!(
            group.committed_offset(TOPIC, PartitionId(p)),
            end,
            "partition {p} not committed to its end"
        );
    }

    // The rebalance actually redistributed work: late joiners consumed.
    let late_total: usize = per_member[INITIAL_CONSUMERS..].iter().map(Vec::len).sum();
    assert!(late_total > 0, "late members never received a partition");
}
