//! Property-based tests for the stream substrate.

use augur_stream::window::CountAggregation;
use augur_stream::{
    BoundedOutOfOrderness, Broker, PartitionId, Record, SessionWindows, SlidingWindows,
    TumblingWindows, Watermark, WatermarkGenerator, WindowAssigner, WindowedAggregator,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn broker_preserves_per_key_order(
        keys in prop::collection::vec(0u64..8, 1..300),
        partitions in 1u32..8,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", partitions).unwrap();
        for (seq, &k) in keys.iter().enumerate() {
            broker
                .append("t", Record::new(k, (seq as u64).to_le_bytes().to_vec(), seq as u64))
                .unwrap();
        }
        // For every key: the sequence numbers read back from its
        // partition, filtered to that key, must be increasing.
        for k in 0..8u64 {
            let pid = broker.partition_for("t", k).unwrap();
            let polled = broker.poll("t", pid, 0, usize::MAX).unwrap();
            let seqs: Vec<u64> = polled
                .iter()
                .filter(|pr| pr.record.key == k)
                .map(|pr| u64::from_le_bytes(pr.record.payload.as_ref().try_into().unwrap()))
                .collect();
            for w in seqs.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn broker_total_records_conserved(
        counts in prop::collection::vec(0u64..40, 1..6),
        partitions in 1u32..16,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", partitions).unwrap();
        let mut total = 0u64;
        for (round, &c) in counts.iter().enumerate() {
            broker
                .append_batch(
                    "t",
                    (0..c).map(|i| Record::new(i * 31 + round as u64, vec![1u8], i)),
                )
                .unwrap();
            total += c;
        }
        prop_assert_eq!(broker.stats("t").unwrap().records, total);
        let mut read = 0u64;
        for p in 0..partitions {
            read += broker.end_offset("t", PartitionId(p)).unwrap();
        }
        prop_assert_eq!(read, total);
    }

    #[test]
    fn watermark_is_monotone(times in prop::collection::vec(0u64..1_000_000, 1..200), bound in 0u64..10_000) {
        let mut wm = BoundedOutOfOrderness::new(bound);
        let mut prev = Watermark(0);
        for t in times {
            wm.observe(t);
            let cur = wm.current();
            prop_assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn tumbling_windows_partition_the_timeline(size in 1u64..10_000, t in 0u64..1_000_000) {
        let assigner = TumblingWindows::new(size);
        let windows = assigner.assign(t);
        prop_assert_eq!(windows.len(), 1);
        prop_assert!(windows[0].contains(t));
        prop_assert_eq!(windows[0].len_us(), size);
        prop_assert_eq!(windows[0].start_us % size, 0);
    }

    #[test]
    fn sliding_windows_all_contain_event(
        slide in 1u64..1_000,
        factor in 1u64..8,
        t in 0u64..100_000,
    ) {
        let size = slide * factor;
        let assigner = SlidingWindows::new(size, slide);
        let windows = assigner.assign(t);
        // Near the epoch there are no negative window starts, so fewer
        // than `factor` panes exist.
        let expected = factor.min(t / slide + 1);
        prop_assert_eq!(windows.len() as u64, expected);
        for w in &windows {
            prop_assert!(w.contains(t), "window {w} must contain {t}");
        }
    }

    #[test]
    fn windowed_count_conserves_events(
        events in prop::collection::vec((0u64..5, 0u64..100_000), 1..300),
        size in 1_000u64..20_000,
    ) {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(size), CountAggregation);
        for &(k, t) in &events {
            prop_assert!(agg.offer(k, t, &()));
        }
        let fired = agg.flush();
        let total: u64 = fired.iter().map(|r| r.value).sum();
        prop_assert_eq!(total, events.len() as u64);
    }

    #[test]
    fn session_windows_conserve_events_and_respect_gap(
        times in prop::collection::vec(0u64..200_000, 1..150),
        gap in 100u64..20_000,
    ) {
        let mut agg = WindowedAggregator::new(SessionWindows::new(gap), CountAggregation);
        for &t in &times {
            agg.offer(1, t, &());
        }
        let fired = agg.flush();
        let total: u64 = fired.iter().map(|r| r.value).sum();
        prop_assert_eq!(total, times.len() as u64);
        // Sessions for one key never overlap and are separated by > gap
        // between end and next start.
        let mut windows: Vec<_> = fired.iter().map(|r| r.window).collect();
        windows.sort_by_key(|w| w.start_us);
        for pair in windows.windows(2) {
            prop_assert!(pair[1].start_us >= pair[0].end_us,
                "sessions overlap: {} then {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn late_plus_counted_equals_offered(
        times in prop::collection::vec(0u64..50_000, 1..200),
        advance_at in 10usize..100,
    ) {
        let mut agg = WindowedAggregator::new(TumblingWindows::new(1_000), CountAggregation);
        let mut counted = 0u64;
        for (i, &t) in times.iter().enumerate() {
            if i == advance_at.min(times.len() - 1) {
                agg.advance(Watermark(25_000));
            }
            if agg.offer(1, t, &()) {
                counted += 1;
            }
        }
        let emitted: u64 = agg.flush().iter().map(|r| r.value).sum();
        // Everything offered before the watermark already fired.
        let pre_fired: u64 = {
            // Events accepted before the advance with window end <= 25000.
            times
                .iter()
                .take(advance_at.min(times.len() - 1))
                .filter(|t| (**t / 1_000) * 1_000 + 1_000 <= 25_000)
                .count() as u64
        };
        prop_assert_eq!(emitted + pre_fired, counted);
        prop_assert_eq!(counted + agg.late_dropped(), times.len() as u64);
    }
}
