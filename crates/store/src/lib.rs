//! Storage substrate for the Augur platform.
//!
//! The paper's "Volume" dimension needs somewhere for the torrent to
//! land. Three engines cover the platform's access patterns:
//!
//! - [`LsmStore`]: a log-structured merge key-value store (memtable →
//!   sorted runs → compaction) for entity state: user profiles, POI
//!   metadata, device registrations.
//! - [`TimeSeriesStore`]: append-only per-series samples with range
//!   queries and downsampling, for sensor history.
//! - [`ColumnTable`]: a columnar table with predicate pushdown for the
//!   analytical scans the batch side of experiment E2 runs.
//!
//! All three are in-memory: durability is out of scope (the paper's
//! concern is the analysis pipeline, not disks), but the *asymptotics and
//! interfaces* match their on-disk counterparts.

/// A typed columnar table with predicate scans.
pub mod columnar;
/// The crate error type.
pub mod error;
/// A log-structured merge-tree key-value store.
pub mod lsm;
/// A time-series store with downsampling queries.
pub mod timeseries;

/// Columnar types re-exported from [`columnar`].
pub use columnar::{ColumnTable, ColumnType, Predicate, Schema, Value};
/// The crate error type, re-exported from [`error`].
pub use error::StoreError;
/// LSM types re-exported from [`lsm`].
pub use lsm::{LsmParams, LsmStats, LsmStore};
/// Time-series types re-exported from [`timeseries`].
pub use timeseries::{Downsample, Sample, SeriesId, TimeSeriesStore};
