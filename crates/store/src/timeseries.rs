//! Append-only time-series storage with range queries and downsampling.
//!
//! Sensor history — vitals, fixes, interaction rates — is stored one
//! series per (device, metric). Samples append in time order; range
//! queries binary-search the sorted buffer; downsampling buckets a range
//! and reduces each bucket, the primitive behind the dashboard-style AR
//! overlays of §2.1.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::StoreError;

/// Identifies a series.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SeriesId(pub u64);

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "series:{}", self.0)
    }
}

/// One sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample time, microseconds since the epoch.
    pub t_us: u64,
    /// Value.
    pub value: f64,
}

/// Downsampling reducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Downsample {
    /// Arithmetic mean of the bucket.
    Mean,
    /// Minimum of the bucket.
    Min,
    /// Maximum of the bucket.
    Max,
    /// Sample count in the bucket.
    Count,
    /// Last value in the bucket.
    Last,
}

impl Downsample {
    fn reduce(&self, values: &[f64]) -> f64 {
        match self {
            Downsample::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Downsample::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            Downsample::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Downsample::Count => values.len() as f64,
            // Buckets are only materialised non-empty; NaN marks the
            // impossible branch like Mean's 0/0 would.
            Downsample::Last => values.last().copied().unwrap_or(f64::NAN),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Series {
    name: String,
    samples: Vec<Sample>, // sorted by t_us
}

/// The time-series store.
///
/// # Example
///
/// ```
/// use augur_store::{TimeSeriesStore, Downsample};
///
/// let mut ts = TimeSeriesStore::new();
/// let hr = ts.create_series("patient-1/heart-rate");
/// for i in 0..60u64 {
///     ts.append(hr, i * 1_000_000, 70.0 + (i % 5) as f64)?;
/// }
/// let minute = ts.downsample(hr, 0, 60_000_000, 10_000_000, Downsample::Mean)?;
/// assert_eq!(minute.len(), 6);
/// # Ok::<(), augur_store::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesStore {
    series: HashMap<SeriesId, Series>,
    by_name: HashMap<String, SeriesId>,
    next_id: u64,
}

impl TimeSeriesStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TimeSeriesStore::default()
    }

    /// Creates (or returns the existing) series with `name`.
    pub fn create_series(&mut self, name: &str) -> SeriesId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = SeriesId(self.next_id);
        self.next_id += 1;
        self.series.insert(
            id,
            Series {
                name: name.to_string(),
                samples: Vec::new(),
            },
        );
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks a series up by name.
    pub fn series_by_name(&self, name: &str) -> Option<SeriesId> {
        self.by_name.get(name).copied()
    }

    /// The name of a series.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownSeries`] for unregistered ids.
    pub fn name(&self, id: SeriesId) -> Result<&str, StoreError> {
        self.series
            .get(&id)
            .map(|s| s.name.as_str())
            .ok_or(StoreError::UnknownSeries(id.0))
    }

    /// Appends a sample; time must be non-decreasing within the series.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownSeries`] or [`StoreError::OutOfOrderSample`].
    pub fn append(&mut self, id: SeriesId, t_us: u64, value: f64) -> Result<(), StoreError> {
        let s = self
            .series
            .get_mut(&id)
            .ok_or(StoreError::UnknownSeries(id.0))?;
        if let Some(last) = s.samples.last() {
            if t_us < last.t_us {
                return Err(StoreError::OutOfOrderSample {
                    series: id.0,
                    t_us,
                    last_us: last.t_us,
                });
            }
        }
        s.samples.push(Sample { t_us, value });
        Ok(())
    }

    /// Samples with `t_us` in `[from_us, to_us)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownSeries`] for unregistered ids.
    pub fn range(&self, id: SeriesId, from_us: u64, to_us: u64) -> Result<&[Sample], StoreError> {
        let s = self
            .series
            .get(&id)
            .ok_or(StoreError::UnknownSeries(id.0))?;
        let lo = s.samples.partition_point(|x| x.t_us < from_us);
        let hi = s.samples.partition_point(|x| x.t_us < to_us);
        Ok(&s.samples[lo..hi])
    }

    /// The most recent sample at or before `t_us`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownSeries`] for unregistered ids.
    pub fn latest_at(&self, id: SeriesId, t_us: u64) -> Result<Option<Sample>, StoreError> {
        let s = self
            .series
            .get(&id)
            .ok_or(StoreError::UnknownSeries(id.0))?;
        let idx = s.samples.partition_point(|x| x.t_us <= t_us);
        Ok(idx.checked_sub(1).map(|i| s.samples[i]))
    }

    /// Downsamples `[from_us, to_us)` into buckets of `bucket_us`,
    /// reducing each non-empty bucket with `how`. Returns
    /// `(bucket_start_us, reduced)` pairs; empty buckets are omitted.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidParameter`] if `bucket_us == 0`, plus
    /// [`StoreError::UnknownSeries`].
    pub fn downsample(
        &self,
        id: SeriesId,
        from_us: u64,
        to_us: u64,
        bucket_us: u64,
        how: Downsample,
    ) -> Result<Vec<(u64, f64)>, StoreError> {
        if bucket_us == 0 {
            return Err(StoreError::InvalidParameter("bucket_us"));
        }
        let samples = self.range(id, from_us, to_us)?;
        let mut out: Vec<(u64, f64)> = Vec::new();
        let mut bucket_start = None::<u64>;
        let mut values: Vec<f64> = Vec::new();
        for s in samples {
            let b = from_us + ((s.t_us - from_us) / bucket_us) * bucket_us;
            if bucket_start != Some(b) {
                if let Some(bs) = bucket_start {
                    out.push((bs, how.reduce(&values)));
                }
                bucket_start = Some(b);
                values.clear();
            }
            values.push(s.value);
        }
        if let Some(bs) = bucket_start {
            out.push((bs, how.reduce(&values)));
        }
        Ok(out)
    }

    /// Drops samples older than `cutoff_us` from every series, returning
    /// the number removed (retention enforcement).
    pub fn trim_before(&mut self, cutoff_us: u64) -> usize {
        let mut removed = 0;
        for s in self.series.values_mut() {
            let keep_from = s.samples.partition_point(|x| x.t_us < cutoff_us);
            removed += keep_from;
            s.samples.drain(..keep_from);
        }
        removed
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total stored samples.
    pub fn sample_count(&self) -> usize {
        self.series.values().map(|s| s.samples.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> (TimeSeriesStore, SeriesId) {
        let mut ts = TimeSeriesStore::new();
        let id = ts.create_series("s");
        for i in 0..100u64 {
            ts.append(id, i * 1_000, i as f64).unwrap();
        }
        (ts, id)
    }

    #[test]
    fn create_is_idempotent() {
        let mut ts = TimeSeriesStore::new();
        let a = ts.create_series("x");
        let b = ts.create_series("x");
        assert_eq!(a, b);
        assert_eq!(ts.series_count(), 1);
        assert_eq!(ts.series_by_name("x"), Some(a));
        assert_eq!(ts.name(a).unwrap(), "x");
    }

    #[test]
    fn rejects_out_of_order() {
        let mut ts = TimeSeriesStore::new();
        let id = ts.create_series("s");
        ts.append(id, 100, 1.0).unwrap();
        assert!(matches!(
            ts.append(id, 50, 2.0),
            Err(StoreError::OutOfOrderSample { .. })
        ));
        // Equal timestamps are allowed (sensor bursts).
        assert!(ts.append(id, 100, 3.0).is_ok());
    }

    #[test]
    fn range_query_half_open() {
        let (ts, id) = filled();
        let r = ts.range(id, 10_000, 20_000).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].t_us, 10_000);
        assert_eq!(r.last().unwrap().t_us, 19_000);
    }

    #[test]
    fn latest_at_boundaries() {
        let (ts, id) = filled();
        assert_eq!(ts.latest_at(id, 0).unwrap().unwrap().value, 0.0);
        assert_eq!(ts.latest_at(id, 5_500).unwrap().unwrap().value, 5.0);
        let mut empty = TimeSeriesStore::new();
        let e = empty.create_series("e");
        assert_eq!(empty.latest_at(e, 10).unwrap(), None);
    }

    #[test]
    fn downsample_mean_and_count() {
        let (ts, id) = filled();
        let means = ts
            .downsample(id, 0, 100_000, 10_000, Downsample::Mean)
            .unwrap();
        assert_eq!(means.len(), 10);
        assert_eq!(means[0], (0, 4.5)); // mean of 0..=9
        let counts = ts
            .downsample(id, 0, 100_000, 25_000, Downsample::Count)
            .unwrap();
        assert_eq!(
            counts,
            vec![(0, 25.0), (25_000, 25.0), (50_000, 25.0), (75_000, 25.0)]
        );
    }

    #[test]
    fn downsample_min_max_last() {
        let (ts, id) = filled();
        let min = ts
            .downsample(id, 0, 30_000, 30_000, Downsample::Min)
            .unwrap();
        assert_eq!(min, vec![(0, 0.0)]);
        let max = ts
            .downsample(id, 0, 30_000, 30_000, Downsample::Max)
            .unwrap();
        assert_eq!(max, vec![(0, 29.0)]);
        let last = ts
            .downsample(id, 0, 30_000, 30_000, Downsample::Last)
            .unwrap();
        assert_eq!(last, vec![(0, 29.0)]);
    }

    #[test]
    fn downsample_omits_empty_buckets() {
        let mut ts = TimeSeriesStore::new();
        let id = ts.create_series("sparse");
        ts.append(id, 0, 1.0).unwrap();
        ts.append(id, 95_000, 2.0).unwrap();
        let b = ts
            .downsample(id, 0, 100_000, 10_000, Downsample::Mean)
            .unwrap();
        assert_eq!(b, vec![(0, 1.0), (90_000, 2.0)]);
    }

    #[test]
    fn trim_enforces_retention() {
        let (mut ts, id) = filled();
        let removed = ts.trim_before(50_000);
        assert_eq!(removed, 50);
        assert_eq!(ts.sample_count(), 50);
        assert!(ts.range(id, 0, 50_000).unwrap().is_empty());
    }

    #[test]
    fn unknown_series_errors() {
        let ts = TimeSeriesStore::new();
        assert!(matches!(
            ts.range(SeriesId(9), 0, 1),
            Err(StoreError::UnknownSeries(9))
        ));
    }

    #[test]
    fn zero_bucket_rejected() {
        let (ts, id) = filled();
        assert!(matches!(
            ts.downsample(id, 0, 10, 0, Downsample::Mean),
            Err(StoreError::InvalidParameter("bucket_us"))
        ));
    }
}
