//! A columnar analytics table with predicate pushdown.
//!
//! The batch side of the timeliness experiment (E2) scans history; a
//! column layout lets it touch only the columns a query needs and skip
//! row materialisation. Strings are dictionary-encoded. The table also
//! exposes a deliberately naive row-at-a-time scan so benchmarks can
//! show the gap.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::StoreError;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit float.
    F64,
    /// 64-bit signed integer.
    I64,
    /// Dictionary-encoded string.
    Str,
}

/// A typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A float value.
    F64(f64),
    /// An integer value.
    I64(i64),
    /// A string value.
    Str(String),
}

impl Value {
    fn column_type(&self) -> ColumnType {
        match self {
            Value::F64(_) => ColumnType::F64,
            Value::I64(_) => ColumnType::I64,
            Value::Str(_) => ColumnType::Str,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A table schema: ordered, named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Creates a schema from (name, type) pairs.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        Schema {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column count.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A pushdown predicate on a single column.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Numeric column in `[lo, hi]` (either bound may be infinite).
    NumBetween {
        /// Column the predicate applies to.
        column: String,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// String column equals the given value.
    StrEq {
        /// Column the predicate applies to.
        column: String,
        /// Value the column must equal.
        value: String,
    },
}

#[derive(Debug, Clone)]
enum Column {
    F64(Vec<f64>),
    I64(Vec<i64>),
    Str {
        dict: Vec<String>,
        lookup: HashMap<String, u32>,
        codes: Vec<u32>,
    },
}

impl Column {
    fn new(t: ColumnType) -> Self {
        match t {
            ColumnType::F64 => Column::F64(Vec::new()),
            ColumnType::I64 => Column::I64(Vec::new()),
            ColumnType::Str => Column::Str {
                dict: Vec::new(),
                lookup: HashMap::new(),
                codes: Vec::new(),
            },
        }
    }

    fn push(&mut self, v: Value) -> Result<(), StoreError> {
        match (self, v) {
            (Column::F64(col), Value::F64(x)) => col.push(x),
            (Column::I64(col), Value::I64(x)) => col.push(x),
            (
                Column::Str {
                    dict,
                    lookup,
                    codes,
                },
                Value::Str(s),
            ) => {
                let code = *lookup.entry(s.clone()).or_insert_with(|| {
                    dict.push(s);
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            (col, v) => {
                return Err(StoreError::SchemaMismatch(format!(
                    "cannot store {:?} in {:?} column",
                    v.column_type(),
                    match col {
                        Column::F64(_) => ColumnType::F64,
                        Column::I64(_) => ColumnType::I64,
                        Column::Str { .. } => ColumnType::Str,
                    }
                )))
            }
        }
        Ok(())
    }

    fn value_at(&self, row: usize) -> Value {
        match self {
            Column::F64(v) => Value::F64(v[row]),
            Column::I64(v) => Value::I64(v[row]),
            Column::Str { dict, codes, .. } => Value::Str(dict[codes[row] as usize].clone()),
        }
    }

    fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::F64(v) => Some(v[row]),
            Column::I64(v) => Some(v[row] as f64),
            Column::Str { .. } => None,
        }
    }
}

/// The columnar table; see the module docs.
///
/// # Example
///
/// ```
/// use augur_store::{ColumnTable, ColumnType, Predicate, Schema};
///
/// let schema = Schema::new(vec![("price", ColumnType::F64), ("cat", ColumnType::Str)]);
/// let mut t = ColumnTable::new(schema);
/// t.append(vec![9.5.into(), "food".into()])?;
/// t.append(vec![120.0.into(), "retail".into()])?;
/// let rows = t.select(&[Predicate::StrEq { column: "cat".into(), value: "food".into() }])?;
/// assert_eq!(rows.len(), 1);
/// # Ok::<(), augur_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ColumnTable {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnTable {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|(_, t)| Column::new(*t))
            .collect();
        ColumnTable {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// [`StoreError::SchemaMismatch`] on wrong arity or cell type. On
    /// error the row is not partially applied.
    pub fn append(&mut self, row: Vec<Value>) -> Result<(), StoreError> {
        if row.len() != self.schema.len() {
            return Err(StoreError::SchemaMismatch(format!(
                "expected {} cells, got {}",
                self.schema.len(),
                row.len()
            )));
        }
        // Validate types first so failure cannot leave ragged columns.
        for (i, v) in row.iter().enumerate() {
            let want = self.schema.columns[i].1;
            if v.column_type() != want {
                return Err(StoreError::SchemaMismatch(format!(
                    "column {:?} expects {:?}, got {:?}",
                    self.schema.columns[i].0,
                    want,
                    v.column_type()
                )));
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            // Types were validated above, so this cannot fail; propagating
            // keeps the insert path panic-free.
            self.columns[i].push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    fn matching_rows(&self, predicates: &[Predicate]) -> Result<Vec<usize>, StoreError> {
        let mut selected: Option<Vec<usize>> = None;
        for p in predicates {
            let rows = self.eval_predicate(p)?;
            selected = Some(match selected {
                None => rows,
                Some(prev) => {
                    // Intersect two sorted lists.
                    let set: std::collections::HashSet<usize> = rows.into_iter().collect();
                    prev.into_iter().filter(|r| set.contains(r)).collect()
                }
            });
        }
        Ok(selected.unwrap_or_else(|| (0..self.rows).collect()))
    }

    fn eval_predicate(&self, p: &Predicate) -> Result<Vec<usize>, StoreError> {
        match p {
            Predicate::NumBetween { column, lo, hi } => {
                let idx = self
                    .schema
                    .index_of(column)
                    .ok_or_else(|| StoreError::UnknownColumn(column.clone()))?;
                match &self.columns[idx] {
                    Column::F64(v) => Ok(v
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| **x >= *lo && **x <= *hi)
                        .map(|(i, _)| i)
                        .collect()),
                    Column::I64(v) => Ok(v
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| (**x as f64) >= *lo && (**x as f64) <= *hi)
                        .map(|(i, _)| i)
                        .collect()),
                    Column::Str { .. } => Err(StoreError::SchemaMismatch(format!(
                        "numeric predicate on string column {column:?}"
                    ))),
                }
            }
            Predicate::StrEq { column, value } => {
                let idx = self
                    .schema
                    .index_of(column)
                    .ok_or_else(|| StoreError::UnknownColumn(column.clone()))?;
                match &self.columns[idx] {
                    Column::Str { lookup, codes, .. } => match lookup.get(value) {
                        None => Ok(Vec::new()),
                        Some(code) => Ok(codes
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| *c == code)
                            .map(|(i, _)| i)
                            .collect()),
                    },
                    _ => Err(StoreError::SchemaMismatch(format!(
                        "string predicate on non-string column {column:?}"
                    ))),
                }
            }
        }
    }

    /// Rows (fully materialised) matching all predicates.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] / [`StoreError::SchemaMismatch`].
    pub fn select(&self, predicates: &[Predicate]) -> Result<Vec<Vec<Value>>, StoreError> {
        Ok(self
            .matching_rows(predicates)?
            .into_iter()
            .map(|r| self.columns.iter().map(|c| c.value_at(r)).collect())
            .collect())
    }

    /// Sum of a numeric column over rows matching the predicates,
    /// touching only the needed columns (the pushdown fast path).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] / [`StoreError::SchemaMismatch`].
    pub fn sum(&self, column: &str, predicates: &[Predicate]) -> Result<f64, StoreError> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| StoreError::UnknownColumn(column.to_string()))?;
        let rows = self.matching_rows(predicates)?;
        let col = &self.columns[idx];
        let mut total = 0.0;
        for r in rows {
            total += col.numeric_at(r).ok_or_else(|| {
                StoreError::SchemaMismatch(format!("sum over non-numeric column {column:?}"))
            })?;
        }
        Ok(total)
    }

    /// Mean of a numeric column over matching rows (`None` if no rows).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnTable::sum`].
    pub fn mean(&self, column: &str, predicates: &[Predicate]) -> Result<Option<f64>, StoreError> {
        let rows = self.matching_rows(predicates)?;
        if rows.is_empty() {
            return Ok(None);
        }
        let n = rows.len() as f64;
        Ok(Some(self.sum(column, predicates)? / n))
    }

    /// Row-at-a-time full-materialisation scan computing the same sum —
    /// the naive baseline benchmarked against [`ColumnTable::sum`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnTable::sum`].
    pub fn sum_rowwise(&self, column: &str, predicates: &[Predicate]) -> Result<f64, StoreError> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| StoreError::UnknownColumn(column.to_string()))?;
        let mut total = 0.0;
        for r in 0..self.rows {
            // Materialise the whole row, then test predicates on it.
            let row: Vec<Value> = self.columns.iter().map(|c| c.value_at(r)).collect();
            let mut keep = true;
            for p in predicates {
                keep &= match p {
                    Predicate::NumBetween { column, lo, hi } => {
                        let i = self
                            .schema
                            .index_of(column)
                            .ok_or_else(|| StoreError::UnknownColumn(column.clone()))?;
                        match &row[i] {
                            Value::F64(x) => *x >= *lo && *x <= *hi,
                            Value::I64(x) => (*x as f64) >= *lo && (*x as f64) <= *hi,
                            Value::Str(_) => {
                                return Err(StoreError::SchemaMismatch(
                                    "numeric predicate on string column".into(),
                                ))
                            }
                        }
                    }
                    Predicate::StrEq { column, value } => {
                        let i = self
                            .schema
                            .index_of(column)
                            .ok_or_else(|| StoreError::UnknownColumn(column.clone()))?;
                        matches!(&row[i], Value::Str(s) if s == value)
                    }
                };
            }
            if keep {
                total += match &row[idx] {
                    Value::F64(x) => *x,
                    Value::I64(x) => *x as f64,
                    Value::Str(_) => {
                        return Err(StoreError::SchemaMismatch(
                            "sum over non-numeric column".into(),
                        ))
                    }
                };
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ColumnTable {
        let schema = Schema::new(vec![
            ("price", ColumnType::F64),
            ("qty", ColumnType::I64),
            ("cat", ColumnType::Str),
        ]);
        let mut t = ColumnTable::new(schema);
        for i in 0..100i64 {
            let cat = if i % 3 == 0 { "food" } else { "retail" };
            t.append(vec![(i as f64).into(), i.into(), cat.into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn append_validates_arity_and_types() {
        let mut t = table();
        assert!(matches!(
            t.append(vec![1.0.into()]),
            Err(StoreError::SchemaMismatch(_))
        ));
        assert!(matches!(
            t.append(vec![1.0.into(), 2.0.into(), "x".into()]),
            Err(StoreError::SchemaMismatch(_))
        ));
        assert_eq!(t.len(), 100, "failed appends must not change the table");
    }

    #[test]
    fn select_with_predicates() {
        let t = table();
        let rows = t
            .select(&[
                Predicate::NumBetween {
                    column: "price".into(),
                    lo: 10.0,
                    hi: 20.0,
                },
                Predicate::StrEq {
                    column: "cat".into(),
                    value: "food".into(),
                },
            ])
            .unwrap();
        // Multiples of 3 in [10, 20]: 12, 15, 18.
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert_eq!(row[2], Value::Str("food".into()));
        }
    }

    #[test]
    fn select_no_predicates_returns_everything() {
        let t = table();
        assert_eq!(t.select(&[]).unwrap().len(), 100);
    }

    #[test]
    fn sum_and_mean_agree_with_rowwise() {
        let t = table();
        let preds = [Predicate::StrEq {
            column: "cat".into(),
            value: "retail".into(),
        }];
        let fast = t.sum("price", &preds).unwrap();
        let slow = t.sum_rowwise("price", &preds).unwrap();
        assert_eq!(fast, slow);
        let mean = t.mean("price", &preds).unwrap().unwrap();
        assert!((mean - fast / 66.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_selection_is_none() {
        let t = table();
        let preds = [Predicate::StrEq {
            column: "cat".into(),
            value: "nonexistent".into(),
        }];
        assert_eq!(t.mean("price", &preds).unwrap(), None);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(matches!(
            t.sum("nope", &[]),
            Err(StoreError::UnknownColumn(_))
        ));
        assert!(matches!(
            t.select(&[Predicate::NumBetween {
                column: "nope".into(),
                lo: 0.0,
                hi: 1.0
            }]),
            Err(StoreError::UnknownColumn(_))
        ));
    }

    #[test]
    fn type_mismatched_predicates_error() {
        let t = table();
        assert!(matches!(
            t.select(&[Predicate::NumBetween {
                column: "cat".into(),
                lo: 0.0,
                hi: 1.0
            }]),
            Err(StoreError::SchemaMismatch(_))
        ));
        assert!(matches!(
            t.select(&[Predicate::StrEq {
                column: "price".into(),
                value: "x".into()
            }]),
            Err(StoreError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn dictionary_encoding_deduplicates() {
        let t = table();
        // Internal check via behaviour: equality select on either value
        // partitions the rows exactly.
        let food = t
            .select(&[Predicate::StrEq {
                column: "cat".into(),
                value: "food".into(),
            }])
            .unwrap()
            .len();
        let retail = t
            .select(&[Predicate::StrEq {
                column: "cat".into(),
                value: "retail".into(),
            }])
            .unwrap()
            .len();
        assert_eq!(food + retail, 100);
    }

    #[test]
    fn i64_numeric_predicates_work() {
        let t = table();
        let rows = t
            .select(&[Predicate::NumBetween {
                column: "qty".into(),
                lo: 98.0,
                hi: 200.0,
            }])
            .unwrap();
        assert_eq!(rows.len(), 2);
    }
}
