//! Error types for the storage substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the storage engines.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A row's arity or types did not match the schema.
    SchemaMismatch(String),
    /// A series id was not registered.
    UnknownSeries(u64),
    /// Samples must be appended in non-decreasing time order per series.
    OutOfOrderSample {
        /// Series the sample was appended to.
        series: u64,
        /// Timestamp of the rejected sample, in microseconds.
        t_us: u64,
        /// Timestamp of the latest accepted sample, in microseconds.
        last_us: u64,
    },
    /// A parameter was out of its valid domain.
    InvalidParameter(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            StoreError::SchemaMismatch(what) => write!(f, "schema mismatch: {what}"),
            StoreError::UnknownSeries(id) => write!(f, "unknown series {id}"),
            StoreError::OutOfOrderSample {
                series,
                t_us,
                last_us,
            } => write!(
                f,
                "out-of-order sample for series {series}: {t_us} < last {last_us}"
            ),
            StoreError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(StoreError::UnknownColumn("x".into())
            .to_string()
            .contains("x"));
        assert!(StoreError::OutOfOrderSample {
            series: 1,
            t_us: 5,
            last_us: 9
        }
        .to_string()
        .contains("out-of-order"));
    }
}
