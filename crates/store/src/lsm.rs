//! A log-structured merge key-value store.
//!
//! Writes land in a sorted memtable; when it exceeds the flush threshold
//! it becomes an immutable sorted run. Reads consult the memtable, then
//! runs newest-first. Compaction merges all runs, dropping shadowed
//! versions and tombstones. The shape — write-optimised ingest with
//! read amplification bounded by run count — is the same trade the
//! paper's data-hungry ingestion side makes.

use std::collections::BTreeMap;
use std::ops::Bound;

use augur_log::{EventLog, Level, LogSite, SymId, Value};
use augur_telemetry::{Clock, Counter, FlightRecorder, Histogram, NameId, Registry, TraceContext};
use bytes::Bytes;

use crate::error::StoreError;

/// Tuning for [`LsmStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmParams {
    /// Memtable entry count that triggers a flush to a sorted run.
    pub memtable_flush_entries: usize,
    /// Run count that triggers automatic full compaction.
    pub compaction_trigger_runs: usize,
}

impl Default for LsmParams {
    fn default() -> Self {
        LsmParams {
            memtable_flush_entries: 4096,
            compaction_trigger_runs: 8,
        }
    }
}

/// Statistics snapshot of an [`LsmStore`].
///
/// A view over the store's telemetry counters plus its structural state;
/// when the store is [instrumented](LsmStore::instrument), the same
/// flush/compaction counts are visible through the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LsmStats {
    /// Entries currently in the memtable.
    pub memtable_entries: usize,
    /// Number of immutable sorted runs.
    pub runs: usize,
    /// Total entries across runs (including shadowed and tombstones).
    pub run_entries: usize,
    /// Flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

// A run entry: None = tombstone.
type RunEntry = (Bytes, Option<Bytes>);

/// The LSM store; see the module docs.
///
/// # Example
///
/// ```
/// use augur_store::LsmStore;
///
/// let mut db = LsmStore::new(Default::default());
/// db.put(b"user:1".as_ref(), b"alice".as_ref());
/// assert_eq!(db.get(b"user:1").as_deref(), Some(b"alice".as_ref()));
/// db.delete(b"user:1".as_ref());
/// assert_eq!(db.get(b"user:1"), None);
/// ```
#[derive(Debug)]
pub struct LsmStore {
    params: LsmParams,
    memtable: BTreeMap<Bytes, Option<Bytes>>,
    runs: Vec<Vec<RunEntry>>, // newest last; each sorted by key
    metrics: LsmMetrics,
    flight: Option<LsmFlight>,
    log: Option<LsmLog>,
}

/// Flight-recorder wiring (see [`LsmStore::instrument_flight`]): flush
/// and compaction work become causally linked spans on the ring.
#[derive(Clone)]
struct LsmFlight {
    recorder: FlightRecorder,
    clock: Clock,
    parent: TraceContext,
    flush_name: NameId,
    compact_name: NameId,
    /// Ordinal salting each event's span id so repeated flushes stay
    /// distinct (and deterministic) within one store's trace.
    ops: u64,
}

impl std::fmt::Debug for LsmFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmFlight")
            .field("parent", &self.parent)
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}

/// Structured-log wiring (see [`LsmStore::instrument_log`]): flush and
/// compaction *decisions* — what fired and why — become INFO records.
#[derive(Clone)]
struct LsmLog {
    log: EventLog,
    clock: Clock,
    parent: TraceContext,
    flush_msg: SymId,
    compact_msg: SymId,
    key_entries: SymId,
    key_runs: SymId,
    key_trigger: SymId,
    trigger_threshold: SymId,
    trigger_forced: SymId,
    site: std::sync::Arc<LogSite>,
    /// Ordinal salting each record's span id, mirroring [`LsmFlight`].
    ops: u64,
}

impl std::fmt::Debug for LsmLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmLog")
            .field("parent", &self.parent)
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}

/// Telemetry handles: detached atomics by default, swapped for
/// registry-registered families by [`LsmStore::instrument`].
#[derive(Debug)]
struct LsmMetrics {
    flushes: Counter,
    compactions: Counter,
    /// Sorted runs probed per [`LsmStore::get`] — the store's read
    /// amplification (0 = memtable hit).
    read_amp: Histogram,
}

impl LsmMetrics {
    fn detached() -> LsmMetrics {
        LsmMetrics {
            flushes: Counter::new(),
            compactions: Counter::new(),
            read_amp: Histogram::new(),
        }
    }
}

impl Clone for LsmStore {
    /// Clones the data; the clone gets its own metric cells seeded with
    /// the current flush/compaction counts (shared cells would make two
    /// independent stores double-count) and a fresh read-amplification
    /// histogram.
    fn clone(&self) -> Self {
        LsmStore {
            params: self.params,
            memtable: self.memtable.clone(),
            runs: self.runs.clone(),
            metrics: LsmMetrics {
                flushes: Counter::with_value(self.metrics.flushes.get()),
                compactions: Counter::with_value(self.metrics.compactions.get()),
                read_amp: Histogram::new(),
            },
            // The clone keeps recording to the same (shared) ring; its op
            // ordinal carries over so span ids stay distinct.
            flight: self.flight.clone(),
            log: self.log.clone(),
        }
    }
}

impl Default for LsmStore {
    fn default() -> Self {
        Self::new(LsmParams::default())
    }
}

impl LsmStore {
    /// Creates an empty store.
    pub fn new(params: LsmParams) -> Self {
        LsmStore {
            params,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            metrics: LsmMetrics::detached(),
            flight: None,
            log: None,
        }
    }

    /// Publishes this store's metrics through `registry` under the
    /// families `lsm_flushes_total`, `lsm_compactions_total`, and
    /// `lsm_read_amplification`, all labeled `{store=name}`. Counts
    /// accumulated so far carry over; read-amplification history does not
    /// (histograms cannot be seeded).
    pub fn instrument(&mut self, registry: &Registry, name: &str) {
        let labels = [("store", name)];
        let flushes = registry.counter_labeled("lsm_flushes_total", &labels);
        flushes.add(self.metrics.flushes.get());
        let compactions = registry.counter_labeled("lsm_compactions_total", &labels);
        compactions.add(self.metrics.compactions.get());
        self.metrics = LsmMetrics {
            flushes,
            compactions,
            read_amp: registry.histogram_labeled("lsm_read_amplification", &labels),
        };
    }

    /// Records flush and compaction work as causal flight spans under
    /// `parent`: `lsm/flush` spans carry a **modeled** duration of one
    /// microsecond per entry written (the workspace's work-unit
    /// convention), `lsm/compact` one per entry merged, both timestamped
    /// on `clock`. With a deterministic clock and workload the emitted
    /// events are bit-for-bit reproducible.
    pub fn instrument_flight(
        &mut self,
        recorder: &FlightRecorder,
        clock: &Clock,
        parent: TraceContext,
    ) {
        self.flight = Some(LsmFlight {
            flush_name: recorder.intern("lsm/flush"),
            compact_name: recorder.intern("lsm/compact"),
            recorder: recorder.clone(),
            clock: clock.clone(),
            parent,
            ops: 0,
        });
    }

    /// Attaches a structured log: every flush and compaction records an
    /// INFO entry under `parent` saying what fired (`lsm/flush`,
    /// `lsm/compact`), how much it moved (`entries`, `runs`), and **why**
    /// (`trigger=threshold` when the memtable or run count crossed its
    /// configured limit, `trigger=forced` for explicit calls) —
    /// timestamped on `clock`, deterministic under a manual one.
    pub fn instrument_log(&mut self, log: &EventLog, clock: &Clock, parent: TraceContext) {
        self.log = Some(LsmLog {
            flush_msg: log.intern("lsm/flush"),
            compact_msg: log.intern("lsm/compact"),
            key_entries: log.intern("entries"),
            key_runs: log.intern("runs"),
            key_trigger: log.intern("trigger"),
            trigger_threshold: log.intern("threshold"),
            trigger_forced: log.intern("forced"),
            site: std::sync::Arc::new(LogSite::unlimited()),
            log: log.clone(),
            clock: clock.clone(),
            parent,
            ops: 0,
        });
    }

    /// Emits one flush/compaction decision record (no-op when
    /// [`LsmStore::instrument_log`] was never called).
    fn log_decision(&mut self, compact: bool, entries: u64, runs: u64, forced: bool) {
        if let Some(l) = &mut self.log {
            let (msg, salt) = if compact {
                (l.compact_msg, 0x636f_6d70u64)
            } else {
                (l.flush_msg, 0x666c_7573u64)
            };
            let ctx = l.parent.child(salt ^ (l.ops << 32));
            l.ops += 1;
            let trigger = if forced {
                l.trigger_forced
            } else {
                l.trigger_threshold
            };
            l.log.record(
                &l.site,
                Level::Info,
                ctx,
                msg,
                l.clock.now_micros(),
                &[
                    (l.key_entries, Value::U64(entries)),
                    (l.key_runs, Value::U64(runs)),
                    (l.key_trigger, Value::Sym(trigger)),
                ],
            );
        }
    }

    /// Emits one flush/compaction span on the flight ring (no-op when
    /// [`LsmStore::instrument_flight`] was never called).
    fn flight_span(&mut self, compact: bool, modeled_entries: u64) {
        if let Some(f) = &mut self.flight {
            let (name, salt) = if compact {
                (f.compact_name, 0x636f_6d70u64) // "comp"
            } else {
                (f.flush_name, 0x666c_7573u64) // "flus"
            };
            let ctx = f.parent.child(salt ^ (f.ops << 32));
            f.ops += 1;
            f.recorder
                .record_span(ctx, name, f.clock.now_micros(), modeled_entries);
        }
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.memtable.insert(key.into(), Some(value.into()));
        self.maybe_flush();
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.memtable.insert(key.into(), None);
        self.maybe_flush();
    }

    /// Looks a key up (memtable first, then runs newest-first), recording
    /// the number of runs probed into the read-amplification histogram.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(v) = self.memtable.get(key) {
            self.metrics.read_amp.record(0);
            return v.clone();
        }
        let mut probed = 0u64;
        for run in self.runs.iter().rev() {
            probed += 1;
            if let Ok(i) = run.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                self.metrics.read_amp.record(probed);
                return run[i].1.clone();
            }
        }
        self.metrics.read_amp.record(probed);
        None
    }

    /// Iterates live key-value pairs with keys in `[start, end)`, in key
    /// order, resolving shadowing across memtable and runs.
    pub fn scan(&self, start: &[u8], end: &[u8]) -> Vec<(Bytes, Bytes)> {
        // Merge all sources; newer sources win. Collect into a BTreeMap
        // applying oldest-first so newer overwrite.
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        for run in &self.runs {
            let from = run.partition_point(|(k, _)| k.as_ref() < start);
            for (k, v) in &run[from..] {
                if k.as_ref() >= end {
                    break;
                }
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in self
            .memtable
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
        {
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Number of live keys (linear; intended for tests and reports).
    pub fn len(&self) -> usize {
        // Merge every source, newest last, and count non-tombstones.
        let mut merged: BTreeMap<&[u8], bool> = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run {
                merged.insert(k.as_ref(), v.is_some());
            }
        }
        for (k, v) in &self.memtable {
            merged.insert(k.as_ref(), v.is_some());
        }
        merged.values().filter(|live| **live).count()
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces the memtable out to a run.
    pub fn flush(&mut self) {
        self.flush_inner(true);
    }

    fn flush_inner(&mut self, forced: bool) {
        if self.memtable.is_empty() {
            return;
        }
        let run: Vec<RunEntry> = std::mem::take(&mut self.memtable).into_iter().collect();
        let entries = run.len() as u64;
        self.runs.push(run);
        self.metrics.flushes.inc();
        self.flight_span(false, entries);
        self.log_decision(false, entries, self.runs.len() as u64, forced);
        if self.runs.len() >= self.params.compaction_trigger_runs {
            self.compact_inner(false);
        }
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.params.memtable_flush_entries {
            self.flush_inner(false);
        }
    }

    /// Merges all runs into one, dropping shadowed versions and
    /// tombstones.
    pub fn compact(&mut self) {
        self.compact_inner(true);
    }

    fn compact_inner(&mut self, forced: bool) {
        if self.runs.len() <= 1 {
            return;
        }
        let runs_before = self.runs.len() as u64;
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        let mut merged_entries = 0u64;
        for run in self.runs.drain(..) {
            merged_entries += run.len() as u64;
            for (k, v) in run {
                merged.insert(k, v);
            }
        }
        let compacted: Vec<RunEntry> = merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        if !compacted.is_empty() {
            self.runs.push(compacted);
        }
        self.metrics.compactions.inc();
        self.flight_span(true, merged_entries);
        self.log_decision(true, merged_entries, runs_before, forced);
    }

    /// Statistics snapshot (a view over the telemetry counters).
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            memtable_entries: self.memtable.len(),
            runs: self.runs.len(),
            run_entries: self.runs.iter().map(|r| r.len()).sum(),
            flushes: self.metrics.flushes.get(),
            compactions: self.metrics.compactions.get(),
        }
    }

    /// Read-amplification quantiles observed so far: the (p50, p99) of
    /// runs probed per `get` (0 means the memtable answered).
    pub fn read_amplification(&self) -> (u64, u64) {
        (
            self.metrics.read_amp.quantile(0.50),
            self.metrics.read_amp.quantile(0.99),
        )
    }

    /// Validates an `LsmParams` before use elsewhere.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidParameter`] if any threshold is zero.
    pub fn validate_params(params: &LsmParams) -> Result<(), StoreError> {
        if params.memtable_flush_entries == 0 {
            return Err(StoreError::InvalidParameter("memtable_flush_entries"));
        }
        if params.compaction_trigger_runs == 0 {
            return Err(StoreError::InvalidParameter("compaction_trigger_runs"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LsmStore {
        LsmStore::new(LsmParams {
            memtable_flush_entries: 8,
            compaction_trigger_runs: 4,
        })
    }

    #[test]
    fn instrumented_store_emits_causal_flush_and_compact_spans() {
        use augur_telemetry::{FlightEventKind, ManualTime};
        use std::sync::Arc;

        let recorder = FlightRecorder::new(256);
        let clock: Clock = Arc::new(ManualTime::new());
        let parent = TraceContext::root(7, 0xDB);
        let mut db = LsmStore::new(LsmParams {
            memtable_flush_entries: 4,
            compaction_trigger_runs: 2,
        });
        db.instrument_flight(&recorder, &clock, parent);
        // 12 distinct keys through a 4-entry memtable: 3 flushes, and the
        // 2-run compaction trigger fires along the way.
        for i in 0..12u8 {
            db.put(vec![i], vec![i]);
        }
        let events = recorder.drain();
        assert_eq!(recorder.dropped_events(), 0);
        let flushes: Vec<_> = events.iter().filter(|e| e.name == "lsm/flush").collect();
        let compacts: Vec<_> = events.iter().filter(|e| e.name == "lsm/compact").collect();
        assert_eq!(flushes.len() as u64, db.stats().flushes);
        assert_eq!(compacts.len() as u64, db.stats().compactions);
        assert!(!flushes.is_empty() && !compacts.is_empty());
        let mut span_ids = std::collections::HashSet::new();
        for e in &events {
            assert_eq!(e.kind, FlightEventKind::Span);
            assert_eq!(e.trace_id, parent.trace_id, "same causal tree");
            assert_eq!(e.parent_span_id, parent.span_id, "child of store root");
            assert!(span_ids.insert(e.span_id), "span ids must be distinct");
        }
        for f in &flushes {
            assert_eq!(f.dur_us, 4, "modeled 1 us per flushed entry");
        }
    }

    #[test]
    fn log_records_carry_flush_and_compaction_rationale() {
        use augur_telemetry::ManualTime;
        use std::sync::Arc;

        let log = EventLog::new(64);
        let clock: Clock = Arc::new(ManualTime::new());
        let parent = TraceContext::root(7, 0xDB);
        let mut db = LsmStore::new(LsmParams {
            memtable_flush_entries: 4,
            compaction_trigger_runs: 2,
        });
        db.instrument_log(&log, &clock, parent);
        for i in 0..8u8 {
            db.put(vec![i], vec![i]);
        }
        db.put(vec![99], vec![99]);
        db.flush(); // explicit: must say trigger=forced
        let records = log.drain();
        assert_eq!(log.dropped_records(), 0);
        let trigger_of = |r: &augur_log::LogRecord| -> String {
            r.fields
                .iter()
                .find(|(k, _)| k == "trigger")
                .map(|(_, v)| match v {
                    augur_log::FieldValue::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .unwrap_or_default()
        };
        let flushes: Vec<_> = records.iter().filter(|r| r.msg == "lsm/flush").collect();
        let compacts: Vec<_> = records.iter().filter(|r| r.msg == "lsm/compact").collect();
        assert_eq!(flushes.len() as u64, db.stats().flushes);
        assert_eq!(compacts.len() as u64, db.stats().compactions);
        // The two memtable-threshold flushes say so; the explicit one
        // says forced. The auto compaction (2-run trigger) is threshold.
        assert_eq!(trigger_of(flushes[0]), "threshold");
        assert_eq!(trigger_of(flushes[1]), "threshold");
        assert_eq!(trigger_of(flushes[2]), "forced");
        assert!(compacts.iter().all(|r| trigger_of(r) == "threshold"));
        assert!(records.iter().all(|r| r.level == augur_log::Level::Info));
        assert!(records.iter().all(|r| r.trace_id == parent.trace_id));
        // Span ids stay distinct across ops (ordinal-salted).
        let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.span_id).collect();
        assert_eq!(ids.len(), records.len());
        // Entries moved are spelled out.
        assert!(flushes[0]
            .fields
            .iter()
            .any(|(k, v)| k == "entries" && *v == augur_log::FieldValue::U64(4)));
    }

    #[test]
    fn put_get_overwrite() {
        let mut db = LsmStore::default();
        db.put(b"k".as_ref(), b"v1".as_ref());
        db.put(b"k".as_ref(), b"v2".as_ref());
        assert_eq!(db.get(b"k").as_deref(), Some(b"v2".as_ref()));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn delete_shadows_older_runs() {
        let mut db = small();
        db.put(b"a".as_ref(), b"1".as_ref());
        db.flush();
        db.delete(b"a".as_ref());
        assert_eq!(db.get(b"a"), None);
        db.flush();
        assert_eq!(db.get(b"a"), None, "tombstone must survive flush");
    }

    #[test]
    fn newest_run_wins() {
        let mut db = small();
        db.put(b"x".as_ref(), b"old".as_ref());
        db.flush();
        db.put(b"x".as_ref(), b"new".as_ref());
        db.flush();
        assert_eq!(db.get(b"x").as_deref(), Some(b"new".as_ref()));
    }

    #[test]
    fn automatic_flush_on_threshold() {
        let mut db = small();
        for i in 0..20u8 {
            db.put(vec![i], vec![i]);
        }
        let s = db.stats();
        assert!(s.flushes >= 2, "flushes {}", s.flushes);
        for i in 0..20u8 {
            assert_eq!(db.get(&[i]).as_deref(), Some([i].as_ref()));
        }
    }

    #[test]
    fn compaction_collapses_runs_and_drops_tombstones() {
        let mut db = small();
        for i in 0..16u8 {
            db.put(vec![i], vec![i]);
        }
        db.flush();
        for i in 0..8u8 {
            db.delete(vec![i]);
        }
        db.flush();
        db.compact();
        let s = db.stats();
        assert_eq!(s.runs, 1);
        assert_eq!(s.run_entries, 8, "tombstones and shadowed gone");
        assert_eq!(db.len(), 8);
        assert_eq!(db.get(&[3]), None);
        assert_eq!(db.get(&[12]).as_deref(), Some([12].as_ref()));
    }

    #[test]
    fn scan_is_ordered_and_resolves_shadowing() {
        let mut db = small();
        for i in (0..30u8).rev() {
            db.put(vec![i], vec![i]);
        }
        db.delete(vec![5u8]);
        db.put(vec![6u8], vec![66u8]);
        let hits = db.scan(&[3], &[8]);
        let keys: Vec<u8> = hits.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 4, 6, 7]);
        let six = hits.iter().find(|(k, _)| k[0] == 6).unwrap();
        assert_eq!(six.1.as_ref(), &[66u8]);
    }

    #[test]
    fn stats_and_validate() {
        let db = LsmStore::default();
        assert_eq!(db.stats(), LsmStats::default());
        assert!(LsmStore::validate_params(&LsmParams::default()).is_ok());
        assert!(LsmStore::validate_params(&LsmParams {
            memtable_flush_entries: 0,
            compaction_trigger_runs: 1
        })
        .is_err());
    }

    #[test]
    fn instrument_publishes_counters_and_read_amplification() {
        let mut db = small();
        for i in 0..16u8 {
            db.put(vec![i], vec![i]);
        }
        let reg = Registry::new();
        db.instrument(&reg, "hot");
        // Pre-instrumentation flushes carried over into the registry.
        let pre = db.stats().flushes;
        assert!(pre >= 2);
        db.put(b"z".as_ref(), b"z".as_ref());
        db.flush();
        let snap = reg.snapshot();
        let flushes = snap
            .counters
            .iter()
            .find(|c| c.name == "lsm_flushes_total")
            .expect("flush counter registered");
        assert_eq!(flushes.value, pre + 1);
        assert!(flushes.labels.contains(&("store".into(), "hot".into())));
        // Probing runs records read amplification; memtable hits record 0.
        db.put(b"mem".as_ref(), b"hit".as_ref());
        let _ = db.get(b"mem");
        let _ = db.get(&[0u8]);
        let (p50, p99) = db.read_amplification();
        assert!(p99 >= p50);
        let ra = reg
            .snapshot()
            .histograms
            .into_iter()
            .find(|h| h.name == "lsm_read_amplification")
            .expect("read-amp histogram registered");
        assert_eq!(ra.stats.count, 2);
        assert_eq!(ra.stats.min, 0, "memtable hit probes zero runs");
        assert!(ra.stats.max >= 1, "run lookup probes at least one run");
    }

    #[test]
    fn clone_does_not_share_metric_cells() {
        let mut db = small();
        for i in 0..16u8 {
            db.put(vec![i], vec![i]);
        }
        let before = db.stats().flushes;
        let mut copy = db.clone();
        copy.put(b"c".as_ref(), b"c".as_ref());
        copy.flush();
        assert_eq!(db.stats().flushes, before, "original unaffected by clone");
        assert_eq!(copy.stats().flushes, before + 1);
    }

    #[test]
    fn large_workload_consistency() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut db = LsmStore::new(LsmParams {
            memtable_flush_entries: 64,
            compaction_trigger_runs: 4,
        });
        let mut model: std::collections::HashMap<u16, Option<u16>> =
            std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k: u16 = rng.gen_range(0..500);
            if rng.gen_bool(0.2) {
                db.delete(k.to_be_bytes().to_vec());
                model.insert(k, None);
            } else {
                let v: u16 = rng.gen();
                db.put(k.to_be_bytes().to_vec(), v.to_be_bytes().to_vec());
                model.insert(k, Some(v));
            }
        }
        for (k, v) in &model {
            let got = db.get(&k.to_be_bytes());
            match v {
                Some(v) => assert_eq!(got.as_deref(), Some(v.to_be_bytes().as_ref())),
                None => assert_eq!(got, None),
            }
        }
    }
}
