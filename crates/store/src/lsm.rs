//! A log-structured merge key-value store.
//!
//! Writes land in a sorted memtable; when it exceeds the flush threshold
//! it becomes an immutable sorted run. Reads consult the memtable, then
//! runs newest-first. Compaction merges all runs, dropping shadowed
//! versions and tombstones. The shape — write-optimised ingest with
//! read amplification bounded by run count — is the same trade the
//! paper's data-hungry ingestion side makes.

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

use crate::error::StoreError;

/// Tuning for [`LsmStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmParams {
    /// Memtable entry count that triggers a flush to a sorted run.
    pub memtable_flush_entries: usize,
    /// Run count that triggers automatic full compaction.
    pub compaction_trigger_runs: usize,
}

impl Default for LsmParams {
    fn default() -> Self {
        LsmParams {
            memtable_flush_entries: 4096,
            compaction_trigger_runs: 8,
        }
    }
}

/// Statistics snapshot of an [`LsmStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LsmStats {
    /// Entries currently in the memtable.
    pub memtable_entries: usize,
    /// Number of immutable sorted runs.
    pub runs: usize,
    /// Total entries across runs (including shadowed and tombstones).
    pub run_entries: usize,
    /// Flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

// A run entry: None = tombstone.
type RunEntry = (Bytes, Option<Bytes>);

/// The LSM store; see the module docs.
///
/// # Example
///
/// ```
/// use augur_store::LsmStore;
///
/// let mut db = LsmStore::new(Default::default());
/// db.put(b"user:1".as_ref(), b"alice".as_ref());
/// assert_eq!(db.get(b"user:1").as_deref(), Some(b"alice".as_ref()));
/// db.delete(b"user:1".as_ref());
/// assert_eq!(db.get(b"user:1"), None);
/// ```
#[derive(Debug, Clone)]
pub struct LsmStore {
    params: LsmParams,
    memtable: BTreeMap<Bytes, Option<Bytes>>,
    runs: Vec<Vec<RunEntry>>, // newest last; each sorted by key
    stats_flushes: u64,
    stats_compactions: u64,
}

impl Default for LsmStore {
    fn default() -> Self {
        Self::new(LsmParams::default())
    }
}

impl LsmStore {
    /// Creates an empty store.
    pub fn new(params: LsmParams) -> Self {
        LsmStore {
            params,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            stats_flushes: 0,
            stats_compactions: 0,
        }
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.memtable.insert(key.into(), Some(value.into()));
        self.maybe_flush();
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        self.memtable.insert(key.into(), None);
        self.maybe_flush();
    }

    /// Looks a key up (memtable first, then runs newest-first).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(v) = self.memtable.get(key) {
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            if let Ok(i) = run.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                return run[i].1.clone();
            }
        }
        None
    }

    /// Iterates live key-value pairs with keys in `[start, end)`, in key
    /// order, resolving shadowing across memtable and runs.
    pub fn scan(&self, start: &[u8], end: &[u8]) -> Vec<(Bytes, Bytes)> {
        // Merge all sources; newer sources win. Collect into a BTreeMap
        // applying oldest-first so newer overwrite.
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        for run in &self.runs {
            let from = run.partition_point(|(k, _)| k.as_ref() < start);
            for (k, v) in &run[from..] {
                if k.as_ref() >= end {
                    break;
                }
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in self
            .memtable
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
        {
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Number of live keys (linear; intended for tests and reports).
    pub fn len(&self) -> usize {
        // Merge every source, newest last, and count non-tombstones.
        let mut merged: BTreeMap<&[u8], bool> = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run {
                merged.insert(k.as_ref(), v.is_some());
            }
        }
        for (k, v) in &self.memtable {
            merged.insert(k.as_ref(), v.is_some());
        }
        merged.values().filter(|live| **live).count()
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forces the memtable out to a run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let run: Vec<RunEntry> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.runs.push(run);
        self.stats_flushes += 1;
        if self.runs.len() >= self.params.compaction_trigger_runs {
            self.compact();
        }
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.params.memtable_flush_entries {
            self.flush();
        }
    }

    /// Merges all runs into one, dropping shadowed versions and
    /// tombstones.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        for run in self.runs.drain(..) {
            for (k, v) in run {
                merged.insert(k, v);
            }
        }
        let compacted: Vec<RunEntry> = merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        if !compacted.is_empty() {
            self.runs.push(compacted);
        }
        self.stats_compactions += 1;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            memtable_entries: self.memtable.len(),
            runs: self.runs.len(),
            run_entries: self.runs.iter().map(|r| r.len()).sum(),
            flushes: self.stats_flushes,
            compactions: self.stats_compactions,
        }
    }

    /// Validates an `LsmParams` before use elsewhere.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidParameter`] if any threshold is zero.
    pub fn validate_params(params: &LsmParams) -> Result<(), StoreError> {
        if params.memtable_flush_entries == 0 {
            return Err(StoreError::InvalidParameter("memtable_flush_entries"));
        }
        if params.compaction_trigger_runs == 0 {
            return Err(StoreError::InvalidParameter("compaction_trigger_runs"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LsmStore {
        LsmStore::new(LsmParams {
            memtable_flush_entries: 8,
            compaction_trigger_runs: 4,
        })
    }

    #[test]
    fn put_get_overwrite() {
        let mut db = LsmStore::default();
        db.put(b"k".as_ref(), b"v1".as_ref());
        db.put(b"k".as_ref(), b"v2".as_ref());
        assert_eq!(db.get(b"k").as_deref(), Some(b"v2".as_ref()));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn delete_shadows_older_runs() {
        let mut db = small();
        db.put(b"a".as_ref(), b"1".as_ref());
        db.flush();
        db.delete(b"a".as_ref());
        assert_eq!(db.get(b"a"), None);
        db.flush();
        assert_eq!(db.get(b"a"), None, "tombstone must survive flush");
    }

    #[test]
    fn newest_run_wins() {
        let mut db = small();
        db.put(b"x".as_ref(), b"old".as_ref());
        db.flush();
        db.put(b"x".as_ref(), b"new".as_ref());
        db.flush();
        assert_eq!(db.get(b"x").as_deref(), Some(b"new".as_ref()));
    }

    #[test]
    fn automatic_flush_on_threshold() {
        let mut db = small();
        for i in 0..20u8 {
            db.put(vec![i], vec![i]);
        }
        let s = db.stats();
        assert!(s.flushes >= 2, "flushes {}", s.flushes);
        for i in 0..20u8 {
            assert_eq!(db.get(&[i]).as_deref(), Some([i].as_ref()));
        }
    }

    #[test]
    fn compaction_collapses_runs_and_drops_tombstones() {
        let mut db = small();
        for i in 0..16u8 {
            db.put(vec![i], vec![i]);
        }
        db.flush();
        for i in 0..8u8 {
            db.delete(vec![i]);
        }
        db.flush();
        db.compact();
        let s = db.stats();
        assert_eq!(s.runs, 1);
        assert_eq!(s.run_entries, 8, "tombstones and shadowed gone");
        assert_eq!(db.len(), 8);
        assert_eq!(db.get(&[3]), None);
        assert_eq!(db.get(&[12]).as_deref(), Some([12].as_ref()));
    }

    #[test]
    fn scan_is_ordered_and_resolves_shadowing() {
        let mut db = small();
        for i in (0..30u8).rev() {
            db.put(vec![i], vec![i]);
        }
        db.delete(vec![5u8]);
        db.put(vec![6u8], vec![66u8]);
        let hits = db.scan(&[3], &[8]);
        let keys: Vec<u8> = hits.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 4, 6, 7]);
        let six = hits.iter().find(|(k, _)| k[0] == 6).unwrap();
        assert_eq!(six.1.as_ref(), &[66u8]);
    }

    #[test]
    fn stats_and_validate() {
        let db = LsmStore::default();
        assert_eq!(db.stats(), LsmStats::default());
        assert!(LsmStore::validate_params(&LsmParams::default()).is_ok());
        assert!(LsmStore::validate_params(&LsmParams {
            memtable_flush_entries: 0,
            compaction_trigger_runs: 1
        })
        .is_err());
    }

    #[test]
    fn large_workload_consistency() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut db = LsmStore::new(LsmParams {
            memtable_flush_entries: 64,
            compaction_trigger_runs: 4,
        });
        let mut model: std::collections::HashMap<u16, Option<u16>> =
            std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k: u16 = rng.gen_range(0..500);
            if rng.gen_bool(0.2) {
                db.delete(k.to_be_bytes().to_vec());
                model.insert(k, None);
            } else {
                let v: u16 = rng.gen();
                db.put(k.to_be_bytes().to_vec(), v.to_be_bytes().to_vec());
                model.insert(k, Some(v));
            }
        }
        for (k, v) in &model {
            let got = db.get(&k.to_be_bytes());
            match v {
                Some(v) => assert_eq!(got.as_deref(), Some(v.to_be_bytes().as_ref())),
                None => assert_eq!(got, None),
            }
        }
    }
}
