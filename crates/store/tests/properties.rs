//! Property-based tests for the storage substrate: the LSM store is
//! checked against a model (HashMap), the time-series store against
//! direct slicing, and the columnar table against row-wise evaluation.

use augur_store::{
    ColumnTable, ColumnType, Downsample, LsmParams, LsmStore, Predicate, Schema, TimeSeriesStore,
    Value,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u16),
    Delete(u8),
    Flush,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #[test]
    fn lsm_matches_model_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut db = LsmStore::new(LsmParams {
            memtable_flush_entries: 16,
            compaction_trigger_runs: 3,
        });
        let mut model: std::collections::HashMap<u8, Option<u16>> = Default::default();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(vec![*k], v.to_be_bytes().to_vec());
                    model.insert(*k, Some(*v));
                }
                Op::Delete(k) => {
                    db.delete(vec![*k]);
                    model.insert(*k, None);
                }
                Op::Flush => db.flush(),
                Op::Compact => db.compact(),
            }
        }
        for (k, v) in &model {
            let got = db.get(&[*k]);
            match v {
                Some(v) => {
                    let want = v.to_be_bytes();
                    prop_assert_eq!(got.as_deref(), Some(want.as_ref()));
                }
                None => prop_assert_eq!(got, None),
            }
        }
        // Scan over the full key range agrees with the model's live set.
        let live = model.values().filter(|v| v.is_some()).count();
        prop_assert_eq!(db.scan(&[], &[0xFF, 0xFF]).len(), live);
    }

    #[test]
    fn timeseries_range_and_downsample_agree_with_slicing(
        values in prop::collection::vec(-1e3f64..1e3, 1..200),
        bucket_us in 1_000u64..50_000,
    ) {
        let mut ts = TimeSeriesStore::new();
        let id = ts.create_series("s");
        for (i, &v) in values.iter().enumerate() {
            ts.append(id, i as u64 * 500, v).unwrap();
        }
        let end = values.len() as u64 * 500;
        // Range query equals direct slice.
        let lo = end / 4;
        let hi = end / 2 + 1;
        let got = ts.range(id, lo, hi).unwrap();
        let want: Vec<f64> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let t = *i as u64 * 500;
                t >= lo && t < hi
            })
            .map(|(_, v)| *v)
            .collect();
        prop_assert_eq!(got.len(), want.len());
        // Downsampled counts sum to the total sample count.
        let buckets = ts.downsample(id, 0, end, bucket_us, Downsample::Count).unwrap();
        let total: f64 = buckets.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total as usize, values.len());
        // Mean of each bucket lies within the bucket's min/max.
        let means = ts.downsample(id, 0, end, bucket_us, Downsample::Mean).unwrap();
        let mins = ts.downsample(id, 0, end, bucket_us, Downsample::Min).unwrap();
        let maxs = ts.downsample(id, 0, end, bucket_us, Downsample::Max).unwrap();
        for ((_, mean), ((_, lo), (_, hi))) in means.iter().zip(mins.iter().zip(maxs.iter())) {
            prop_assert!(*mean >= *lo - 1e-9 && *mean <= *hi + 1e-9);
        }
    }

    #[test]
    fn columnar_pushdown_equals_rowwise(
        rows in prop::collection::vec((-1e3f64..1e3, 0i64..100, 0usize..4), 1..200),
        lo in -500.0f64..0.0,
        hi in 0.0f64..500.0,
    ) {
        let cats = ["a", "b", "c", "d"];
        let schema = Schema::new(vec![
            ("price", ColumnType::F64),
            ("qty", ColumnType::I64),
            ("cat", ColumnType::Str),
        ]);
        let mut t = ColumnTable::new(schema);
        for &(p, q, c) in &rows {
            t.append(vec![Value::F64(p), Value::I64(q), cats[c].into()]).unwrap();
        }
        let preds = [
            Predicate::NumBetween { column: "price".into(), lo, hi },
            Predicate::StrEq { column: "cat".into(), value: "b".into() },
        ];
        let fast = t.sum("qty", &preds).unwrap();
        let slow = t.sum_rowwise("qty", &preds).unwrap();
        prop_assert!((fast - slow).abs() < 1e-9);
        let selected = t.select(&preds).unwrap();
        let manual = rows
            .iter()
            .filter(|(p, _, c)| *p >= lo && *p <= hi && cats[*c] == "b")
            .count();
        prop_assert_eq!(selected.len(), manual);
    }
}
