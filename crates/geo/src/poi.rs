//! Points of interest and a clustered synthetic generator.
//!
//! The paper's tourism and retail scenarios assume POI databases and
//! geocoded social feeds ("Junaio and Wikitude AR browsers overlay
//! geospatial-related data"). Those feeds are proprietary, so
//! [`PoiGenerator`] synthesises a database with the two properties the
//! experiments depend on: *clustered geography* (POIs concentrate around
//! hotspots the way venues concentrate downtown) and *Zipf-skewed
//! popularity* (a few venues draw most visits).

use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bbox::Rect;
use crate::coord::{Enu, GeoPoint, LocalFrame};
use crate::error::GeoError;
use crate::rtree::RTree;

/// Opaque identifier for a point of interest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PoiId(pub u64);

impl std::fmt::Display for PoiId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "poi:{}", self.0)
    }
}

/// Venue categories, mirroring the application domains of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiCategory {
    /// Shops, malls, product displays (§3.1).
    Retail,
    /// Restaurants and cafes.
    Food,
    /// Landmarks, museums, historical sites (§3.2).
    Landmark,
    /// Hospitals, clinics, pharmacies (§3.3).
    Health,
    /// Transit stops, government offices, utilities (§3.4).
    PublicService,
    /// Hotels and rest sites.
    Lodging,
}

impl PoiCategory {
    /// All categories, for iteration in generators and reports.
    pub const ALL: [PoiCategory; 6] = [
        PoiCategory::Retail,
        PoiCategory::Food,
        PoiCategory::Landmark,
        PoiCategory::Health,
        PoiCategory::PublicService,
        PoiCategory::Lodging,
    ];
}

impl std::fmt::Display for PoiCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PoiCategory::Retail => "retail",
            PoiCategory::Food => "food",
            PoiCategory::Landmark => "landmark",
            PoiCategory::Health => "health",
            PoiCategory::PublicService => "public-service",
            PoiCategory::Lodging => "lodging",
        };
        f.write_str(s)
    }
}

/// A point of interest: location plus the descriptive payload AR overlays
/// draw from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Stable identifier.
    pub id: PoiId,
    /// Display name.
    pub name: String,
    /// Venue category.
    pub category: PoiCategory,
    /// Geodetic position.
    pub position: GeoPoint,
    /// Popularity weight in `[0, 1]`; Zipf-skewed in synthetic data.
    pub popularity: f64,
}

/// Parameters for [`PoiGenerator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiGeneratorParams {
    /// Number of POIs to generate.
    pub count: usize,
    /// Number of spatial hotspots POIs cluster around.
    pub hotspots: usize,
    /// Standard deviation of the Gaussian cluster around each hotspot, m.
    pub cluster_sigma_m: f64,
    /// Half-width of the square generation area, metres from the origin.
    pub half_extent_m: f64,
    /// Zipf exponent for popularity (1.0 ≈ classic web/venue skew).
    pub zipf_exponent: f64,
}

impl Default for PoiGeneratorParams {
    fn default() -> Self {
        PoiGeneratorParams {
            count: 1000,
            hotspots: 8,
            cluster_sigma_m: 150.0,
            half_extent_m: 2000.0,
            zipf_exponent: 1.0,
        }
    }
}

/// Synthesises clustered, popularity-skewed POI sets around an origin.
#[derive(Debug, Clone)]
pub struct PoiGenerator {
    params: PoiGeneratorParams,
    frame: LocalFrame,
}

impl PoiGenerator {
    /// Creates a generator anchored at `origin`.
    pub fn new(origin: GeoPoint, params: PoiGeneratorParams) -> Self {
        PoiGenerator {
            params,
            frame: LocalFrame::new(origin),
        }
    }

    /// Generates the POI set using `rng`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Poi> {
        let p = &self.params;
        let hotspots: Vec<(f64, f64)> = (0..p.hotspots.max(1))
            .map(|_| {
                (
                    rng.gen_range(-p.half_extent_m..=p.half_extent_m),
                    rng.gen_range(-p.half_extent_m..=p.half_extent_m),
                )
            })
            .collect();
        (0..p.count)
            .map(|i| {
                let (hx, hy) = hotspots[rng.gen_range(0..hotspots.len())];
                let x = (hx + standard_normal(rng) * p.cluster_sigma_m)
                    .clamp(-p.half_extent_m, p.half_extent_m);
                let y = (hy + standard_normal(rng) * p.cluster_sigma_m)
                    .clamp(-p.half_extent_m, p.half_extent_m);
                let category = PoiCategory::ALL[rng.gen_range(0..PoiCategory::ALL.len())];
                // Zipf popularity by rank i+1.
                let popularity = 1.0 / ((i + 1) as f64).powf(p.zipf_exponent);
                Poi {
                    id: PoiId(i as u64),
                    name: format!("{category}-{i}"),
                    category,
                    position: self.frame.to_geodetic(Enu::new(x, y, 0.0)),
                    popularity,
                }
            })
            .collect()
    }
}

// Box-Muller standard normal without external deps beyond `rand`.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A queryable POI database backed by an R-tree in a local ENU frame.
///
/// # Example
///
/// ```
/// use augur_geo::{GeoPoint, Poi, PoiCategory, PoiDatabase, PoiId};
///
/// let origin = GeoPoint::new(22.3364, 114.2655)?;
/// let poi = Poi {
///     id: PoiId(1),
///     name: "Seafront Cafe".into(),
///     category: PoiCategory::Food,
///     position: origin.destination(90.0, 120.0),
///     popularity: 0.9,
/// };
/// let db = PoiDatabase::build(origin, vec![poi]);
/// let hits = db.within_radius(origin, 200.0);
/// assert_eq!(hits.len(), 1);
/// assert!(db.nearest(origin, 1, None)[0].name.contains("Cafe"));
/// # Ok::<(), augur_geo::GeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoiDatabase {
    frame: LocalFrame,
    pois: Vec<Poi>,
    index: RTree<usize>,
}

impl PoiDatabase {
    /// Builds the database and its spatial index.
    pub fn build(origin: GeoPoint, pois: Vec<Poi>) -> Self {
        let frame = LocalFrame::new(origin);
        let items: Vec<(Rect, usize)> = pois
            .iter()
            .enumerate()
            .map(|(i, poi)| {
                let enu = frame.to_enu(poi.position);
                (Rect::point(enu.east, enu.north), i)
            })
            .collect();
        PoiDatabase {
            frame,
            pois,
            index: RTree::bulk_load(items),
        }
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// The local frame queries are executed in.
    pub fn frame(&self) -> &LocalFrame {
        &self.frame
    }

    /// All POIs (index order).
    pub fn iter(&self) -> std::slice::Iter<'_, Poi> {
        self.pois.iter()
    }

    /// Looks up a POI by id (O(n); ids are generator-assigned ranks).
    pub fn get(&self, id: PoiId) -> Option<&Poi> {
        self.pois.iter().find(|p| p.id == id)
    }

    /// POIs within `radius_m` metres of `center`, unordered. A negative
    /// radius yields no results.
    pub fn within_radius(&self, center: GeoPoint, radius_m: f64) -> Vec<&Poi> {
        if radius_m < 0.0 {
            return Vec::new();
        }
        let c = self.frame.to_enu(center);
        let query = Rect::spanning(
            c.east - radius_m,
            c.north - radius_m,
            c.east + radius_m,
            c.north + radius_m,
        );
        let r2 = radius_m * radius_m;
        self.index
            .range(&query)
            .filter(|(rect, _)| rect.distance2_to_point(c.east, c.north) <= r2)
            .map(|(_, &i)| &self.pois[i])
            .collect()
    }

    /// The `k` nearest POIs to `center`, optionally restricted to one
    /// category, closest first.
    pub fn nearest(&self, center: GeoPoint, k: usize, category: Option<PoiCategory>) -> Vec<&Poi> {
        let c = self.frame.to_enu(center);
        match category {
            None => self
                .index
                .nearest(c.east, c.north, k)
                .into_iter()
                .map(|(_, &i)| &self.pois[i])
                .collect(),
            Some(cat) => {
                // Over-fetch and filter; categories are roughly uniform so
                // a small multiplier suffices, retrying with more if not.
                let mut fetch = k * PoiCategory::ALL.len();
                loop {
                    let hits = self.index.nearest(c.east, c.north, fetch);
                    let filtered: Vec<&Poi> = hits
                        .iter()
                        .map(|(_, &i)| &self.pois[i])
                        .filter(|p| p.category == cat)
                        .take(k)
                        .collect();
                    if filtered.len() == k || hits.len() == self.pois.len() {
                        return filtered;
                    }
                    fetch *= 2;
                }
            }
        }
    }

    /// The `k` nearest POIs (no category filter), plus the search cost as
    /// the number of distance evaluations the index performed — a
    /// deterministic latency proxy for simulations that must not read the
    /// wall clock (compare with [`PoiDatabase::within_radius_scan_counted`],
    /// whose cost is always the full database size).
    pub fn nearest_counted(&self, center: GeoPoint, k: usize) -> (Vec<&Poi>, usize) {
        let c = self.frame.to_enu(center);
        let (hits, work) = self.index.nearest_counted(c.east, c.north, k);
        (
            hits.into_iter().map(|(_, &i)| &self.pois[i]).collect(),
            work,
        )
    }

    /// Linear-scan radius query, for benchmarking against the index.
    pub fn within_radius_scan(&self, center: GeoPoint, radius_m: f64) -> Vec<&Poi> {
        self.within_radius_scan_counted(center, radius_m).0
    }

    /// Like [`PoiDatabase::within_radius_scan`], reporting the scan cost:
    /// one haversine evaluation per stored POI.
    pub fn within_radius_scan_counted(
        &self,
        center: GeoPoint,
        radius_m: f64,
    ) -> (Vec<&Poi>, usize) {
        let hits = self
            .pois
            .iter()
            .filter(|p| p.position.haversine_m(center) <= radius_m)
            .collect();
        (hits, self.pois.len())
    }
}

impl<'a> IntoIterator for &'a PoiDatabase {
    type Item = &'a Poi;
    type IntoIter = std::slice::Iter<'a, Poi>;
    fn into_iter(self) -> Self::IntoIter {
        self.pois.iter()
    }
}

/// Convenience: generate `count` POIs clustered around `origin` with
/// default parameters and build the database.
///
/// # Errors
///
/// Returns [`GeoError::InvalidQuery`] if `count` is zero.
pub fn synthetic_database<R: Rng + ?Sized>(
    origin: GeoPoint,
    count: usize,
    rng: &mut R,
) -> Result<PoiDatabase, GeoError> {
    if count == 0 {
        return Err(GeoError::InvalidQuery("poi count must be > 0"));
    }
    let params = PoiGeneratorParams {
        count,
        ..PoiGeneratorParams::default()
    };
    let pois = PoiGenerator::new(origin, params).generate(rng);
    Ok(PoiDatabase::build(origin, pois))
}

// Suppress unused import warning for Distribution (kept for doc clarity).
#[allow(unused)]
fn _assert_distribution_available<D: Distribution<f64>>(_d: D) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn origin() -> GeoPoint {
        GeoPoint::new(22.3364, 114.2655).unwrap()
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn generator_respects_count_and_extent() {
        let params = PoiGeneratorParams {
            count: 500,
            half_extent_m: 1000.0,
            ..Default::default()
        };
        let pois = PoiGenerator::new(origin(), params).generate(&mut rng());
        assert_eq!(pois.len(), 500);
        for p in &pois {
            let d = p.position.haversine_m(origin());
            assert!(d <= 1500.0 * 2.0_f64.sqrt(), "poi too far: {d}");
        }
    }

    #[test]
    fn popularity_is_zipf_monotone() {
        let pois = PoiGenerator::new(origin(), PoiGeneratorParams::default()).generate(&mut rng());
        for w in pois.windows(2) {
            assert!(w[0].popularity >= w[1].popularity);
        }
        assert!((pois[0].popularity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn index_and_scan_agree() {
        let db = synthetic_database(origin(), 2000, &mut rng()).unwrap();
        for radius in [50.0, 200.0, 800.0] {
            let mut a: Vec<PoiId> = db
                .within_radius(origin(), radius)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut b: Vec<PoiId> = db
                .within_radius_scan(origin(), radius)
                .iter()
                .map(|p| p.id)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            // ENU planar distance and haversine may disagree at the rim by
            // centimetres; allow a tiny count difference only at the rim.
            let diff = a.len().abs_diff(b.len());
            assert!(diff <= 2, "radius {radius}: {} vs {}", a.len(), b.len());
        }
    }

    #[test]
    fn nearest_is_sorted_and_category_filter_works() {
        let db = synthetic_database(origin(), 1000, &mut rng()).unwrap();
        let near = db.nearest(origin(), 10, None);
        assert_eq!(near.len(), 10);
        let mut prev = 0.0;
        for p in &near {
            let d = p.position.haversine_m(origin());
            assert!(d + 1e-6 >= prev);
            prev = d;
        }
        let food = db.nearest(origin(), 5, Some(PoiCategory::Food));
        assert!(food.iter().all(|p| p.category == PoiCategory::Food));
        assert_eq!(food.len(), 5);
    }

    #[test]
    fn category_filter_exhausts_gracefully() {
        // A database with no Health POIs returns fewer than k.
        let pois: Vec<Poi> = (0..10)
            .map(|i| Poi {
                id: PoiId(i),
                name: format!("shop-{i}"),
                category: PoiCategory::Retail,
                position: origin().destination(10.0 * i as f64, 50.0 + i as f64),
                popularity: 1.0,
            })
            .collect();
        let db = PoiDatabase::build(origin(), pois);
        assert!(db
            .nearest(origin(), 3, Some(PoiCategory::Health))
            .is_empty());
        assert_eq!(db.nearest(origin(), 3, Some(PoiCategory::Retail)).len(), 3);
    }

    #[test]
    fn get_by_id() {
        let db = synthetic_database(origin(), 50, &mut rng()).unwrap();
        assert!(db.get(PoiId(10)).is_some());
        assert!(db.get(PoiId(9999)).is_none());
    }

    #[test]
    fn synthetic_database_rejects_zero() {
        assert!(synthetic_database(origin(), 0, &mut rng()).is_err());
    }
}
