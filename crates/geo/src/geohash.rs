//! Geohash encoding: interleaved base-32 spatial bucketing.
//!
//! Geohashes give the platform a cheap, sortable spatial key for log
//! partitioning ([`crate::poi`] feeds keyed by geohash prefix) and coarse
//! proximity grouping. Precision 1..=12 characters is supported; each
//! character adds 5 bits alternating between longitude and latitude.

use serde::{Deserialize, Serialize};

use crate::bbox::GeoBounds;
use crate::coord::GeoPoint;
use crate::error::GeoError;

const BASE32: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Maximum supported geohash length in characters.
pub const MAX_PRECISION: usize = 12;

fn base32_index(c: char) -> Result<u8, GeoError> {
    BASE32
        .iter()
        .position(|&b| b as char == c)
        .map(|i| i as u8)
        .ok_or(GeoError::InvalidGeohashChar(c))
}

/// A validated geohash string of 1..=12 base-32 characters.
///
/// # Example
///
/// ```
/// use augur_geo::{GeoPoint, Geohash};
/// let p = GeoPoint::new(22.3364, 114.2655)?;
/// let h = Geohash::encode(p, 7)?;
/// assert_eq!(h.precision(), 7);
/// let cell = h.bounds();
/// assert!(cell.contains(p));
/// # Ok::<(), augur_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Geohash(String);

impl Geohash {
    /// Encodes a point to the requested precision.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGeohashLength`] if `precision` is 0 or
    /// exceeds [`MAX_PRECISION`].
    pub fn encode(p: GeoPoint, precision: usize) -> Result<Self, GeoError> {
        if precision == 0 || precision > MAX_PRECISION {
            return Err(GeoError::InvalidGeohashLength(precision));
        }
        let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
        let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
        let mut even = true; // longitude bit first
        let mut out = String::with_capacity(precision);
        let mut bits = 0u8;
        let mut bit_count = 0u8;
        while out.len() < precision {
            if even {
                let mid = (lon_lo + lon_hi) / 2.0;
                if p.longitude_deg() >= mid {
                    bits = (bits << 1) | 1;
                    lon_lo = mid;
                } else {
                    bits <<= 1;
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if p.latitude_deg() >= mid {
                    bits = (bits << 1) | 1;
                    lat_lo = mid;
                } else {
                    bits <<= 1;
                    lat_hi = mid;
                }
            }
            even = !even;
            bit_count += 1;
            if bit_count == 5 {
                out.push(BASE32[bits as usize] as char);
                bits = 0;
                bit_count = 0;
            }
        }
        Ok(Geohash(out))
    }

    /// Parses an existing geohash string, validating alphabet and length.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidGeohashChar`] or
    /// [`GeoError::InvalidGeohashLength`].
    pub fn parse(s: &str) -> Result<Self, GeoError> {
        if s.is_empty() || s.len() > MAX_PRECISION {
            return Err(GeoError::InvalidGeohashLength(s.len()));
        }
        for c in s.chars() {
            base32_index(c)?;
        }
        Ok(Geohash(s.to_string()))
    }

    /// The geohash string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Number of characters (precision level).
    pub fn precision(&self) -> usize {
        self.0.len()
    }

    /// The bounding cell this geohash denotes.
    pub fn bounds(&self) -> GeoBounds {
        let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
        let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
        let mut even = true;
        for c in self.0.chars() {
            // Characters are validated at construction; an impossible miss
            // decodes as cell 0 rather than panicking.
            let idx = base32_index(c).unwrap_or(0);
            for shift in (0..5).rev() {
                let bit = (idx >> shift) & 1;
                if even {
                    let mid = (lon_lo + lon_hi) / 2.0;
                    if bit == 1 {
                        lon_lo = mid;
                    } else {
                        lon_hi = mid;
                    }
                } else {
                    let mid = (lat_lo + lat_hi) / 2.0;
                    if bit == 1 {
                        lat_lo = mid;
                    } else {
                        lat_hi = mid;
                    }
                }
                even = !even;
            }
        }
        GeoBounds::clamped(lat_lo, lon_lo, lat_hi, lon_hi)
    }

    /// Centre point of the cell.
    pub fn center(&self) -> GeoPoint {
        self.bounds().center()
    }

    /// The parent cell one precision level up, or `None` at precision 1.
    pub fn parent(&self) -> Option<Geohash> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(Geohash(self.0[..self.0.len() - 1].to_string()))
        }
    }

    /// Whether `other` is inside this cell (prefix relation).
    pub fn contains(&self, other: &Geohash) -> bool {
        other.0.starts_with(&self.0)
    }

    /// A stable routing key for stream partitioning: the first up to 12
    /// base-32 characters packed 5 bits each into a `u64`, left-aligned.
    /// Keys share high bits exactly when the cells share a prefix, so
    /// partitioning on a truncated key groups spatially adjacent traffic
    /// onto the same partition (locality for the geo-keyed topics).
    pub fn routing_key(&self) -> u64 {
        let mut key = 0u64;
        for (i, c) in self.0.chars().take(12).enumerate() {
            let idx = base32_index(c).unwrap_or(0) as u64;
            key |= idx << (64 - 5 * (i + 1));
        }
        key
    }

    /// The eight neighbouring cells at the same precision (clamped at the
    /// poles, so fewer than eight may be returned).
    pub fn neighbors(&self) -> Vec<Geohash> {
        let b = self.bounds();
        let dlat = b.north() - b.south();
        let dlon = b.east() - b.west();
        let c = self.center();
        let mut out = Vec::with_capacity(8);
        for dy in [-1.0, 0.0, 1.0] {
            for dx in [-1.0, 0.0, 1.0] {
                if dx == 0.0 && dy == 0.0 {
                    continue;
                }
                let lat = c.latitude_deg() + dy * dlat;
                let mut lon = c.longitude_deg() + dx * dlon;
                if !(-90.0..=90.0).contains(&lat) {
                    continue;
                }
                // wrap longitude
                if lon > 180.0 {
                    lon -= 360.0;
                }
                if lon < -180.0 {
                    lon += 360.0;
                }
                let p = GeoPoint::clamped(lat, lon);
                // Precision came from an existing hash, so encode cannot
                // fail; skip (rather than panic on) the impossible branch.
                if let Ok(h) = Geohash::encode(p, self.precision()) {
                    if h != *self && !out.contains(&h) {
                        out.push(h);
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Geohash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Geohash {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_value() {
        // Well-known test vector: (57.64911, 10.40744) -> "u4pruydqqvj"
        let p = GeoPoint::new(57.64911, 10.40744).unwrap();
        let h = Geohash::encode(p, 11).unwrap();
        assert_eq!(h.as_str(), "u4pruydqqvj");
    }

    #[test]
    fn bounds_contain_encoded_point() {
        let p = GeoPoint::new(22.3364, 114.2655).unwrap();
        for prec in 1..=12 {
            let h = Geohash::encode(p, prec).unwrap();
            assert!(h.bounds().contains(p), "precision {prec}");
        }
    }

    #[test]
    fn precision_shrinks_cells() {
        let p = GeoPoint::new(40.0, -74.0).unwrap();
        let mut prev_area = f64::INFINITY;
        for prec in 1..=8 {
            let b = Geohash::encode(p, prec).unwrap().bounds();
            let area = (b.north() - b.south()) * (b.east() - b.west());
            assert!(area < prev_area);
            prev_area = area;
        }
    }

    #[test]
    fn parse_validates() {
        assert!(Geohash::parse("u4pruyd").is_ok());
        assert_eq!(
            Geohash::parse("u4a"), // 'a' is not in the geohash alphabet
            Err(GeoError::InvalidGeohashChar('a'))
        );
        assert_eq!(Geohash::parse(""), Err(GeoError::InvalidGeohashLength(0)));
        assert!(Geohash::parse("0123456789bcd").is_err());
    }

    #[test]
    fn parent_is_prefix() {
        let h = Geohash::parse("u4pruyd").unwrap();
        let p = h.parent().unwrap();
        assert_eq!(p.as_str(), "u4pruy");
        assert!(p.contains(&h));
        assert!(!h.contains(&p));
        assert!(Geohash::parse("u").unwrap().parent().is_none());
    }

    #[test]
    fn neighbors_are_adjacent_and_distinct() {
        let h = Geohash::encode(GeoPoint::new(22.3, 114.2).unwrap(), 6).unwrap();
        let ns = h.neighbors();
        assert_eq!(ns.len(), 8);
        let c = h.center();
        for n in &ns {
            assert_ne!(n, &h);
            // Neighbour centres are within ~2 cell diagonals.
            let d = c.haversine_m(n.center());
            let b = h.bounds();
            let cell_m = GeoPoint::new(b.south(), b.west())
                .unwrap()
                .haversine_m(GeoPoint::new(b.north(), b.east()).unwrap());
            assert!(d < 2.0 * cell_m, "neighbor too far: {d} vs cell {cell_m}");
        }
    }

    #[test]
    fn routing_key_preserves_prefix_structure() {
        let p = GeoPoint::new(22.3364, 114.2655).unwrap();
        let fine = Geohash::encode(p, 9).unwrap();
        let coarse = fine.parent().unwrap().parent().unwrap();
        // Same prefix ⇒ identical high bits up to the coarse precision.
        let bits = 5 * coarse.precision() as u32;
        let mask = !0u64 << (64 - bits);
        assert_eq!(fine.routing_key() & mask, coarse.routing_key() & mask);
        // Different cells at the same precision produce different keys.
        let q = GeoPoint::new(-33.86, 151.21).unwrap();
        let other = Geohash::encode(q, 9).unwrap();
        assert_ne!(fine.routing_key(), other.routing_key());
        // Nearby points share coarse routing bits.
        let near = Geohash::encode(p.destination(45.0, 30.0), 9).unwrap();
        let coarse_mask = !0u64 << (64 - 5 * 5);
        assert_eq!(
            fine.routing_key() & coarse_mask,
            near.routing_key() & coarse_mask
        );
    }

    #[test]
    fn round_trip_center_re_encodes_to_same_hash() {
        let p = GeoPoint::new(-33.8688, 151.2093).unwrap();
        let h = Geohash::encode(p, 8).unwrap();
        let again = Geohash::encode(h.center(), 8).unwrap();
        assert_eq!(h, again);
    }
}
