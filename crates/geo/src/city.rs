//! Synthetic city models: extruded-box buildings on a street grid.
//!
//! The paper's occlusion ("see through walls and shelves"), x-ray vision,
//! and VANET scenarios all need a 3-D urban environment. Real building
//! footprints (BIM models, Google Earth contributions) are proprietary, so
//! [`CityModel::generate`] synthesises a Manhattan-style grid: blocks of
//! buildings with lognormal-ish heights separated by streets. The geometry
//! is deliberately simple — axis-aligned extruded boxes — because the
//! occlusion and routing code paths only require ray/box and point/box
//! predicates.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bbox::Rect;
use crate::coord::Enu;

/// An axis-aligned extruded-box building in the local ENU frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Building {
    /// Stable index within the city.
    pub id: u32,
    /// Ground footprint (east/north metres).
    pub footprint: Rect,
    /// Height above ground in metres.
    pub height_m: f64,
}

impl Building {
    /// Whether a point (ENU) is inside the building volume.
    pub fn contains(&self, p: Enu) -> bool {
        p.up >= 0.0 && p.up <= self.height_m && self.footprint.contains_point(p.east, p.north)
    }

    /// Intersects the segment `a -> b` against the building volume.
    ///
    /// Returns the parametric `t` in `[0, 1]` of the first intersection,
    /// or `None` if the segment misses. This is the slab method extended
    /// with the vertical extent `[0, height]`.
    pub fn intersect_segment(&self, a: Enu, b: Enu) -> Option<f64> {
        let dir = (b.east - a.east, b.north - a.north, b.up - a.up);
        let mut t_min = 0.0f64;
        let mut t_max = 1.0f64;
        let axes = [
            (
                a.east,
                dir.0,
                self.footprint.min_x(),
                self.footprint.max_x(),
            ),
            (
                a.north,
                dir.1,
                self.footprint.min_y(),
                self.footprint.max_y(),
            ),
            (a.up, dir.2, 0.0, self.height_m),
        ];
        for (origin, d, lo, hi) in axes {
            if d.abs() < 1e-12 {
                if origin < lo || origin > hi {
                    return None;
                }
            } else {
                let mut t0 = (lo - origin) / d;
                let mut t1 = (hi - origin) / d;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(t_min)
    }
}

/// Street-grid description derived from a generated city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadGrid {
    /// East coordinates of north-south street centrelines.
    pub vertical_streets: Vec<f64>,
    /// North coordinates of east-west street centrelines.
    pub horizontal_streets: Vec<f64>,
    /// Street width in metres.
    pub street_width_m: f64,
}

impl RoadGrid {
    /// Snaps a point to the nearest street centreline intersection.
    pub fn nearest_intersection(&self, east: f64, north: f64) -> (f64, f64) {
        let e = nearest_in(&self.vertical_streets, east);
        let n = nearest_in(&self.horizontal_streets, north);
        (e, n)
    }

    /// Whether `(east, north)` lies on a street (within half-width of a
    /// centreline).
    pub fn on_street(&self, east: f64, north: f64) -> bool {
        let half = self.street_width_m / 2.0;
        self.vertical_streets
            .iter()
            .any(|&s| (east - s).abs() <= half)
            || self
                .horizontal_streets
                .iter()
                .any(|&s| (north - s).abs() <= half)
    }
}

fn nearest_in(sorted: &[f64], v: f64) -> f64 {
    sorted
        .iter()
        .copied()
        .min_by(|a, b| {
            (a - v)
                .abs()
                .partial_cmp(&(b - v).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(v)
}

/// Parameters for [`CityModel::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityParams {
    /// Number of blocks along each axis.
    pub blocks: usize,
    /// Side length of a block in metres (buildings occupy block interiors).
    pub block_size_m: f64,
    /// Street width between blocks, metres.
    pub street_width_m: f64,
    /// Buildings per block along each axis (so `per_block²` per block).
    pub buildings_per_block_axis: usize,
    /// Mean building height in metres.
    pub mean_height_m: f64,
    /// Height spread factor; heights are `mean * exp(N(0, spread))`.
    pub height_spread: f64,
}

impl Default for CityParams {
    fn default() -> Self {
        CityParams {
            blocks: 6,
            block_size_m: 120.0,
            street_width_m: 18.0,
            buildings_per_block_axis: 2,
            mean_height_m: 25.0,
            height_spread: 0.5,
        }
    }
}

/// A generated city: buildings plus the street grid between them, centred
/// on the ENU origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityModel {
    buildings: Vec<Building>,
    roads: RoadGrid,
    extent: Rect,
}

impl CityModel {
    /// Generates a grid city with `params`, deterministic under `rng`.
    pub fn generate<R: Rng + ?Sized>(params: &CityParams, rng: &mut R) -> Self {
        let pitch = params.block_size_m + params.street_width_m;
        let total = pitch * params.blocks as f64;
        let origin_off = -total / 2.0;
        let mut buildings = Vec::new();
        let mut vertical = Vec::new();
        let mut horizontal = Vec::new();
        for i in 0..=params.blocks {
            let line = origin_off + pitch * i as f64 - params.street_width_m / 2.0;
            vertical.push(line);
            horizontal.push(line);
        }
        let n = params.buildings_per_block_axis.max(1);
        let cell = params.block_size_m / n as f64;
        let margin = cell * 0.1;
        let mut id = 0u32;
        for bi in 0..params.blocks {
            for bj in 0..params.blocks {
                let bx = origin_off + pitch * bi as f64;
                let by = origin_off + pitch * bj as f64;
                for ci in 0..n {
                    for cj in 0..n {
                        let x0 = bx + cell * ci as f64 + margin;
                        let y0 = by + cell * cj as f64 + margin;
                        let x1 = bx + cell * (ci + 1) as f64 - margin;
                        let y1 = by + cell * (cj + 1) as f64 - margin;
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        let height = params.mean_height_m * (params.height_spread * z).exp();
                        buildings.push(Building {
                            id,
                            footprint: Rect::spanning(x0, y0, x1, y1),
                            height_m: height.clamp(3.0, 400.0),
                        });
                        id += 1;
                    }
                }
            }
        }
        let extent = Rect::spanning(
            origin_off - params.street_width_m,
            origin_off - params.street_width_m,
            origin_off + total,
            origin_off + total,
        );
        CityModel {
            buildings,
            roads: RoadGrid {
                vertical_streets: vertical,
                horizontal_streets: horizontal,
                street_width_m: params.street_width_m,
            },
            extent,
        }
    }

    /// All buildings.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// The street grid.
    pub fn roads(&self) -> &RoadGrid {
        &self.roads
    }

    /// Overall extent in ENU metres.
    pub fn extent(&self) -> Rect {
        self.extent
    }

    /// Whether the segment `a -> b` is blocked by any building.
    ///
    /// Linear in building count; the render crate layers a spatial index
    /// over this when building counts grow (experiment E5 measures both).
    pub fn line_of_sight_blocked(&self, a: Enu, b: Enu) -> bool {
        self.first_obstruction(a, b).is_some()
    }

    /// The building first obstructing `a -> b`, if any, with the
    /// parametric `t` of entry.
    pub fn first_obstruction(&self, a: Enu, b: Enu) -> Option<(&Building, f64)> {
        let mut best: Option<(&Building, f64)> = None;
        for bld in &self.buildings {
            if let Some(t) = bld.intersect_segment(a, b) {
                // Ignore intersections at the very start (observer inside).
                if t <= 1e-9 && bld.contains(a) {
                    continue;
                }
                match best {
                    Some((_, bt)) if bt <= t => {}
                    _ => best = Some((bld, t)),
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn city() -> CityModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        CityModel::generate(&CityParams::default(), &mut rng)
    }

    #[test]
    fn generates_expected_building_count() {
        let c = city();
        let p = CityParams::default();
        assert_eq!(
            c.buildings().len(),
            p.blocks * p.blocks * p.buildings_per_block_axis * p.buildings_per_block_axis
        );
    }

    #[test]
    fn buildings_do_not_overlap_streets() {
        let c = city();
        for b in c.buildings() {
            let (cx, cy) = b.footprint.center();
            assert!(!c.roads().on_street(cx, cy), "building centre on street");
        }
    }

    #[test]
    fn heights_are_positive_and_bounded() {
        let c = city();
        for b in c.buildings() {
            assert!(b.height_m >= 3.0 && b.height_m <= 400.0);
        }
    }

    #[test]
    fn segment_through_building_is_blocked() {
        let c = city();
        let b = &c.buildings()[0];
        let (cx, cy) = b.footprint.center();
        let a = Enu::new(cx - 500.0, cy, 1.5);
        let t = Enu::new(cx + 500.0, cy, 1.5);
        assert!(c.line_of_sight_blocked(a, t));
        let (hit, _) = c.first_obstruction(a, t).unwrap();
        // The first obstruction must be *some* building on the line; at
        // ground level crossing the whole city, several qualify.
        assert!(hit.intersect_segment(a, t).is_some());
    }

    #[test]
    fn segment_above_all_buildings_is_clear() {
        let c = city();
        let a = Enu::new(-400.0, 0.0, 500.0);
        let b = Enu::new(400.0, 0.0, 500.0);
        assert!(!c.line_of_sight_blocked(a, b));
    }

    #[test]
    fn segment_along_street_is_clear() {
        let c = city();
        let street = c.roads().vertical_streets[1];
        let a = Enu::new(street, -300.0, 1.5);
        let b = Enu::new(street, 300.0, 1.5);
        assert!(
            !c.line_of_sight_blocked(a, b),
            "street centreline should be clear"
        );
    }

    #[test]
    fn intersect_segment_parametric_t() {
        let b = Building {
            id: 0,
            footprint: Rect::new(10.0, -5.0, 20.0, 5.0).unwrap(),
            height_m: 30.0,
        };
        let a = Enu::new(0.0, 0.0, 1.0);
        let t = Enu::new(40.0, 0.0, 1.0);
        let hit = b.intersect_segment(a, t).unwrap();
        assert!((hit - 0.25).abs() < 1e-9);
        // Miss above.
        let a2 = Enu::new(0.0, 0.0, 50.0);
        let t2 = Enu::new(40.0, 0.0, 50.0);
        assert!(b.intersect_segment(a2, t2).is_none());
    }

    #[test]
    fn contains_checks_volume() {
        let b = Building {
            id: 0,
            footprint: Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            height_m: 20.0,
        };
        assert!(b.contains(Enu::new(5.0, 5.0, 10.0)));
        assert!(!b.contains(Enu::new(5.0, 5.0, 21.0)));
        assert!(!b.contains(Enu::new(-1.0, 5.0, 10.0)));
    }

    #[test]
    fn nearest_intersection_snaps() {
        let c = city();
        let (e, n) = c.roads().nearest_intersection(3.0, 7.0);
        assert!(c.roads().vertical_streets.contains(&e));
        assert!(c.roads().horizontal_streets.contains(&n));
    }
}
