//! Geospatial substrate for the Augur platform.
//!
//! Augmented-reality applications are anchored in physical space: every
//! overlay, point of interest, and sensor reading carries a location. This
//! crate provides the coordinate machinery and spatial data structures the
//! rest of the platform builds on:
//!
//! - [`GeoPoint`] / [`Ecef`] / [`Enu`] coordinate types and conversions on
//!   the WGS-84 ellipsoid ([`coord`]).
//! - [`Geohash`] encoding for coarse spatial bucketing ([`geohash`]).
//! - An [`RTree`] and a [`QuadTree`] for range and nearest-neighbour
//!   queries over planar points ([`rtree`], [`quadtree`]).
//! - A [`PoiDatabase`] of points of interest with a clustered synthetic
//!   generator standing in for the proprietary POI feeds the paper assumes
//!   ([`poi`]).
//! - Synthetic city models (buildings on a street grid) used by the
//!   occlusion and traffic experiments ([`city`]).
//!
//! # Example
//!
//! ```
//! use augur_geo::{GeoPoint, LocalFrame};
//!
//! let hq = GeoPoint::new(22.3364, 114.2655)?; // HKUST
//! let cafe = GeoPoint::new(22.3370, 114.2660)?;
//! let frame = LocalFrame::new(hq);
//! let enu = frame.to_enu(cafe);
//! assert!(enu.east > 0.0 && enu.north > 0.0);
//! assert!((hq.haversine_m(cafe) - enu.horizontal_norm()).abs() < 0.5);
//! # Ok::<(), augur_geo::GeoError>(())
//! ```

pub mod bbox;
pub mod city;
pub mod coord;
pub mod error;
pub mod geohash;
pub mod poi;
pub mod quadtree;
pub mod rtree;

pub use bbox::{GeoBounds, Rect};
pub use city::{Building, CityModel, CityParams, RoadGrid};
pub use coord::{Ecef, Enu, GeoPoint, LocalFrame, EARTH_RADIUS_M};
pub use error::GeoError;
pub use geohash::Geohash;
pub use poi::{Poi, PoiCategory, PoiDatabase, PoiGenerator, PoiId};
pub use quadtree::QuadTree;
pub use rtree::RTree;
