//! Geospatial substrate for the Augur platform.
//!
//! Augmented-reality applications are anchored in physical space: every
//! overlay, point of interest, and sensor reading carries a location. This
//! crate provides the coordinate machinery and spatial data structures the
//! rest of the platform builds on:
//!
//! - [`GeoPoint`] / [`Ecef`] / [`Enu`] coordinate types and conversions on
//!   the WGS-84 ellipsoid ([`coord`]).
//! - [`Geohash`] encoding for coarse spatial bucketing ([`geohash`]).
//! - An [`RTree`] and a [`QuadTree`] for range and nearest-neighbour
//!   queries over planar points ([`rtree`], [`quadtree`]).
//! - A [`PoiDatabase`] of points of interest with a clustered synthetic
//!   generator standing in for the proprietary POI feeds the paper assumes
//!   ([`poi`]).
//! - Synthetic city models (buildings on a street grid) used by the
//!   occlusion and traffic experiments ([`city`]).
//!
//! # Example
//!
//! ```
//! use augur_geo::{GeoPoint, LocalFrame};
//!
//! let hq = GeoPoint::new(22.3364, 114.2655)?; // HKUST
//! let cafe = GeoPoint::new(22.3370, 114.2660)?;
//! let frame = LocalFrame::new(hq);
//! let enu = frame.to_enu(cafe);
//! assert!(enu.east > 0.0 && enu.north > 0.0);
//! assert!((hq.haversine_m(cafe) - enu.horizontal_norm()).abs() < 0.5);
//! # Ok::<(), augur_geo::GeoError>(())
//! ```

/// Axis-aligned bounding regions, planar and geodetic.
pub mod bbox;
/// Synthetic city models: buildings on a street grid.
pub mod city;
/// WGS-84 coordinate types and frame conversions.
pub mod coord;
/// The crate error type.
pub mod error;
/// Geohash encoding for coarse spatial bucketing.
pub mod geohash;
/// Points of interest: database, queries, synthetic generator.
pub mod poi;
/// A point quadtree for planar range queries.
pub mod quadtree;
/// A Sort-Tile-Recursive packed R-tree.
pub mod rtree;

/// Bounding regions re-exported from [`bbox`].
pub use bbox::{GeoBounds, Rect};
/// City-model types re-exported from [`city`].
pub use city::{Building, CityModel, CityParams, RoadGrid};
/// Coordinate types re-exported from [`coord`].
pub use coord::{Ecef, Enu, GeoPoint, LocalFrame, EARTH_RADIUS_M};
/// The crate error type, re-exported from [`error`].
pub use error::GeoError;
/// Geohash cells re-exported from [`geohash`].
pub use geohash::Geohash;
/// POI types re-exported from [`poi`].
pub use poi::{Poi, PoiCategory, PoiDatabase, PoiGenerator, PoiId};
/// The quadtree re-exported from [`quadtree`].
pub use quadtree::QuadTree;
/// The R-tree re-exported from [`rtree`].
pub use rtree::RTree;
