//! A point quadtree over a fixed planar extent, used as the comparison
//! index in experiment E8 and for uniform-density workloads where its
//! regular subdivision beats the R-tree's data-driven one.

use crate::bbox::Rect;
use crate::error::GeoError;

const BUCKET: usize = 16;
const MAX_DEPTH: usize = 24;

#[derive(Debug, Clone)]
struct QNode<T> {
    bounds: Rect,
    points: Vec<(f64, f64, T)>,
    children: Option<Box<[QNode<T>; 4]>>,
}

impl<T> QNode<T> {
    fn new(bounds: Rect) -> Self {
        QNode {
            bounds,
            points: Vec::new(),
            children: None,
        }
    }

    fn quadrant_bounds(&self) -> [Rect; 4] {
        let (cx, cy) = self.bounds.center();
        // Subdividing a valid rect is monotone; `spanning` keeps it total.
        [
            Rect::spanning(self.bounds.min_x(), self.bounds.min_y(), cx, cy),
            Rect::spanning(cx, self.bounds.min_y(), self.bounds.max_x(), cy),
            Rect::spanning(self.bounds.min_x(), cy, cx, self.bounds.max_y()),
            Rect::spanning(cx, cy, self.bounds.max_x(), self.bounds.max_y()),
        ]
    }

    fn quadrant_of(&self, x: f64, y: f64) -> usize {
        let (cx, cy) = self.bounds.center();
        match (x >= cx, y >= cy) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        }
    }

    fn insert(&mut self, x: f64, y: f64, value: T, depth: usize) {
        if self.children.is_none() {
            if self.points.len() < BUCKET || depth >= MAX_DEPTH {
                self.points.push((x, y, value));
                return;
            }
            // Split and redistribute.
            let qb = self.quadrant_bounds();
            let mut children = Box::new(qb.map(QNode::new));
            let pts = std::mem::take(&mut self.points);
            for (px, py, v) in pts {
                let q = self.quadrant_of(px, py);
                children[q].insert(px, py, v, depth + 1);
            }
            self.children = Some(children);
        }
        let q = self.quadrant_of(x, y);
        if let Some(children) = self.children.as_mut() {
            children[q].insert(x, y, value, depth + 1);
        }
    }

    fn range<'a>(&'a self, query: &Rect, out: &mut Vec<(f64, f64, &'a T)>) {
        if !self.bounds.intersects(query) {
            return;
        }
        for (x, y, v) in &self.points {
            if query.contains_point(*x, *y) {
                out.push((*x, *y, v));
            }
        }
        if let Some(children) = &self.children {
            for c in children.iter() {
                c.range(query, out);
            }
        }
    }

    fn nearest<'a>(
        &'a self,
        x: f64,
        y: f64,
        k: usize,
        best: &mut Vec<(f64, f64, f64, &'a T)>, // (dist2, px, py, v), sorted asc
    ) {
        let worst = best
            .last()
            .filter(|_| best.len() == k)
            .map(|b| b.0)
            .unwrap_or(f64::INFINITY);
        if self.bounds.distance2_to_point(x, y) > worst {
            return;
        }
        for (px, py, v) in &self.points {
            let d2 = (px - x).powi(2) + (py - y).powi(2);
            let worst = best
                .last()
                .filter(|_| best.len() == k)
                .map(|b| b.0)
                .unwrap_or(f64::INFINITY);
            if d2 < worst || best.len() < k {
                let pos = best.partition_point(|b| b.0 <= d2);
                best.insert(pos, (d2, *px, *py, v));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        if let Some(children) = &self.children {
            // Visit the quadrant containing the query first for pruning.
            let first = self.quadrant_of(x, y);
            children[first].nearest(x, y, k, best);
            for (i, c) in children.iter().enumerate() {
                if i != first {
                    c.nearest(x, y, k, best);
                }
            }
        }
    }
}

/// A bucketed point quadtree over a fixed extent.
///
/// Points outside the extent are rejected at insertion; choose the extent
/// to cover the simulation area.
///
/// # Example
///
/// ```
/// use augur_geo::{QuadTree, Rect};
/// let extent = Rect::new(0.0, 0.0, 100.0, 100.0)?;
/// let mut qt = QuadTree::new(extent);
/// qt.insert(10.0, 20.0, "cafe")?;
/// qt.insert(80.0, 90.0, "museum")?;
/// let near = qt.nearest(12.0, 22.0, 1);
/// assert_eq!(*near[0].2, "cafe");
/// # Ok::<(), augur_geo::GeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    root: QNode<T>,
    len: usize,
}

impl<T> QuadTree<T> {
    /// Creates an empty quadtree covering `extent`.
    pub fn new(extent: Rect) -> Self {
        QuadTree {
            root: QNode::new(extent),
            len: 0,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The extent passed at construction.
    pub fn extent(&self) -> Rect {
        self.root.bounds
    }

    /// Inserts a point.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidQuery`] when the point lies outside the
    /// extent (the fixed-grid structure cannot grow).
    pub fn insert(&mut self, x: f64, y: f64, value: T) -> Result<(), GeoError> {
        if !self.root.bounds.contains_point(x, y) {
            return Err(GeoError::InvalidQuery("point outside quadtree extent"));
        }
        self.root.insert(x, y, value, 0);
        self.len += 1;
        Ok(())
    }

    /// All points inside `query` (boundary included).
    pub fn range(&self, query: &Rect) -> Vec<(f64, f64, &T)> {
        let mut out = Vec::new();
        self.root.range(query, &mut out);
        out
    }

    /// The `k` nearest points to `(x, y)`, closest first.
    pub fn nearest(&self, x: f64, y: f64, k: usize) -> Vec<(f64, f64, &T)> {
        if k == 0 {
            return Vec::new();
        }
        let mut best = Vec::with_capacity(k + 1);
        self.root.nearest(x, y, k, &mut best);
        best.into_iter().map(|(_, px, py, v)| (px, py, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_extent() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0).unwrap()
    }

    #[test]
    fn rejects_out_of_extent() {
        let mut qt = QuadTree::new(full_extent());
        assert!(qt.insert(-1.0, 0.0, ()).is_err());
        assert!(qt.insert(0.0, 101.0, ()).is_err());
        assert_eq!(qt.len(), 0);
    }

    #[test]
    fn range_query_exact() {
        let mut qt = QuadTree::new(full_extent());
        for i in 0..10u32 {
            for j in 0..10u32 {
                qt.insert(i as f64 * 10.0, j as f64 * 10.0, (i, j)).unwrap();
            }
        }
        let q = Rect::new(0.0, 0.0, 25.0, 35.0).unwrap();
        let hits = qt.range(&q);
        assert_eq!(hits.len(), 12); // x in {0,10,20}, y in {0,10,20,30}
    }

    #[test]
    fn nearest_ordering() {
        let mut qt = QuadTree::new(full_extent());
        qt.insert(10.0, 10.0, 'a').unwrap();
        qt.insert(20.0, 20.0, 'b').unwrap();
        qt.insert(90.0, 90.0, 'c').unwrap();
        let res = qt.nearest(12.0, 12.0, 3);
        let order: Vec<char> = res.iter().map(|r| *r.2).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn splits_past_bucket_capacity() {
        let mut qt = QuadTree::new(full_extent());
        for i in 0..1000 {
            let x = (i % 100) as f64;
            let y = (i / 100) as f64 * 10.0;
            qt.insert(x, y, i).unwrap();
        }
        assert_eq!(qt.len(), 1000);
        let q = Rect::new(0.0, 0.0, 100.0, 100.0).unwrap();
        assert_eq!(qt.range(&q).len(), 1000);
    }

    #[test]
    fn duplicate_coordinates_do_not_recurse_forever() {
        let mut qt = QuadTree::new(full_extent());
        for i in 0..200 {
            qt.insert(50.0, 50.0, i).unwrap();
        }
        assert_eq!(qt.len(), 200);
        assert_eq!(qt.nearest(50.0, 50.0, 200).len(), 200);
    }

    #[test]
    fn nearest_brute_force_agreement() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut qt = QuadTree::new(full_extent());
        let mut pts = Vec::new();
        for i in 0..400 {
            let x = rng.gen_range(0.0..100.0);
            let y = rng.gen_range(0.0..100.0);
            qt.insert(x, y, i).unwrap();
            pts.push((x, y, i));
        }
        for _ in 0..20 {
            let qx = rng.gen_range(0.0..100.0);
            let qy = rng.gen_range(0.0..100.0);
            let got: Vec<i32> = qt.nearest(qx, qy, 5).iter().map(|r| *r.2).collect();
            let mut brute = pts.clone();
            brute.sort_by(|a, b| {
                let da = (a.0 - qx).powi(2) + (a.1 - qy).powi(2);
                let db = (b.0 - qx).powi(2) + (b.1 - qy).powi(2);
                da.partial_cmp(&db).unwrap()
            });
            let want: Vec<i32> = brute.iter().take(5).map(|r| r.2).collect();
            assert_eq!(got, want);
        }
    }
}
