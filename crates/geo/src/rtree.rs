//! An R-tree over planar rectangles with incremental insertion
//! (quadratic split), STR bulk loading, range queries, and best-first
//! k-nearest-neighbour search.
//!
//! This is the index behind [`crate::poi::PoiDatabase`] and experiment E8
//! (POI retrieval at scale): the paper's tourism scenario assumes
//! sub-frame-budget lookup of nearby content among millions of entries,
//! which linear scans cannot deliver.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bbox::Rect;

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = MAX_ENTRIES / 4;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf {
        bounds: Rect,
        entries: Vec<(Rect, T)>,
    },
    Inner {
        bounds: Rect,
        children: Vec<Node<T>>,
    },
}

impl<T> Node<T> {
    fn bounds(&self) -> Rect {
        match self {
            Node::Leaf { bounds, .. } | Node::Inner { bounds, .. } => *bounds,
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Inner { children, .. } => children.len(),
        }
    }

    fn recompute_bounds(&mut self) {
        match self {
            Node::Leaf { bounds, entries } => {
                *bounds = entries
                    .iter()
                    .fold(Rect::empty(), |acc, (r, _)| acc.union(r));
            }
            Node::Inner { bounds, children } => {
                *bounds = children
                    .iter()
                    .fold(Rect::empty(), |acc, c| acc.union(&c.bounds()));
            }
        }
    }
}

/// An R-tree mapping planar rectangles to payloads of type `T`.
///
/// # Example
///
/// ```
/// use augur_geo::{RTree, Rect};
///
/// let mut tree = RTree::new();
/// for i in 0..100 {
///     let x = (i % 10) as f64 * 10.0;
///     let y = (i / 10) as f64 * 10.0;
///     tree.insert(Rect::point(x, y), i);
/// }
/// let query = Rect::new(0.0, 0.0, 25.0, 25.0)?;
/// assert_eq!(tree.range(&query).count(), 9);
/// let nearest = tree.nearest(1.0, 1.0, 1);
/// assert_eq!(*nearest[0].1, 0);
/// # Ok::<(), augur_geo::GeoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf {
                bounds: Rect::empty(),
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Bulk-loads with the Sort-Tile-Recursive algorithm, producing a
    /// well-packed tree much faster than repeated insertion.
    pub fn bulk_load(mut items: Vec<(Rect, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        // STR: sort by centre x, slice into vertical strips, sort each
        // strip by centre y, pack leaves of MAX_ENTRIES.
        items.sort_by(|a, b| {
            a.0.center()
                .0
                .partial_cmp(&b.0.center().0)
                .unwrap_or(Ordering::Equal)
        });
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let strips = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = len.div_ceil(strips);
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        let mut rest = items;
        while !rest.is_empty() {
            let take = per_strip.min(rest.len());
            let mut strip: Vec<(Rect, T)> = rest.drain(..take).collect();
            strip.sort_by(|a, b| {
                a.0.center()
                    .1
                    .partial_cmp(&b.0.center().1)
                    .unwrap_or(Ordering::Equal)
            });
            while !strip.is_empty() {
                let take = MAX_ENTRIES.min(strip.len());
                let entries: Vec<(Rect, T)> = strip.drain(..take).collect();
                let mut leaf = Node::Leaf {
                    bounds: Rect::empty(),
                    entries,
                };
                leaf.recompute_bounds();
                leaves.push(leaf);
            }
        }
        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node<T>> = iter.by_ref().take(MAX_ENTRIES).collect();
                let mut inner = Node::Inner {
                    bounds: Rect::empty(),
                    children,
                };
                inner.recompute_bounds();
                next.push(inner);
            }
            level = next;
        }
        // Non-empty input always leaves exactly one packed root; the
        // fallback keeps the impossible branch panic-free.
        let root = level.pop().unwrap_or(Node::Leaf {
            bounds: Rect::empty(),
            entries: Vec::new(),
        });
        RTree { root, len }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding rectangle of all entries ([`Rect::empty`] when empty).
    pub fn bounds(&self) -> Rect {
        self.root.bounds()
    }

    /// Inserts an entry keyed by its bounding rectangle.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.len += 1;
        if let Some((a, b)) = Self::insert_into(&mut self.root, rect, value) {
            // Root split: grow the tree by one level.
            self.root = {
                let mut inner = Node::Inner {
                    bounds: Rect::empty(),
                    children: vec![a, b],
                };
                inner.recompute_bounds();
                inner
            };
        }
    }

    fn insert_into(node: &mut Node<T>, rect: Rect, value: T) -> Option<(Node<T>, Node<T>)> {
        match node {
            Node::Leaf { bounds, entries } => {
                entries.push((rect, value));
                *bounds = bounds.union(&rect);
                if entries.len() > MAX_ENTRIES {
                    let split = Self::split_leaf(std::mem::take(entries));
                    return Some(split);
                }
                None
            }
            Node::Inner { bounds, children } => {
                *bounds = bounds.union(&rect);
                // Choose child needing least enlargement (ties: smaller area).
                let idx = children
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let ea = a.bounds().enlargement(&rect);
                        let eb = b.bounds().enlargement(&rect);
                        ea.partial_cmp(&eb)
                            .unwrap_or(Ordering::Equal)
                            .then_with(|| {
                                a.bounds()
                                    .area()
                                    .partial_cmp(&b.bounds().area())
                                    .unwrap_or(Ordering::Equal)
                            })
                    })
                    .map(|(i, _)| i)
                    // Inner nodes are never empty; 0 is a harmless
                    // stand-in for the impossible branch.
                    .unwrap_or(0);
                if let Some((a, b)) = Self::insert_into(&mut children[idx], rect, value) {
                    children.swap_remove(idx);
                    children.push(a);
                    children.push(b);
                    if children.len() > MAX_ENTRIES {
                        let split = Self::split_inner(std::mem::take(children));
                        return Some(split);
                    }
                }
                None
            }
        }
    }

    /// Quadratic split on seed pair with maximum dead space.
    fn pick_seeds(rects: &[Rect]) -> (usize, usize) {
        let mut best = (0, 1);
        let mut worst = f64::NEG_INFINITY;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                let dead = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
                if dead > worst {
                    worst = dead;
                    best = (i, j);
                }
            }
        }
        best
    }

    fn split_generic<U>(items: Vec<U>, rect_of: impl Fn(&U) -> Rect) -> (Vec<U>, Vec<U>) {
        let rects: Vec<Rect> = items.iter().map(&rect_of).collect();
        let (s1, s2) = Self::pick_seeds(&rects);
        let mut group_a: Vec<U> = Vec::new();
        let mut group_b: Vec<U> = Vec::new();
        let mut bounds_a = rects[s1];
        let mut bounds_b = rects[s2];
        for (i, item) in items.into_iter().enumerate() {
            if i == s1 {
                group_a.push(item);
                continue;
            }
            if i == s2 {
                group_b.push(item);
                continue;
            }
            let r = rects[i];
            let remaining = MIN_ENTRIES.saturating_sub(group_a.len());
            let remaining_b = MIN_ENTRIES.saturating_sub(group_b.len());
            // Force assignment if a group must absorb all the rest to
            // reach MIN_ENTRIES. (Conservative: checks counts only.)
            if remaining > 0 && group_b.len() + remaining >= MAX_ENTRIES {
                bounds_a = bounds_a.union(&r);
                group_a.push(item);
                continue;
            }
            if remaining_b > 0 && group_a.len() + remaining_b >= MAX_ENTRIES {
                bounds_b = bounds_b.union(&r);
                group_b.push(item);
                continue;
            }
            let ea = bounds_a.enlargement(&r);
            let eb = bounds_b.enlargement(&r);
            if ea < eb || (ea == eb && group_a.len() <= group_b.len()) {
                bounds_a = bounds_a.union(&r);
                group_a.push(item);
            } else {
                bounds_b = bounds_b.union(&r);
                group_b.push(item);
            }
        }
        (group_a, group_b)
    }

    fn split_leaf(entries: Vec<(Rect, T)>) -> (Node<T>, Node<T>) {
        let (a, b) = Self::split_generic(entries, |e| e.0);
        let mut na = Node::Leaf {
            bounds: Rect::empty(),
            entries: a,
        };
        let mut nb = Node::Leaf {
            bounds: Rect::empty(),
            entries: b,
        };
        na.recompute_bounds();
        nb.recompute_bounds();
        (na, nb)
    }

    fn split_inner(children: Vec<Node<T>>) -> (Node<T>, Node<T>) {
        let (a, b) = Self::split_generic(children, |c| c.bounds());
        let mut na = Node::Inner {
            bounds: Rect::empty(),
            children: a,
        };
        let mut nb = Node::Inner {
            bounds: Rect::empty(),
            children: b,
        };
        na.recompute_bounds();
        nb.recompute_bounds();
        (na, nb)
    }

    /// Iterates over entries whose rectangle intersects `query`.
    pub fn range<'a>(&'a self, query: &Rect) -> Range<'a, T> {
        let mut stack = Vec::new();
        if self.root.bounds().intersects(query) || self.root.len() > 0 {
            stack.push(&self.root);
        }
        Range {
            stack,
            leaf: None,
            query: *query,
        }
    }

    /// The `k` entries nearest to `(x, y)` by rectangle distance, closest
    /// first. Returns fewer than `k` when the tree is smaller.
    pub fn nearest(&self, x: f64, y: f64, k: usize) -> Vec<(Rect, &T)> {
        self.nearest_counted(x, y, k).0
    }

    /// Like [`RTree::nearest`], but also reports the search cost as the
    /// number of rectangle-distance evaluations performed. The count is a
    /// deterministic proxy for query latency, usable by simulations that
    /// must not read the wall clock.
    pub fn nearest_counted(&self, x: f64, y: f64, k: usize) -> (Vec<(Rect, &T)>, usize) {
        if k == 0 || self.len == 0 {
            return (Vec::new(), 0);
        }
        // Best-first search over a min-heap of (distance², node-or-entry).
        enum Item<'a, T> {
            Node(&'a Node<T>),
            Entry(Rect, &'a T),
        }
        struct HeapEntry<'a, T> {
            dist2: f64,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for HeapEntry<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist2 == other.dist2
            }
        }
        impl<T> Eq for HeapEntry<'_, T> {}
        impl<T> PartialOrd for HeapEntry<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for HeapEntry<'_, T> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap.
                other
                    .dist2
                    .partial_cmp(&self.dist2)
                    .unwrap_or(Ordering::Equal)
            }
        }
        let mut heap: BinaryHeap<HeapEntry<'_, T>> = BinaryHeap::new();
        let mut work = 1usize;
        heap.push(HeapEntry {
            dist2: self.root.bounds().distance2_to_point(x, y),
            item: Item::Node(&self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(HeapEntry { item, .. }) = heap.pop() {
            match item {
                Item::Entry(r, v) => {
                    out.push((r, v));
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf { entries, .. }) => {
                    work += entries.len();
                    for (r, v) in entries {
                        heap.push(HeapEntry {
                            dist2: r.distance2_to_point(x, y),
                            item: Item::Entry(*r, v),
                        });
                    }
                }
                Item::Node(Node::Inner { children, .. }) => {
                    work += children.len();
                    for c in children {
                        heap.push(HeapEntry {
                            dist2: c.bounds().distance2_to_point(x, y),
                            item: Item::Node(c),
                        });
                    }
                }
            }
        }
        (out, work)
    }

    /// Depth of the tree (1 for a single leaf). Exposed for tests and
    /// benchmarks that verify packing quality.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Inner { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

impl<T> FromIterator<(Rect, T)> for RTree<T> {
    fn from_iter<I: IntoIterator<Item = (Rect, T)>>(iter: I) -> Self {
        RTree::bulk_load(iter.into_iter().collect())
    }
}

/// Iterator over range-query results; see [`RTree::range`].
#[derive(Debug)]
pub struct Range<'a, T> {
    stack: Vec<&'a Node<T>>,
    leaf: Option<std::slice::Iter<'a, (Rect, T)>>,
    query: Rect,
}

impl<'a, T> Iterator for Range<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(iter) = &mut self.leaf {
                for (r, v) in iter.by_ref() {
                    if r.intersects(&self.query) {
                        return Some((r, v));
                    }
                }
                self.leaf = None;
            }
            let node = self.stack.pop()?;
            if !node.bounds().intersects(&self.query) {
                continue;
            }
            match node {
                Node::Leaf { entries, .. } => self.leaf = Some(entries.iter()),
                Node::Inner { children, .. } => {
                    for c in children {
                        if c.bounds().intersects(&self.query) {
                            self.stack.push(c);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Rect, usize)> {
        (0..n * n)
            .map(|i| {
                let x = (i % n) as f64;
                let y = (i / n) as f64;
                (Rect::point(x, y), i)
            })
            .collect()
    }

    #[test]
    fn insert_and_range() {
        let mut t = RTree::new();
        for (r, v) in grid_points(20) {
            t.insert(r, v);
        }
        assert_eq!(t.len(), 400);
        let q = Rect::new(0.0, 0.0, 4.0, 4.0).unwrap();
        let hits: Vec<usize> = t.range(&q).map(|(_, v)| *v).collect();
        assert_eq!(hits.len(), 25);
    }

    #[test]
    fn bulk_load_matches_insert_results() {
        let items = grid_points(15);
        let bulk: RTree<usize> = items.clone().into_iter().collect();
        let mut incr = RTree::new();
        for (r, v) in items {
            incr.insert(r, v);
        }
        let q = Rect::new(3.0, 3.0, 7.5, 9.0).unwrap();
        let mut a: Vec<usize> = bulk.range(&q).map(|(_, v)| *v).collect();
        let mut b: Vec<usize> = incr.range(&q).map(|(_, v)| *v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(bulk.len(), incr.len());
    }

    #[test]
    fn bulk_load_is_shallower_than_worst_case() {
        let t: RTree<usize> = grid_points(40).into_iter().collect(); // 1600 pts
        assert!(t.depth() <= 4, "depth {}", t.depth());
    }

    #[test]
    fn nearest_returns_sorted_by_distance() {
        let t: RTree<usize> = grid_points(10).into_iter().collect();
        let res = t.nearest(4.4, 4.4, 5);
        assert_eq!(res.len(), 5);
        assert_eq!(*res[0].1, 44); // (4,4)
        let mut prev = -1.0;
        for (r, _) in &res {
            let d = r.distance2_to_point(4.4, 4.4);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn nearest_edge_cases() {
        let t: RTree<usize> = RTree::new();
        assert!(t.nearest(0.0, 0.0, 3).is_empty());
        let t: RTree<usize> = grid_points(3).into_iter().collect();
        assert!(t.nearest(0.0, 0.0, 0).is_empty());
        assert_eq!(t.nearest(0.0, 0.0, 100).len(), 9);
    }

    #[test]
    fn empty_tree_range_is_empty() {
        let t: RTree<u8> = RTree::new();
        let q = Rect::new(-1.0, -1.0, 1.0, 1.0).unwrap();
        assert_eq!(t.range(&q).count(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn rect_entries_supported() {
        let mut t = RTree::new();
        t.insert(Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(), "big");
        t.insert(Rect::new(20.0, 20.0, 21.0, 21.0).unwrap(), "small");
        let q = Rect::new(5.0, 5.0, 6.0, 6.0).unwrap();
        let hits: Vec<&&str> = t.range(&q).map(|(_, v)| v).collect();
        assert_eq!(hits, vec![&"big"]);
    }

    #[test]
    fn range_brute_force_agreement_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let items: Vec<(Rect, usize)> = (0..500)
            .map(|i| {
                (
                    Rect::point(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                    i,
                )
            })
            .collect();
        let mut tree = RTree::new();
        for (r, v) in items.clone() {
            tree.insert(r, v);
        }
        for _ in 0..20 {
            let x0 = rng.gen_range(0.0..90.0);
            let y0 = rng.gen_range(0.0..90.0);
            let q = Rect::new(x0, y0, x0 + 10.0, y0 + 10.0).unwrap();
            let mut got: Vec<usize> = tree.range(&q).map(|(_, v)| *v).collect();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|(_, v)| *v)
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }
}
