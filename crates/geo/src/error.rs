//! Error types for the geospatial substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by geospatial operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A latitude was outside the `[-90, 90]` degree range.
    InvalidLatitude(f64),
    /// A longitude was outside the `[-180, 180]` degree range.
    InvalidLongitude(f64),
    /// A coordinate contained a NaN or infinite component.
    NonFiniteCoordinate,
    /// A geohash string contained a character outside the base-32 alphabet.
    InvalidGeohashChar(char),
    /// A geohash had zero length or exceeded the supported precision.
    InvalidGeohashLength(usize),
    /// A rectangle was constructed with min > max on some axis.
    InvalidRect,
    /// A query parameter was out of its valid domain (e.g. `k == 0`).
    InvalidQuery(&'static str),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} outside [-90, 90] degrees")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} outside [-180, 180] degrees")
            }
            GeoError::NonFiniteCoordinate => write!(f, "coordinate component was NaN or infinite"),
            GeoError::InvalidGeohashChar(c) => {
                write!(f, "character {c:?} is not in the geohash alphabet")
            }
            GeoError::InvalidGeohashLength(n) => {
                write!(f, "geohash length {n} outside supported range 1..=12")
            }
            GeoError::InvalidRect => write!(f, "rectangle has min > max on some axis"),
            GeoError::InvalidQuery(what) => write!(f, "invalid query parameter: {what}"),
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let msgs = [
            GeoError::InvalidLatitude(91.0).to_string(),
            GeoError::InvalidLongitude(-200.0).to_string(),
            GeoError::NonFiniteCoordinate.to_string(),
            GeoError::InvalidGeohashChar('!').to_string(),
            GeoError::InvalidGeohashLength(0).to_string(),
            GeoError::InvalidRect.to_string(),
            GeoError::InvalidQuery("k must be > 0").to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
