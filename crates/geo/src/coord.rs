//! Coordinate types and conversions on the WGS-84 ellipsoid.
//!
//! Three frames are used throughout Augur:
//!
//! - [`GeoPoint`]: geodetic latitude/longitude/altitude, the interchange
//!   format for everything that crosses a crate boundary.
//! - [`Ecef`]: earth-centred earth-fixed Cartesian metres, used as the
//!   pivot for exact conversions.
//! - [`Enu`]: a local east-north-up tangent frame anchored at a
//!   [`LocalFrame`] origin, used for rendering, tracking, and simulation
//!   where planar metres are the natural unit.

use serde::{Deserialize, Serialize};

use crate::error::GeoError;

/// Mean Earth radius in metres (IUGG), used by the haversine formulas.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// WGS-84 semi-major axis in metres.
pub const WGS84_A: f64 = 6_378_137.0;

/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;

/// WGS-84 first eccentricity squared.
pub const WGS84_E2: f64 = WGS84_F * (2.0 - WGS84_F);

/// A geodetic position: latitude and longitude in degrees, altitude in
/// metres above the WGS-84 ellipsoid.
///
/// Construction validates ranges; see [`GeoPoint::new`].
///
/// # Example
///
/// ```
/// use augur_geo::GeoPoint;
/// let p = GeoPoint::with_altitude(22.3364, 114.2655, 30.0)?;
/// assert_eq!(p.altitude_m(), 30.0);
/// # Ok::<(), augur_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
    alt_m: f64,
}

impl GeoPoint {
    /// Creates a point at sea level.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] / [`GeoError::InvalidLongitude`]
    /// when out of range and [`GeoError::NonFiniteCoordinate`] for NaN or
    /// infinite inputs.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, GeoError> {
        Self::with_altitude(lat_deg, lon_deg, 0.0)
    }

    /// Creates a point with an explicit altitude in metres.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeoPoint::new`].
    pub fn with_altitude(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Result<Self, GeoError> {
        if !lat_deg.is_finite() || !lon_deg.is_finite() || !alt_m.is_finite() {
            return Err(GeoError::NonFiniteCoordinate);
        }
        if !(-90.0..=90.0).contains(&lat_deg) {
            return Err(GeoError::InvalidLatitude(lat_deg));
        }
        if !(-180.0..=180.0).contains(&lon_deg) {
            return Err(GeoError::InvalidLongitude(lon_deg));
        }
        Ok(GeoPoint {
            lat_deg,
            lon_deg,
            alt_m,
        })
    }

    /// Creates a point by clamping into the valid range: NaN coordinates
    /// become 0, latitudes saturate at the poles, longitudes at the
    /// antimeridian. Total (never fails, never panics) — intended for
    /// arithmetic on already-valid points (midpoints, cell bisection)
    /// where the result is in range by construction and a fallible
    /// constructor would force panic-prone unwrapping.
    pub fn clamped(lat_deg: f64, lon_deg: f64) -> Self {
        let sanitize = |v: f64, lo: f64, hi: f64| {
            if v.is_nan() {
                0.0
            } else {
                v.clamp(lo, hi)
            }
        };
        GeoPoint {
            lat_deg: sanitize(lat_deg, -90.0, 90.0),
            lon_deg: sanitize(lon_deg, -180.0, 180.0),
            alt_m: 0.0,
        }
    }

    /// Latitude in degrees, in `[-90, 90]`.
    pub fn latitude_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees, in `[-180, 180]`.
    pub fn longitude_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Altitude in metres above the ellipsoid.
    pub fn altitude_m(&self) -> f64 {
        self.alt_m
    }

    /// Great-circle distance to `other` in metres on the mean sphere.
    ///
    /// Accurate to ~0.5 % of true ellipsoidal distance, which is ample for
    /// AR anchoring at street scale.
    pub fn haversine_m(&self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial bearing from this point towards `other`, degrees clockwise
    /// from true north in `[0, 360)`.
    pub fn bearing_deg(&self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_m` metres along the great
    /// circle with initial `bearing_deg` (clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let lat1 = self.lat_deg.to_radians();
        let lon1 = self.lon_deg.to_radians();
        let brg = bearing_deg.to_radians();
        let ang = distance_m / EARTH_RADIUS_M;
        let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
        let lon2 =
            lon1 + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
        let lon2 = (lon2.to_degrees() + 540.0) % 360.0 - 180.0;
        GeoPoint {
            lat_deg: lat2.to_degrees().clamp(-90.0, 90.0),
            lon_deg: lon2,
            alt_m: self.alt_m,
        }
    }

    /// Converts to earth-centred earth-fixed Cartesian coordinates.
    pub fn to_ecef(&self) -> Ecef {
        let lat = self.lat_deg.to_radians();
        let lon = self.lon_deg.to_radians();
        let n = WGS84_A / (1.0 - WGS84_E2 * lat.sin().powi(2)).sqrt();
        Ecef {
            x: (n + self.alt_m) * lat.cos() * lon.cos(),
            y: (n + self.alt_m) * lat.cos() * lon.sin(),
            z: (n * (1.0 - WGS84_E2) + self.alt_m) * lat.sin(),
        }
    }
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({:.6}°, {:.6}°, {:.1} m)",
            self.lat_deg, self.lon_deg, self.alt_m
        )
    }
}

/// Earth-centred earth-fixed Cartesian coordinates in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ecef {
    /// Metres towards the intersection of equator and prime meridian.
    pub x: f64,
    /// Metres towards the intersection of equator and 90° E.
    pub y: f64,
    /// Metres towards the north pole.
    pub z: f64,
}

impl Ecef {
    /// Converts back to geodetic coordinates (Bowring's iterative method,
    /// two refinement steps — sub-millimetre for terrestrial altitudes).
    pub fn to_geodetic(&self) -> GeoPoint {
        let p = (self.x * self.x + self.y * self.y).sqrt();
        let lon = self.y.atan2(self.x);
        // Initial guess (spherical), then Bowring refinement.
        let mut lat = (self.z / (p * (1.0 - WGS84_E2))).atan();
        let mut alt = 0.0;
        for _ in 0..4 {
            let n = WGS84_A / (1.0 - WGS84_E2 * lat.sin().powi(2)).sqrt();
            alt = if lat.cos().abs() > 1e-9 {
                p / lat.cos() - n
            } else {
                self.z.abs() - n * (1.0 - WGS84_E2)
            };
            lat = (self.z / (p * (1.0 - WGS84_E2 * n / (n + alt)))).atan();
        }
        GeoPoint {
            lat_deg: lat.to_degrees().clamp(-90.0, 90.0),
            lon_deg: lon.to_degrees(),
            alt_m: alt,
        }
    }
}

/// A position in a local east-north-up tangent frame, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Enu {
    /// Metres east of the frame origin.
    pub east: f64,
    /// Metres north of the frame origin.
    pub north: f64,
    /// Metres above the frame origin.
    pub up: f64,
}

impl Enu {
    /// Creates an ENU position.
    pub fn new(east: f64, north: f64, up: f64) -> Self {
        Enu { east, north, up }
    }

    /// Euclidean norm of the horizontal (east, north) component.
    pub fn horizontal_norm(&self) -> f64 {
        (self.east * self.east + self.north * self.north).sqrt()
    }

    /// Full 3-D Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.east * self.east + self.north * self.north + self.up * self.up).sqrt()
    }

    /// Euclidean distance to another ENU position in the same frame.
    pub fn distance(&self, other: Enu) -> f64 {
        let (de, dn, du) = (
            self.east - other.east,
            self.north - other.north,
            self.up - other.up,
        );
        (de * de + dn * dn + du * du).sqrt()
    }
}

/// A local tangent frame anchored at a geodetic origin.
///
/// All conversions go through ECEF so round-trips are exact to floating
/// point error over city-scale extents.
///
/// # Example
///
/// ```
/// use augur_geo::{GeoPoint, LocalFrame, Enu};
/// let frame = LocalFrame::new(GeoPoint::new(22.0, 114.0)?);
/// let p = frame.to_geodetic(Enu::new(100.0, 50.0, 2.0));
/// let back = frame.to_enu(p);
/// assert!((back.east - 100.0).abs() < 1e-6);
/// # Ok::<(), augur_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalFrame {
    origin: GeoPoint,
    origin_ecef: Ecef,
    // Rotation rows: ECEF -> ENU.
    east_axis: [f64; 3],
    north_axis: [f64; 3],
    up_axis: [f64; 3],
}

impl LocalFrame {
    /// Creates a frame with its origin at `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        let lat = origin.latitude_deg().to_radians();
        let lon = origin.longitude_deg().to_radians();
        let (slat, clat) = (lat.sin(), lat.cos());
        let (slon, clon) = (lon.sin(), lon.cos());
        LocalFrame {
            origin,
            origin_ecef: origin.to_ecef(),
            east_axis: [-slon, clon, 0.0],
            north_axis: [-slat * clon, -slat * slon, clat],
            up_axis: [clat * clon, clat * slon, slat],
        }
    }

    /// The geodetic origin of the frame.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Converts a geodetic point into this frame.
    pub fn to_enu(&self, p: GeoPoint) -> Enu {
        let e = p.to_ecef();
        let d = [
            e.x - self.origin_ecef.x,
            e.y - self.origin_ecef.y,
            e.z - self.origin_ecef.z,
        ];
        let dot = |a: &[f64; 3]| a[0] * d[0] + a[1] * d[1] + a[2] * d[2];
        Enu {
            east: dot(&self.east_axis),
            north: dot(&self.north_axis),
            up: dot(&self.up_axis),
        }
    }

    /// Converts a position in this frame back to geodetic coordinates.
    pub fn to_geodetic(&self, enu: Enu) -> GeoPoint {
        let x = self.origin_ecef.x
            + self.east_axis[0] * enu.east
            + self.north_axis[0] * enu.north
            + self.up_axis[0] * enu.up;
        let y = self.origin_ecef.y
            + self.east_axis[1] * enu.east
            + self.north_axis[1] * enu.north
            + self.up_axis[1] * enu.up;
        let z = self.origin_ecef.z
            + self.east_axis[2] * enu.east
            + self.north_axis[2] * enu.north
            + self.up_axis[2] * enu.up;
        Ecef { x, y, z }.to_geodetic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(
            GeoPoint::new(91.0, 0.0),
            Err(GeoError::InvalidLatitude(91.0))
        );
        assert_eq!(
            GeoPoint::new(0.0, 181.0),
            Err(GeoError::InvalidLongitude(181.0))
        );
        assert_eq!(
            GeoPoint::new(f64::NAN, 0.0),
            Err(GeoError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn haversine_known_distance() {
        // HKUST to HKIA is roughly 32 km.
        let hkust = GeoPoint::new(22.3364, 114.2655).unwrap();
        let hkia = GeoPoint::new(22.3080, 113.9185).unwrap();
        let d = hkust.haversine_m(hkia);
        assert!((30_000.0..40_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(10.0, 20.0).unwrap();
        let b = GeoPoint::new(-5.0, 100.0).unwrap();
        assert_eq!(a.haversine_m(a), 0.0);
        assert!((a.haversine_m(b) - b.haversine_m(a)).abs() < 1e-6);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new(0.0, 0.0).unwrap();
        let north = GeoPoint::new(1.0, 0.0).unwrap();
        let east = GeoPoint::new(0.0, 1.0).unwrap();
        assert!((origin.bearing_deg(north) - 0.0).abs() < 1e-6);
        assert!((origin.bearing_deg(east) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn destination_round_trip() {
        let start = GeoPoint::new(22.3, 114.2).unwrap();
        let dest = start.destination(47.0, 1234.0);
        assert!((start.haversine_m(dest) - 1234.0).abs() < 0.5);
        assert!((start.bearing_deg(dest) - 47.0).abs() < 0.1);
    }

    #[test]
    fn ecef_round_trip() {
        for &(lat, lon, alt) in &[
            (0.0, 0.0, 0.0),
            (22.3364, 114.2655, 55.0),
            (-45.0, -120.0, 1000.0),
            (89.0, 10.0, 5.0),
        ] {
            let p = GeoPoint::with_altitude(lat, lon, alt).unwrap();
            let back = p.to_ecef().to_geodetic();
            assert!((back.latitude_deg() - lat).abs() < 1e-7, "lat {lat}");
            assert!((back.longitude_deg() - lon).abs() < 1e-7, "lon {lon}");
            assert!((back.altitude_m() - alt).abs() < 1e-3, "alt {alt}");
        }
    }

    #[test]
    fn enu_round_trip_and_consistency_with_haversine() {
        let frame = LocalFrame::new(GeoPoint::new(22.3364, 114.2655).unwrap());
        let target = frame.to_geodetic(Enu::new(250.0, -130.0, 12.0));
        let enu = frame.to_enu(target);
        assert!((enu.east - 250.0).abs() < 1e-6);
        assert!((enu.north + 130.0).abs() < 1e-6);
        assert!((enu.up - 12.0).abs() < 1e-6);
        // Horizontal norm should be close to the great-circle distance for
        // a same-altitude comparison point.
        let flat = frame.to_geodetic(Enu::new(250.0, -130.0, 0.0));
        let d = frame.origin().haversine_m(flat);
        assert!((d - enu.horizontal_norm()).abs() < 1.0);
    }

    #[test]
    fn enu_distance_and_norms() {
        let a = Enu::new(3.0, 4.0, 0.0);
        assert_eq!(a.horizontal_norm(), 5.0);
        assert_eq!(a.norm(), 5.0);
        let b = Enu::new(3.0, 4.0, 12.0);
        assert_eq!(a.distance(b), 12.0);
    }

    #[test]
    fn display_formats() {
        let p = GeoPoint::with_altitude(1.5, 2.25, 3.0).unwrap();
        let s = p.to_string();
        assert!(s.contains("1.5") && s.contains("2.25"));
    }
}
