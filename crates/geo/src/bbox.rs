//! Axis-aligned bounding regions: planar [`Rect`] (metres, ENU) and
//! geodetic [`GeoBounds`] (degrees).

use serde::{Deserialize, Serialize};

use crate::coord::GeoPoint;
use crate::error::GeoError;

/// An axis-aligned rectangle in planar (east, north) metres.
///
/// Used by the spatial indexes and the synthetic city model. The empty
/// rectangle is representable via [`Rect::empty`] and behaves as the
/// identity for [`Rect::union`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl Rect {
    /// Creates a rectangle from min/max corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidRect`] if `min > max` on either axis or
    /// any bound is non-finite.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Result<Self, GeoError> {
        if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
            return Err(GeoError::InvalidRect);
        }
        if min_x > max_x || min_y > max_y {
            return Err(GeoError::InvalidRect);
        }
        Ok(Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// A rectangle spanning two opposite corners in either order. NaN
    /// coordinates are treated as 0. Total counterpart of [`Rect::new`]
    /// for callers whose geometry is monotone by construction.
    pub fn spanning(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        let z = |v: f64| if v.is_nan() { 0.0 } else { v };
        let (x0, y0, x1, y1) = (z(x0), z(y0), z(x1), z(y1));
        Rect {
            min_x: x0.min(x1),
            min_y: y0.min(y1),
            max_x: x0.max(x1),
            max_y: y0.max(y1),
        }
    }

    /// A degenerate rectangle containing a single point.
    pub fn point(x: f64, y: f64) -> Self {
        Rect {
            min_x: x,
            min_y: y,
            max_x: x,
            max_y: y,
        }
    }

    /// A rectangle centred at `(cx, cy)` with the given half extents.
    pub fn centered(cx: f64, cy: f64, half_w: f64, half_h: f64) -> Result<Self, GeoError> {
        Rect::new(cx - half_w, cy - half_h, cx + half_w, cy + half_h)
    }

    /// The canonical empty rectangle (identity for [`Rect::union`]).
    pub fn empty() -> Self {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// Whether this is the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Minimum x (west) bound.
    pub fn min_x(&self) -> f64 {
        self.min_x
    }
    /// Minimum y (south) bound.
    pub fn min_y(&self) -> f64 {
        self.min_y
    }
    /// Maximum x (east) bound.
    pub fn max_x(&self) -> f64 {
        self.max_x
    }
    /// Maximum y (north) bound.
    pub fn max_y(&self) -> f64 {
        self.max_y
    }

    /// Width along x in metres (0 for the empty rect).
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height along y in metres (0 for the empty rect).
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point `(x, y)`; NaN for the empty rectangle.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether `(x, y)` lies inside or on the boundary.
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.min_x && x <= self.max_x && y >= self.min_y && y <= self.max_y
    }

    /// Whether `other` is fully contained (boundary included).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Whether the two rectangles overlap (boundary contact counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// The overlap region, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Increase in area if `other` were unioned in (the classic R-tree
    /// insertion heuristic).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared distance from `(x, y)` to the nearest point of the
    /// rectangle; zero when inside.
    pub fn distance2_to_point(&self, x: f64, y: f64) -> f64 {
        let dx = (self.min_x - x).max(0.0).max(x - self.max_x);
        let dy = (self.min_y - y).max(0.0).max(y - self.max_y);
        dx * dx + dy * dy
    }
}

/// A geodetic bounding box in degrees. Does not handle antimeridian
/// wrap-around; callers at ±180° should split boxes themselves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoBounds {
    south: f64,
    west: f64,
    north: f64,
    east: f64,
}

impl GeoBounds {
    /// Creates a geodetic bounding box.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidRect`] for inverted or out-of-range
    /// bounds.
    pub fn new(south: f64, west: f64, north: f64, east: f64) -> Result<Self, GeoError> {
        GeoPoint::new(south, west)?;
        GeoPoint::new(north, east)?;
        if south > north || west > east {
            return Err(GeoError::InvalidRect);
        }
        Ok(GeoBounds {
            south,
            west,
            north,
            east,
        })
    }

    /// Creates a geodetic bounding box by clamping coordinates into range
    /// and ordering each axis. Total counterpart of [`GeoBounds::new`] for
    /// callers whose inputs are valid by construction (e.g. binary
    /// subdivision of an already-valid cell).
    pub fn clamped(south: f64, west: f64, north: f64, east: f64) -> Self {
        let a = GeoPoint::clamped(south, west);
        let b = GeoPoint::clamped(north, east);
        GeoBounds {
            south: a.latitude_deg().min(b.latitude_deg()),
            west: a.longitude_deg().min(b.longitude_deg()),
            north: a.latitude_deg().max(b.latitude_deg()),
            east: a.longitude_deg().max(b.longitude_deg()),
        }
    }

    /// Southern latitude bound in degrees.
    pub fn south(&self) -> f64 {
        self.south
    }
    /// Western longitude bound in degrees.
    pub fn west(&self) -> f64 {
        self.west
    }
    /// Northern latitude bound in degrees.
    pub fn north(&self) -> f64 {
        self.north
    }
    /// Eastern longitude bound in degrees.
    pub fn east(&self) -> f64 {
        self.east
    }

    /// Whether the point lies inside (boundary included).
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.latitude_deg() >= self.south
            && p.latitude_deg() <= self.north
            && p.longitude_deg() >= self.west
            && p.longitude_deg() <= self.east
    }

    /// Centre of the box.
    pub fn center(&self) -> GeoPoint {
        // The midpoint of valid bounds is valid; `clamped` keeps the
        // computation total without a panicking unwrap.
        GeoPoint::clamped(
            (self.south + self.north) / 2.0,
            (self.west + self.east) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_validation() {
        assert!(Rect::new(0.0, 0.0, -1.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, f64::NAN, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let r = Rect::new(1.0, 2.0, 3.0, 4.0).unwrap();
        assert_eq!(e.union(&r), r);
        assert!(!e.intersects(&r));
        assert!(!r.contains_rect(&e));
    }

    #[test]
    fn containment_and_intersection() {
        let big = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let small = Rect::new(2.0, 2.0, 4.0, 4.0).unwrap();
        let off = Rect::new(20.0, 20.0, 30.0, 30.0).unwrap();
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&off));
        assert_eq!(big.intersection(&small), Some(small));
        assert_eq!(big.intersection(&off), None);
        assert!(big.contains_point(0.0, 0.0));
        assert!(!big.contains_point(-0.1, 0.0));
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        let b = Rect::new(2.0, 0.0, 3.0, 1.0).unwrap();
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 3.0, 1.0).unwrap());
        assert_eq!(a.enlargement(&b), 2.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn distance2_to_point() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0).unwrap();
        assert_eq!(r.distance2_to_point(1.0, 1.0), 0.0);
        assert_eq!(r.distance2_to_point(5.0, 2.0), 9.0);
        assert_eq!(r.distance2_to_point(-3.0, -4.0), 25.0);
    }

    #[test]
    fn geo_bounds() {
        let b = GeoBounds::new(22.0, 114.0, 23.0, 115.0).unwrap();
        assert!(b.contains(GeoPoint::new(22.5, 114.5).unwrap()));
        assert!(!b.contains(GeoPoint::new(21.9, 114.5).unwrap()));
        let c = b.center();
        assert!((c.latitude_deg() - 22.5).abs() < 1e-9);
        assert!(GeoBounds::new(23.0, 114.0, 22.0, 115.0).is_err());
        assert!(GeoBounds::new(-91.0, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn centered_constructor() {
        let r = Rect::centered(10.0, 20.0, 2.0, 3.0).unwrap();
        assert_eq!(r.center(), (10.0, 20.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 6.0);
    }
}
