//! Property-based tests for the geospatial substrate.

use augur_geo::{GeoPoint, Geohash, LocalFrame, QuadTree, RTree, Rect};
use proptest::prelude::*;

fn arb_lat() -> impl Strategy<Value = f64> {
    -85.0f64..85.0
}

fn arb_lon() -> impl Strategy<Value = f64> {
    -179.0f64..179.0
}

proptest! {
    #[test]
    fn haversine_triangle_inequality(
        lat1 in arb_lat(), lon1 in arb_lon(),
        lat2 in arb_lat(), lon2 in arb_lon(),
        lat3 in arb_lat(), lon3 in arb_lon(),
    ) {
        let a = GeoPoint::new(lat1, lon1).unwrap();
        let b = GeoPoint::new(lat2, lon2).unwrap();
        let c = GeoPoint::new(lat3, lon3).unwrap();
        let ab = a.haversine_m(b);
        let bc = b.haversine_m(c);
        let ac = a.haversine_m(c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn ecef_round_trip(lat in arb_lat(), lon in arb_lon(), alt in -100.0f64..9000.0) {
        let p = GeoPoint::with_altitude(lat, lon, alt).unwrap();
        let back = p.to_ecef().to_geodetic();
        prop_assert!((back.latitude_deg() - lat).abs() < 1e-6);
        prop_assert!((back.longitude_deg() - lon).abs() < 1e-6);
        prop_assert!((back.altitude_m() - alt).abs() < 1e-2);
    }

    #[test]
    fn enu_round_trip(
        lat in arb_lat(), lon in arb_lon(),
        east in -5000.0f64..5000.0, north in -5000.0f64..5000.0, up in -50.0f64..200.0,
    ) {
        let frame = LocalFrame::new(GeoPoint::new(lat, lon).unwrap());
        let p = frame.to_geodetic(augur_geo::Enu::new(east, north, up));
        let enu = frame.to_enu(p);
        prop_assert!((enu.east - east).abs() < 1e-5);
        prop_assert!((enu.north - north).abs() < 1e-5);
        prop_assert!((enu.up - up).abs() < 1e-5);
    }

    #[test]
    fn geohash_bounds_always_contain_point(
        lat in arb_lat(), lon in arb_lon(), prec in 1usize..=12,
    ) {
        let p = GeoPoint::new(lat, lon).unwrap();
        let h = Geohash::encode(p, prec).unwrap();
        prop_assert!(h.bounds().contains(p));
        // Parent contains child.
        if let Some(parent) = h.parent() {
            prop_assert!(parent.bounds().contains(p));
            prop_assert!(parent.contains(&h));
        }
    }

    #[test]
    fn destination_distance_matches(
        lat in arb_lat(), lon in arb_lon(),
        bearing in 0.0f64..360.0, dist in 1.0f64..100_000.0,
    ) {
        let p = GeoPoint::new(lat, lon).unwrap();
        let q = p.destination(bearing, dist);
        prop_assert!((p.haversine_m(q) - dist).abs() < dist * 1e-6 + 0.5);
    }

    #[test]
    fn rtree_range_matches_brute_force(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..200),
        qx in 0.0f64..80.0, qy in 0.0f64..80.0, qw in 1.0f64..20.0, qh in 1.0f64..20.0,
    ) {
        let mut tree = RTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Rect::point(x, y), i);
        }
        let q = Rect::new(qx, qy, qx + qw, qy + qh).unwrap();
        let mut got: Vec<usize> = tree.range(&q).map(|(_, v)| *v).collect();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| q.contains_point(x, y))
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_nearest_first_is_global_minimum(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..100),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0,
    ) {
        let tree: RTree<usize> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::point(x, y), i))
            .collect();
        let res = tree.nearest(qx, qy, 1);
        prop_assert_eq!(res.len(), 1);
        let best = res[0].0.distance2_to_point(qx, qy);
        for &(x, y) in &pts {
            let d2 = (x - qx).powi(2) + (y - qy).powi(2);
            prop_assert!(best <= d2 + 1e-9);
        }
    }

    #[test]
    fn quadtree_range_matches_brute_force(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..200),
        qx in 0.0f64..80.0, qy in 0.0f64..80.0, qw in 1.0f64..20.0, qh in 1.0f64..20.0,
    ) {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 100.0, 100.0).unwrap());
        for (i, &(x, y)) in pts.iter().enumerate() {
            qt.insert(x, y, i).unwrap();
        }
        let q = Rect::new(qx, qy, qx + qw, qy + qh).unwrap();
        let mut got: Vec<usize> = qt.range(&q).into_iter().map(|(_, _, v)| *v).collect();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| q.contains_point(x, y))
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rect_union_contains_both(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0, aw in 0.0f64..20.0, ah in 0.0f64..20.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0, bw in 0.0f64..20.0, bh in 0.0f64..20.0,
    ) {
        let a = Rect::new(ax, ay, ax + aw, ay + ah).unwrap();
        let b = Rect::new(bx, by, bx + bw, by + bh).unwrap();
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }
}
