//! AR presentation for the Augur platform.
//!
//! §2.1 of the paper is blunt about the state of the art: "floating
//! bubbles … seem to be pointless and no improvement on a 2D map".
//! Getting from bubbles to content that reads as part of the world takes
//! exactly the machinery this crate provides:
//!
//! - [`scene`]: the scene graph of overlay items in world space.
//! - [`view`]: the display camera — frustum culling and perspective
//!   projection into a pixel viewport.
//! - [`layout`]: screen-space label placement — the naive bubble
//!   baseline, a greedy priority declutterer, and a force-directed
//!   refiner, with overlap/displacement metrics (experiment E4).
//! - [`occlusion`]: visibility classification against the city model and
//!   the "x-ray vision" reveal mode (experiment E5).
//! - [`frame`]: frame-budget accounting and distance-based level of
//!   detail, enforcing the 30 Hz interactivity bound (Azuma's second
//!   requirement).

/// The crate error type.
pub mod error;
/// Frame budgets and level-of-detail control.
pub mod frame;
/// Label layout: naive, greedy-decluttered, force-directed.
pub mod layout;
/// Occlusion classification and x-ray reveals against the city model.
pub mod occlusion;
/// The overlay scene graph.
pub mod scene;
/// Camera projection and viewport types.
pub mod view;

/// The crate error type, re-exported from [`error`].
pub use error::RenderError;
/// Frame pacing types re-exported from [`frame`].
pub use frame::{FrameBudget, LodLevel, StageTiming};
/// Layout algorithms re-exported from [`layout`].
pub use layout::{force_layout, greedy_layout, naive_layout, LabelBox, LayoutMetrics, PlacedLabel};
/// Occlusion machinery re-exported from [`occlusion`].
pub use occlusion::{
    classify_visibility, xray_reveals, OcclusionClass, OcclusionIndex, XRayReveal,
};
/// Scene-graph types re-exported from [`scene`].
pub use scene::{OverlayItem, OverlayKind, SceneGraph};
/// View types re-exported from [`view`].
pub use view::{ViewCamera, Viewport};
