//! Frame-budget accounting and level of detail.
//!
//! Azuma's second requirement — "interactive in real time" — translates
//! to a hard per-frame budget (33 ms at 30 Hz). [`FrameBudget`] tracks
//! how pipeline stages spend it; [`LodLevel`] trades render cost against
//! distance so the budget survives dense scenes.

use serde::{Deserialize, Serialize};

/// One stage's share of a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name ("track", "analytics", "layout", "occlusion"...).
    pub stage: String,
    /// Time spent, microseconds.
    pub micros: u64,
}

/// Accounts one frame against a budget.
///
/// # Example
///
/// ```
/// use augur_render::FrameBudget;
///
/// let mut frame = FrameBudget::for_fps(30.0);
/// frame.record("track", 2_000);
/// frame.record("layout", 5_000);
/// assert!(frame.within_budget());
/// assert_eq!(frame.spent_micros(), 7_000);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameBudget {
    budget_micros: u64,
    stages: Vec<StageTiming>,
}

impl FrameBudget {
    /// A budget for the given frame rate.
    pub fn for_fps(fps: f64) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        FrameBudget {
            budget_micros: (1e6 / fps) as u64,
            stages: Vec::new(),
        }
    }

    /// The total budget in microseconds.
    pub fn budget_micros(&self) -> u64 {
        self.budget_micros
    }

    /// Records a stage's cost.
    pub fn record(&mut self, stage: &str, micros: u64) {
        self.stages.push(StageTiming {
            stage: stage.to_string(),
            micros,
        });
    }

    /// Total spent this frame.
    pub fn spent_micros(&self) -> u64 {
        self.stages.iter().map(|s| s.micros).sum()
    }

    /// Remaining budget (saturating).
    pub fn remaining_micros(&self) -> u64 {
        self.budget_micros.saturating_sub(self.spent_micros())
    }

    /// Whether the frame fits the budget.
    pub fn within_budget(&self) -> bool {
        self.spent_micros() <= self.budget_micros
    }

    /// The most expensive stage, if any.
    pub fn bottleneck(&self) -> Option<&StageTiming> {
        self.stages.iter().max_by_key(|s| s.micros)
    }

    /// Recorded stages in order.
    pub fn stages(&self) -> &[StageTiming] {
        &self.stages
    }

    /// Clears stage records for the next frame.
    pub fn reset(&mut self) {
        self.stages.clear();
    }
}

/// Render detail levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LodLevel {
    /// Full geometry + text.
    High,
    /// Simplified geometry, short text.
    Medium,
    /// Icon/dot only.
    Low,
    /// Not rendered.
    Culled,
}

impl LodLevel {
    /// Selects detail by distance with the standard thresholds: High
    /// within 50 m, Medium within 200 m, Low within `far_m`, Culled
    /// beyond.
    pub fn for_distance(distance_m: f64, far_m: f64) -> LodLevel {
        if distance_m < 0.0 || distance_m > far_m {
            LodLevel::Culled
        } else if distance_m <= 50.0 {
            LodLevel::High
        } else if distance_m <= 200.0 {
            LodLevel::Medium
        } else {
            LodLevel::Low
        }
    }

    /// Relative render cost weight (used by the frame simulator).
    pub fn cost_weight(&self) -> f64 {
        match self {
            LodLevel::High => 1.0,
            LodLevel::Medium => 0.35,
            LodLevel::Low => 0.08,
            LodLevel::Culled => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accounting() {
        let mut f = FrameBudget::for_fps(30.0);
        assert_eq!(f.budget_micros(), 33_333);
        f.record("track", 10_000);
        f.record("layout", 20_000);
        assert!(f.within_budget());
        assert_eq!(f.remaining_micros(), 3_333);
        f.record("render", 10_000);
        assert!(!f.within_budget());
        assert_eq!(f.remaining_micros(), 0);
        assert_eq!(f.bottleneck().unwrap().stage, "layout");
        f.reset();
        assert_eq!(f.spent_micros(), 0);
        assert!(f.stages().is_empty());
    }

    #[test]
    #[should_panic(expected = "fps must be positive")]
    fn zero_fps_rejected() {
        let _ = FrameBudget::for_fps(0.0);
    }

    #[test]
    fn lod_thresholds() {
        assert_eq!(LodLevel::for_distance(10.0, 1000.0), LodLevel::High);
        assert_eq!(LodLevel::for_distance(50.0, 1000.0), LodLevel::High);
        assert_eq!(LodLevel::for_distance(120.0, 1000.0), LodLevel::Medium);
        assert_eq!(LodLevel::for_distance(500.0, 1000.0), LodLevel::Low);
        assert_eq!(LodLevel::for_distance(1500.0, 1000.0), LodLevel::Culled);
        assert_eq!(LodLevel::for_distance(-1.0, 1000.0), LodLevel::Culled);
    }

    #[test]
    fn lod_cost_is_monotone() {
        assert!(LodLevel::High.cost_weight() > LodLevel::Medium.cost_weight());
        assert!(LodLevel::Medium.cost_weight() > LodLevel::Low.cost_weight());
        assert!(LodLevel::Low.cost_weight() > LodLevel::Culled.cost_weight());
    }
}
