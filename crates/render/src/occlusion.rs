//! Occlusion classification and "x-ray vision".
//!
//! The paper's signature interaction — "see through walls and shelves" —
//! requires knowing *that* a target is hidden and *what* hides it.
//! [`classify_visibility`] ray-tests targets against the city model;
//! [`OcclusionIndex`] accelerates this with an R-tree over building
//! footprints (experiment E5 measures naive vs indexed cost);
//! [`XRayReveal`] turns occluded targets into highlight directives.

use serde::{Deserialize, Serialize};

use augur_geo::{Building, CityModel, Enu, RTree, Rect};

use crate::view::ViewCamera;

/// Visibility classification of one target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OcclusionClass {
    /// In the frustum with clear line of sight.
    Visible,
    /// In the frustum but behind the building with the given id.
    Occluded {
        /// Id of the first obstructing building.
        by_building: u32,
    },
    /// Outside the view frustum entirely.
    OutOfView,
}

/// Classifies a target against the city with a linear scan over
/// buildings (the baseline the index is benchmarked against).
pub fn classify_visibility(camera: &ViewCamera, target: Enu, city: &CityModel) -> OcclusionClass {
    if !camera.in_frustum(target) {
        return OcclusionClass::OutOfView;
    }
    match city.first_obstruction(camera.position, target) {
        Some((b, _)) => OcclusionClass::Occluded { by_building: b.id },
        None => OcclusionClass::Visible,
    }
}

/// R-tree-accelerated occlusion queries: only buildings whose footprint
/// intersects the ray's bounding box are ray-tested.
#[derive(Debug, Clone)]
pub struct OcclusionIndex {
    tree: RTree<usize>,
    buildings: Vec<Building>,
}

impl OcclusionIndex {
    /// Builds the index from a city model.
    pub fn build(city: &CityModel) -> Self {
        let buildings: Vec<Building> = city.buildings().to_vec();
        let tree = RTree::bulk_load(
            buildings
                .iter()
                .enumerate()
                .map(|(i, b)| (b.footprint, i))
                .collect(),
        );
        OcclusionIndex { tree, buildings }
    }

    /// Number of indexed buildings.
    pub fn len(&self) -> usize {
        self.buildings.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// Indexed equivalent of [`classify_visibility`].
    pub fn classify(&self, camera: &ViewCamera, target: Enu) -> OcclusionClass {
        if !camera.in_frustum(target) {
            return OcclusionClass::OutOfView;
        }
        let a = camera.position;
        let query = Rect::spanning(a.east, a.north, target.east, target.north);
        let mut best: Option<(u32, f64)> = None;
        for (_, &i) in self.tree.range(&query) {
            let b = &self.buildings[i];
            if let Some(t) = b.intersect_segment(a, target) {
                if t <= 1e-9 && b.contains(a) {
                    continue;
                }
                match best {
                    Some((_, bt)) if bt <= t => {}
                    _ => best = Some((b.id, t)),
                }
            }
        }
        match best {
            Some((id, _)) => OcclusionClass::Occluded { by_building: id },
            None => OcclusionClass::Visible,
        }
    }
}

/// X-ray reveal decision for one target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XRayReveal {
    /// The target's scene id.
    pub target_id: u64,
    /// Whether to draw the see-through contour.
    pub reveal: bool,
    /// The obstructing building (when revealed).
    pub through_building: Option<u32>,
    /// Suggested contour opacity, attenuated with distance so deep
    /// targets read as deeper (simple depth cue).
    pub opacity: f64,
}

/// Computes x-ray reveals for a set of (id, position) targets: visible
/// targets need no reveal; occluded ones get a contour with
/// distance-attenuated opacity; out-of-view targets get nothing.
pub fn xray_reveals(
    camera: &ViewCamera,
    targets: &[(u64, Enu)],
    index: &OcclusionIndex,
) -> Vec<XRayReveal> {
    targets
        .iter()
        .filter_map(|(id, pos)| match index.classify(camera, *pos) {
            OcclusionClass::OutOfView => None,
            OcclusionClass::Visible => Some(XRayReveal {
                target_id: *id,
                reveal: false,
                through_building: None,
                opacity: 1.0,
            }),
            OcclusionClass::Occluded { by_building } => {
                let d = camera.distance(*pos);
                Some(XRayReveal {
                    target_id: *id,
                    reveal: true,
                    through_building: Some(by_building),
                    opacity: (1.0 - d / camera.far_m).clamp(0.15, 0.8),
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::Viewport;
    use augur_geo::CityParams;
    use rand::SeedableRng;

    fn city() -> CityModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        CityModel::generate(&CityParams::default(), &mut rng)
    }

    fn cam_at(position: Enu, heading: f64) -> ViewCamera {
        ViewCamera::new(position, heading, 66.0, Viewport::default(), 2000.0).unwrap()
    }

    #[test]
    fn target_behind_building_is_occluded() {
        let c = city();
        let b = &c.buildings()[0];
        let (cx, cy) = b.footprint.center();
        // Observer west of the building, target east of it, same height.
        let cam = cam_at(Enu::new(cx - 200.0, cy, 1.6), 90.0);
        let target = Enu::new(cx + 200.0, cy, 1.6);
        let class = classify_visibility(&cam, target, &c);
        assert!(
            matches!(class, OcclusionClass::Occluded { .. }),
            "{class:?}"
        );
    }

    #[test]
    fn elevated_target_is_visible() {
        let c = city();
        let cam = cam_at(Enu::new(-400.0, 0.0, 1.6), 90.0);
        let target = Enu::new(400.0, 50.0, 450.0);
        // 450 m is above every generated building (clamped at 400).
        if cam.in_frustum(target) {
            assert_eq!(
                classify_visibility(&cam, target, &c),
                OcclusionClass::Visible
            );
        }
    }

    #[test]
    fn behind_camera_is_out_of_view() {
        let c = city();
        let cam = cam_at(Enu::new(0.0, 0.0, 1.6), 0.0);
        assert_eq!(
            classify_visibility(&cam, Enu::new(0.0, -100.0, 1.6), &c),
            OcclusionClass::OutOfView
        );
    }

    #[test]
    fn index_agrees_with_linear_scan() {
        let c = city();
        let index = OcclusionIndex::build(&c);
        assert_eq!(index.len(), c.buildings().len());
        let cam = cam_at(Enu::new(-300.0, -120.0, 1.6), 45.0);
        let mut checked = 0;
        for i in 0..200 {
            let angle = i as f64 * 0.031;
            let target = Enu::new(
                -300.0 + 500.0 * angle.cos().abs(),
                -120.0 + 500.0 * angle.sin(),
                1.6 + (i % 40) as f64,
            );
            let naive = classify_visibility(&cam, target, &c);
            let fast = index.classify(&cam, target);
            // The *first* obstructing building may differ only if two
            // buildings intersect at identical t; compare the class kind
            // and, for occlusion, that both report a real obstruction.
            match (naive, fast) {
                (OcclusionClass::Visible, OcclusionClass::Visible)
                | (OcclusionClass::OutOfView, OcclusionClass::OutOfView)
                | (OcclusionClass::Occluded { .. }, OcclusionClass::Occluded { .. }) => {
                    checked += 1;
                }
                (a, b) => panic!("mismatch at {i}: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(checked, 200);
    }

    #[test]
    fn xray_reveals_only_occluded() {
        let c = city();
        let index = OcclusionIndex::build(&c);
        let b = &c.buildings()[0];
        let (cx, cy) = b.footprint.center();
        let cam = cam_at(Enu::new(cx - 200.0, cy, 1.6), 90.0);
        let targets = vec![
            (1u64, Enu::new(cx + 200.0, cy, 1.6)), // occluded
            (2u64, Enu::new(cx - 150.0, cy, 1.6)), // visible, just ahead
            (3u64, Enu::new(cx - 400.0, cy, 1.6)), // behind camera
        ];
        let reveals = xray_reveals(&cam, &targets, &index);
        let ids: Vec<u64> = reveals.iter().map(|r| r.target_id).collect();
        assert!(ids.contains(&1) && ids.contains(&2) && !ids.contains(&3));
        let r1 = reveals.iter().find(|r| r.target_id == 1).unwrap();
        assert!(r1.reveal);
        assert!(r1.through_building.is_some());
        assert!((0.15..=0.8).contains(&r1.opacity));
        let r2 = reveals.iter().find(|r| r.target_id == 2).unwrap();
        assert!(!r2.reveal);
        assert_eq!(r2.opacity, 1.0);
    }

    #[test]
    fn empty_city_never_occludes() {
        let empty = CityModel::generate(
            &CityParams {
                blocks: 0,
                ..Default::default()
            },
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        let index = OcclusionIndex::build(&empty);
        assert!(index.is_empty());
        let cam = cam_at(Enu::new(0.0, 0.0, 1.6), 0.0);
        assert_eq!(
            index.classify(&cam, Enu::new(0.0, 100.0, 1.6)),
            OcclusionClass::Visible
        );
    }
}
