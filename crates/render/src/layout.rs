//! Screen-space label layout.
//!
//! Three strategies, in increasing quality and cost, measured by
//! experiment E4:
//!
//! - [`naive_layout`]: every label centred on its anchor — the "floating
//!   bubbles" the paper derides; labels overlap freely.
//! - [`greedy_layout`]: place in priority order, trying a ring of
//!   candidate offsets around the anchor and skipping labels that cannot
//!   avoid overlap.
//! - [`force_layout`]: start from the naive placement and iterate
//!   pairwise repulsion plus anchor springs, then drop residual
//!   overlappers by priority.
//!
//! [`LayoutMetrics`] reports overlap ratio, mean anchor displacement, and
//! drop rate — the quantities that distinguish "pointless bubbles" from a
//! readable overlay.

use serde::{Deserialize, Serialize};

use crate::view::Viewport;

/// A label to place: anchor pixel plus box extent and priority.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelBox {
    /// Stable id (scene item id).
    pub id: u64,
    /// Anchor pixel (where the leader line points).
    pub anchor_px: (f64, f64),
    /// Box width, pixels.
    pub width_px: f64,
    /// Box height, pixels.
    pub height_px: f64,
    /// Display priority; higher wins contention.
    pub priority: f64,
}

/// A placed label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedLabel {
    /// The input label id.
    pub id: u64,
    /// Centre of the placed box, pixels.
    pub center_px: (f64, f64),
    /// Anchor it refers to.
    pub anchor_px: (f64, f64),
}

impl PlacedLabel {
    fn rect(&self, label: &LabelBox) -> (f64, f64, f64, f64) {
        (
            self.center_px.0 - label.width_px / 2.0,
            self.center_px.1 - label.height_px / 2.0,
            self.center_px.0 + label.width_px / 2.0,
            self.center_px.1 + label.height_px / 2.0,
        )
    }

    /// Distance from the box centre to its anchor.
    pub fn displacement(&self) -> f64 {
        let dx = self.center_px.0 - self.anchor_px.0;
        let dy = self.center_px.1 - self.anchor_px.1;
        (dx * dx + dy * dy).sqrt()
    }
}

fn rects_overlap(a: (f64, f64, f64, f64), b: (f64, f64, f64, f64)) -> bool {
    a.0 < b.2 && a.2 > b.0 && a.1 < b.3 && a.3 > b.1
}

/// Quality metrics of a layout; see [`LayoutMetrics::measure`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayoutMetrics {
    /// Fraction of placed-label pairs that overlap.
    pub overlap_ratio: f64,
    /// Fraction of placed labels touching at least one other label —
    /// the user-visible clutter measure.
    pub overlapped_label_ratio: f64,
    /// Mean distance from box centre to anchor, pixels.
    pub mean_displacement_px: f64,
    /// Fraction of input labels that were dropped.
    pub drop_ratio: f64,
    /// Number of labels placed.
    pub placed: usize,
}

impl LayoutMetrics {
    /// Measures a layout against its inputs.
    pub fn measure(labels: &[LabelBox], placed: &[PlacedLabel]) -> Self {
        let by_id: std::collections::HashMap<u64, &LabelBox> =
            labels.iter().map(|l| (l.id, l)).collect();
        let mut overlaps = 0usize;
        let mut pairs = 0usize;
        let mut touched = vec![false; placed.len()];
        for (i, a) in placed.iter().enumerate() {
            for (joff, b) in placed.iter().skip(i + 1).enumerate() {
                pairs += 1;
                let (Some(la), Some(lb)) = (by_id.get(&a.id), by_id.get(&b.id)) else {
                    continue;
                };
                if rects_overlap(a.rect(la), b.rect(lb)) {
                    overlaps += 1;
                    touched[i] = true;
                    touched[i + 1 + joff] = true;
                }
            }
        }
        let overlapped_labels = touched.iter().filter(|t| **t).count();
        let mean_disp = if placed.is_empty() {
            0.0
        } else {
            placed.iter().map(|p| p.displacement()).sum::<f64>() / placed.len() as f64
        };
        LayoutMetrics {
            overlap_ratio: if pairs > 0 {
                overlaps as f64 / pairs as f64
            } else {
                0.0
            },
            overlapped_label_ratio: if placed.is_empty() {
                0.0
            } else {
                overlapped_labels as f64 / placed.len() as f64
            },
            mean_displacement_px: mean_disp,
            drop_ratio: 1.0 - placed.len() as f64 / labels.len().max(1) as f64,
            placed: placed.len(),
        }
    }
}

/// Naive placement: every box centred on its anchor.
pub fn naive_layout(labels: &[LabelBox], _viewport: Viewport) -> Vec<PlacedLabel> {
    labels
        .iter()
        .map(|l| PlacedLabel {
            id: l.id,
            center_px: l.anchor_px,
            anchor_px: l.anchor_px,
        })
        .collect()
}

fn clamp_to_viewport(center: (f64, f64), l: &LabelBox, vp: Viewport) -> (f64, f64) {
    (
        center
            .0
            .clamp(l.width_px / 2.0, vp.width_px as f64 - l.width_px / 2.0),
        center
            .1
            .clamp(l.height_px / 2.0, vp.height_px as f64 - l.height_px / 2.0),
    )
}

/// Greedy declutter: place in priority order, trying the anchor plus a
/// ring of offsets; labels that cannot be placed without overlap are
/// dropped.
pub fn greedy_layout(labels: &[LabelBox], viewport: Viewport) -> Vec<PlacedLabel> {
    let mut order: Vec<&LabelBox> = labels.iter().collect();
    order.sort_by(|a, b| {
        b.priority
            .partial_cmp(&a.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    let mut placed: Vec<(PlacedLabel, (f64, f64, f64, f64))> = Vec::new();
    for l in order {
        let mut candidates = vec![l.anchor_px];
        // Rings of 8 directions at growing radii.
        for ring in 1..=3 {
            let r = ring as f64 * (l.height_px.max(l.width_px / 2.0) + 4.0);
            for k in 0..8 {
                let a = std::f64::consts::TAU * k as f64 / 8.0;
                candidates.push((l.anchor_px.0 + r * a.cos(), l.anchor_px.1 + r * a.sin()));
            }
        }
        let spot = candidates.into_iter().find_map(|c| {
            let c = clamp_to_viewport(c, l, viewport);
            let p = PlacedLabel {
                id: l.id,
                center_px: c,
                anchor_px: l.anchor_px,
            };
            let r = p.rect(l);
            placed
                .iter()
                .all(|(_, other)| !rects_overlap(r, *other))
                .then_some((p, r))
        });
        if let Some((p, r)) = spot {
            placed.push((p, r));
        }
    }
    placed.into_iter().map(|(p, _)| p).collect()
}

/// Force-directed refinement: anchor springs pull boxes home, pairwise
/// repulsion pushes overlapping boxes apart; after `iterations`, any
/// label still overlapping a higher-priority one is dropped.
pub fn force_layout(
    labels: &[LabelBox],
    viewport: Viewport,
    iterations: usize,
) -> Vec<PlacedLabel> {
    let mut centers: Vec<(f64, f64)> = labels.iter().map(|l| l.anchor_px).collect();
    let spring = 0.05;
    let repulse = 0.6;
    for _ in 0..iterations {
        let mut forces = vec![(0.0f64, 0.0f64); labels.len()];
        for i in 0..labels.len() {
            // Anchor spring.
            forces[i].0 += (labels[i].anchor_px.0 - centers[i].0) * spring;
            forces[i].1 += (labels[i].anchor_px.1 - centers[i].1) * spring;
            for j in (i + 1)..labels.len() {
                let ri = rect_at(centers[i], &labels[i]);
                let rj = rect_at(centers[j], &labels[j]);
                if rects_overlap(ri, rj) {
                    // Push apart along the centre line; resolve the
                    // degenerate same-centre case along x.
                    let mut dx = centers[i].0 - centers[j].0;
                    let mut dy = centers[i].1 - centers[j].1;
                    let norm = (dx * dx + dy * dy).sqrt();
                    if norm < 1e-6 {
                        dx = 1.0;
                        dy = 0.0;
                    } else {
                        dx /= norm;
                        dy /= norm;
                    }
                    let push = repulse
                        * ((labels[i].width_px + labels[j].width_px) / 2.0
                            + (labels[i].height_px + labels[j].height_px) / 2.0)
                        / 4.0;
                    forces[i].0 += dx * push;
                    forces[i].1 += dy * push;
                    forces[j].0 -= dx * push;
                    forces[j].1 -= dy * push;
                }
            }
        }
        for (c, f) in centers.iter_mut().zip(&forces) {
            c.0 += f.0;
            c.1 += f.1;
        }
        for (i, c) in centers.iter_mut().enumerate() {
            *c = clamp_to_viewport(*c, &labels[i], viewport);
        }
    }
    // Drop residual overlappers, low priority first.
    let mut keep: Vec<usize> = (0..labels.len()).collect();
    keep.sort_by(|&a, &b| {
        labels[b]
            .priority
            .partial_cmp(&labels[a].priority)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut accepted: Vec<usize> = Vec::new();
    for idx in keep {
        let r = rect_at(centers[idx], &labels[idx]);
        if accepted
            .iter()
            .all(|&a| !rects_overlap(r, rect_at(centers[a], &labels[a])))
        {
            accepted.push(idx);
        }
    }
    accepted.sort_unstable();
    accepted
        .into_iter()
        .map(|i| PlacedLabel {
            id: labels[i].id,
            center_px: centers[i],
            anchor_px: labels[i].anchor_px,
        })
        .collect()
}

fn rect_at(center: (f64, f64), l: &LabelBox) -> (f64, f64, f64, f64) {
    (
        center.0 - l.width_px / 2.0,
        center.1 - l.height_px / 2.0,
        center.0 + l.width_px / 2.0,
        center.1 + l.height_px / 2.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn dense_labels(n: usize, seed: u64) -> Vec<LabelBox> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| LabelBox {
                id: i as u64,
                anchor_px: (rng.gen_range(200.0..600.0), rng.gen_range(200.0..500.0)),
                width_px: 120.0,
                height_px: 30.0,
                priority: rng.gen_range(0.0..1.0),
            })
            .collect()
    }

    fn vp() -> Viewport {
        Viewport::default()
    }

    #[test]
    fn naive_has_zero_displacement_but_overlaps() {
        let labels = dense_labels(40, 1);
        let placed = naive_layout(&labels, vp());
        let m = LayoutMetrics::measure(&labels, &placed);
        assert_eq!(m.mean_displacement_px, 0.0);
        assert_eq!(m.drop_ratio, 0.0);
        assert!(m.overlap_ratio > 0.05, "dense anchors must overlap");
    }

    #[test]
    fn greedy_eliminates_overlap() {
        let labels = dense_labels(40, 2);
        let placed = greedy_layout(&labels, vp());
        let m = LayoutMetrics::measure(&labels, &placed);
        assert_eq!(m.overlap_ratio, 0.0, "greedy guarantees no overlap");
        assert!(m.placed > 10, "should place a good fraction");
    }

    #[test]
    fn greedy_prefers_high_priority() {
        // Two identical anchors: only one can sit at the anchor.
        let labels = vec![
            LabelBox {
                id: 1,
                anchor_px: (500.0, 500.0),
                width_px: 100.0,
                height_px: 30.0,
                priority: 0.1,
            },
            LabelBox {
                id: 2,
                anchor_px: (500.0, 500.0),
                width_px: 100.0,
                height_px: 30.0,
                priority: 0.9,
            },
        ];
        let placed = greedy_layout(&labels, vp());
        let two = placed.iter().find(|p| p.id == 2).unwrap();
        assert_eq!(two.center_px, (500.0, 500.0), "high priority sits home");
        if let Some(one) = placed.iter().find(|p| p.id == 1) {
            assert!(one.displacement() > 0.0);
        }
    }

    #[test]
    fn force_layout_reduces_overlap_versus_naive() {
        let labels = dense_labels(50, 3);
        let naive = LayoutMetrics::measure(&labels, &naive_layout(&labels, vp()));
        let placed = force_layout(&labels, vp(), 60);
        let forced = LayoutMetrics::measure(&labels, &placed);
        assert_eq!(forced.overlap_ratio, 0.0, "residual overlappers dropped");
        assert!(forced.placed >= naive.placed / 2);
        assert!(forced.mean_displacement_px > 0.0);
    }

    #[test]
    fn all_layouts_stay_in_viewport() {
        let labels = dense_labels(30, 4);
        for placed in [
            greedy_layout(&labels, vp()),
            force_layout(&labels, vp(), 40),
        ] {
            for p in &placed {
                let l = labels.iter().find(|l| l.id == p.id).unwrap();
                let r = p.rect(l);
                assert!(r.0 >= -1e-9 && r.1 >= -1e-9);
                assert!(r.2 <= 1920.0 + 1e-9 && r.3 <= 1080.0 + 1e-9);
            }
        }
    }

    #[test]
    fn sparse_labels_need_no_movement() {
        let labels: Vec<LabelBox> = (0..5)
            .map(|i| LabelBox {
                id: i,
                anchor_px: (200.0 + 300.0 * i as f64, 500.0),
                width_px: 100.0,
                height_px: 30.0,
                priority: 0.5,
            })
            .collect();
        let placed = greedy_layout(&labels, vp());
        let m = LayoutMetrics::measure(&labels, &placed);
        assert_eq!(m.placed, 5);
        assert_eq!(m.mean_displacement_px, 0.0);
    }

    #[test]
    fn metrics_on_empty_input() {
        let m = LayoutMetrics::measure(&[], &[]);
        assert_eq!(m.placed, 0);
        assert_eq!(m.overlap_ratio, 0.0);
    }
}
