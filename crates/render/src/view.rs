//! The display camera: frustum culling and projection into pixels.

use serde::{Deserialize, Serialize};

use augur_geo::Enu;

use crate::error::RenderError;

/// A pixel viewport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Viewport {
    /// Width in pixels.
    pub width_px: u32,
    /// Height in pixels.
    pub height_px: u32,
}

impl Default for Viewport {
    fn default() -> Self {
        Viewport {
            width_px: 1920,
            height_px: 1080,
        }
    }
}

/// The display camera: position + yaw heading + horizontal FoV, projecting
/// into a [`Viewport`]. Matches the conventions of the sensing-side
/// camera model so registration errors translate 1:1 into overlay error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewCamera {
    /// Eye position, metres ENU.
    pub position: Enu,
    /// Heading, degrees clockwise from north.
    pub heading_deg: f64,
    /// Horizontal field of view, degrees.
    pub fov_deg: f64,
    /// Target viewport.
    pub viewport: Viewport,
    /// Far clipping distance, metres.
    pub far_m: f64,
}

impl ViewCamera {
    /// Creates a camera.
    ///
    /// # Errors
    ///
    /// [`RenderError::InvalidParameter`] for a FoV outside `(0, 180)` or
    /// non-positive far distance.
    pub fn new(
        position: Enu,
        heading_deg: f64,
        fov_deg: f64,
        viewport: Viewport,
        far_m: f64,
    ) -> Result<Self, RenderError> {
        if !(fov_deg > 0.0 && fov_deg < 180.0) {
            return Err(RenderError::InvalidParameter("fov_deg"));
        }
        if far_m <= 0.0 || !far_m.is_finite() {
            return Err(RenderError::InvalidParameter("far_m"));
        }
        Ok(ViewCamera {
            position,
            heading_deg,
            fov_deg,
            viewport,
            far_m,
        })
    }

    /// Focal length in pixels.
    pub fn focal_px(&self) -> f64 {
        (self.viewport.width_px as f64 / 2.0) / (self.fov_deg.to_radians() / 2.0).tan()
    }

    /// Camera-frame coordinates of a world point: (right, forward, up-rel).
    pub fn to_camera(&self, world: Enu) -> (f64, f64, f64) {
        let de = world.east - self.position.east;
        let dn = world.north - self.position.north;
        let du = world.up - self.position.up;
        let h = self.heading_deg.to_radians();
        let forward = dn * h.cos() + de * h.sin();
        let right = de * h.cos() - dn * h.sin();
        (right, forward, du)
    }

    /// Distance from the eye to a world point.
    pub fn distance(&self, world: Enu) -> f64 {
        self.position.distance(world)
    }

    /// Whether a world point is inside the view frustum (in front, within
    /// FoV horizontally, nearer than far, and projecting inside the
    /// viewport vertically).
    pub fn in_frustum(&self, world: Enu) -> bool {
        self.project(world).is_some()
    }

    /// Projects a world point to pixels, or `None` if outside the
    /// frustum.
    pub fn project(&self, world: Enu) -> Option<(f64, f64)> {
        let (right, forward, up) = self.to_camera(world);
        if forward <= 0.1 || forward > self.far_m {
            return None;
        }
        let f = self.focal_px();
        let u = self.viewport.width_px as f64 / 2.0 + f * right / forward;
        let v = self.viewport.height_px as f64 / 2.0 - f * up / forward;
        let (w, h) = (
            self.viewport.width_px as f64,
            self.viewport.height_px as f64,
        );
        (u >= 0.0 && u <= w && v >= 0.0 && v <= h).then_some((u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> ViewCamera {
        ViewCamera::new(
            Enu::new(0.0, 0.0, 1.6),
            0.0,
            66.0,
            Viewport::default(),
            1000.0,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(ViewCamera::new(Enu::default(), 0.0, 0.0, Viewport::default(), 10.0).is_err());
        assert!(ViewCamera::new(Enu::default(), 0.0, 180.0, Viewport::default(), 10.0).is_err());
        assert!(ViewCamera::new(Enu::default(), 0.0, 60.0, Viewport::default(), 0.0).is_err());
    }

    #[test]
    fn center_projection() {
        let c = cam();
        let (u, v) = c.project(Enu::new(0.0, 50.0, 1.6)).unwrap();
        assert!((u - 960.0).abs() < 1e-9);
        assert!((v - 540.0).abs() < 1e-9);
    }

    #[test]
    fn behind_and_beyond_far_are_culled() {
        let c = cam();
        assert!(c.project(Enu::new(0.0, -50.0, 1.6)).is_none());
        assert!(c.project(Enu::new(0.0, 1500.0, 1.6)).is_none());
        assert!(!c.in_frustum(Enu::new(0.0, -50.0, 1.6)));
    }

    #[test]
    fn heading_rotation() {
        let c = ViewCamera::new(
            Enu::new(0.0, 0.0, 1.6),
            90.0,
            66.0,
            Viewport::default(),
            1000.0,
        )
        .unwrap();
        // Looking east: a point due east is centred.
        let (u, _) = c.project(Enu::new(50.0, 0.0, 1.6)).unwrap();
        assert!((u - 960.0).abs() < 1e-9);
    }

    #[test]
    fn left_right_up_down_sides() {
        let c = cam();
        let (u_l, _) = c.project(Enu::new(-5.0, 50.0, 1.6)).unwrap();
        let (u_r, _) = c.project(Enu::new(5.0, 50.0, 1.6)).unwrap();
        assert!(u_l < 960.0 && u_r > 960.0);
        let (_, v_up) = c.project(Enu::new(0.0, 50.0, 10.0)).unwrap();
        assert!(v_up < 540.0, "up is towards smaller v");
    }

    #[test]
    fn distance_and_camera_frame() {
        let c = cam();
        assert!((c.distance(Enu::new(3.0, 4.0, 1.6)) - 5.0).abs() < 1e-9);
        let (right, forward, up) = c.to_camera(Enu::new(1.0, 2.0, 2.6));
        assert!((right - 1.0).abs() < 1e-9);
        assert!((forward - 2.0).abs() < 1e-9);
        assert!((up - 1.0).abs() < 1e-9);
    }
}
