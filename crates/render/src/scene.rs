//! The scene graph of overlay items.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use augur_geo::Enu;

use crate::error::RenderError;
use crate::view::ViewCamera;

/// What kind of overlay an item is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OverlayKind {
    /// A text label.
    Label(String),
    /// A highlight contour ("x-ray" outline), RGB colour.
    Highlight(u32),
    /// A 3-D model by catalogue name.
    Model(String),
}

/// One overlay item pinned at a world position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlayItem {
    /// Stable id within the scene.
    pub id: u64,
    /// World anchor, metres ENU.
    pub anchor: Enu,
    /// The visual.
    pub kind: OverlayKind,
    /// Display priority in `[0, 1]`; contention resolves high-first.
    pub priority: f64,
}

/// A scene graph: overlay items indexed by id, queryable by view.
///
/// # Example
///
/// ```
/// use augur_render::{OverlayItem, OverlayKind, SceneGraph, ViewCamera, Viewport};
/// use augur_geo::Enu;
///
/// let mut scene = SceneGraph::new();
/// scene.insert(OverlayItem {
///     id: 1,
///     anchor: Enu::new(0.0, 30.0, 2.0),
///     kind: OverlayKind::Label("Cafe".into()),
///     priority: 0.9,
/// });
/// let cam = ViewCamera::new(Enu::new(0.0, 0.0, 1.6), 0.0, 66.0, Viewport::default(), 500.0)?;
/// assert_eq!(scene.visible_items(&cam).len(), 1);
/// # Ok::<(), augur_render::RenderError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SceneGraph {
    items: BTreeMap<u64, OverlayItem>,
}

impl SceneGraph {
    /// Creates an empty scene.
    pub fn new() -> Self {
        SceneGraph::default()
    }

    /// Inserts or replaces an item, returning the previous one if any.
    pub fn insert(&mut self, item: OverlayItem) -> Option<OverlayItem> {
        self.items.insert(item.id, item)
    }

    /// Removes an item.
    ///
    /// # Errors
    ///
    /// [`RenderError::UnknownItem`] if absent.
    pub fn remove(&mut self, id: u64) -> Result<OverlayItem, RenderError> {
        self.items.remove(&id).ok_or(RenderError::UnknownItem(id))
    }

    /// Looks an item up.
    pub fn get(&self, id: u64) -> Option<&OverlayItem> {
        self.items.get(&id)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates all items in id order.
    pub fn iter(&self) -> impl Iterator<Item = &OverlayItem> {
        self.items.values()
    }

    /// Items inside the camera frustum, paired with their projected
    /// pixel anchor, ordered by priority (highest first).
    pub fn visible_items(&self, camera: &ViewCamera) -> Vec<(&OverlayItem, (f64, f64))> {
        let mut out: Vec<(&OverlayItem, (f64, f64))> = self
            .items
            .values()
            .filter_map(|item| camera.project(item.anchor).map(|px| (item, px)))
            .collect();
        out.sort_by(|a, b| {
            b.0.priority
                .partial_cmp(&a.0.priority)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.id.cmp(&b.0.id))
        });
        out
    }

    /// Retains only items satisfying the predicate, returning the number
    /// removed (e.g. expiring stale overlays).
    pub fn retain(&mut self, mut keep: impl FnMut(&OverlayItem) -> bool) -> usize {
        let before = self.items.len();
        self.items.retain(|_, item| keep(item));
        before - self.items.len()
    }
}

impl Extend<OverlayItem> for SceneGraph {
    fn extend<I: IntoIterator<Item = OverlayItem>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::Viewport;

    fn label(id: u64, east: f64, north: f64, priority: f64) -> OverlayItem {
        OverlayItem {
            id,
            anchor: Enu::new(east, north, 2.0),
            kind: OverlayKind::Label(format!("L{id}")),
            priority,
        }
    }

    fn cam() -> ViewCamera {
        ViewCamera::new(
            Enu::new(0.0, 0.0, 1.6),
            0.0,
            66.0,
            Viewport::default(),
            500.0,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut s = SceneGraph::new();
        assert!(s.insert(label(1, 0.0, 10.0, 0.5)).is_none());
        assert!(s.get(1).is_some());
        assert!(s.insert(label(1, 0.0, 20.0, 0.5)).is_some(), "replace");
        assert_eq!(s.remove(1).unwrap().anchor.north, 20.0);
        assert_eq!(s.remove(1), Err(RenderError::UnknownItem(1)));
    }

    #[test]
    fn visible_items_culls_and_sorts() {
        let mut s = SceneGraph::new();
        s.extend([
            label(1, 0.0, 50.0, 0.2),
            label(2, 0.0, 80.0, 0.9),
            label(3, 0.0, -50.0, 1.0),   // behind
            label(4, 2000.0, 50.0, 1.0), // out of fov / far
        ]);
        let vis = s.visible_items(&cam());
        let ids: Vec<u64> = vis.iter().map(|(i, _)| i.id).collect();
        assert_eq!(ids, vec![2, 1], "priority order, culled others");
    }

    #[test]
    fn retain_expires_items() {
        let mut s = SceneGraph::new();
        s.extend((0..10).map(|i| label(i, 0.0, 10.0 + i as f64, 0.5)));
        let removed = s.retain(|item| item.id % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(s.len(), 5);
    }
}
