//! Error types for the presentation layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the presentation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RenderError {
    /// A camera or viewport parameter was out of domain.
    InvalidParameter(&'static str),
    /// An overlay item id was not found in the scene graph.
    UnknownItem(u64),
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            RenderError::UnknownItem(id) => write!(f, "unknown overlay item {id}"),
        }
    }
}

impl Error for RenderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(RenderError::InvalidParameter("fov")
            .to_string()
            .contains("fov"));
        assert!(RenderError::UnknownItem(3).to_string().contains('3'));
    }
}
